//! §4.4 — the minimal synchronization constraint set.
//!
//! Implements the paper's greedy algorithm verbatim:
//!
//! ```text
//! P* = P
//! for each partial ordering a_i → a_j in P:
//!     if P* − {a_i → a_j} is transitive equivalent to P:
//!         P* = P* − {a_i → a_j}
//! ```
//!
//! Transitive equivalence (Definitions 3–5) compares *condition-annotated*
//! closures. Two comparison modes are provided:
//!
//! * [`EquivalenceMode::Strict`] — Definition 3's note read literally:
//!   closures must reach the same nodes with *identical* annotation DNFs.
//! * [`EquivalenceMode::ExecutionAware`] — the semantics the paper's own
//!   Figure 9 / Table 2 results require (see [`crate::exec`]): an
//!   annotation `D_old` at target `t` from source `s` is covered by
//!   `D_new` iff `exec(s) ∧ exec(t) ∧ D_old ⟹ D_new`. This soundly
//!   licenses both execution-awareness (a `T`-guarded path covers an
//!   unconditional constraint into a `T`-only activity) and branch
//!   completeness (`{T}` and `{F}` paths jointly cover an unconditional
//!   constraint when `{T, F}` is the guard's whole domain).
//!
//! Removals are checked against the *current* set; because "new covers
//! old" is transitive and removal only shrinks the relation set, the final
//! `P*` is transitive-equivalent to the original `P` and locally minimal
//! (the second bullet of Definition 6) — both properties are exercised by
//! the property tests.
//!
//! Since minimal sets are not unique ("similar to the minimal set of
//! functional dependencies in database"), [`EdgeOrder`] controls which
//! constraints the loop offers for removal first; the default tries
//! cooperation constraints before the data constraints they typically
//! duplicate, matching the paper's Figure 9 labeling.
//!
//! ## Implementation
//!
//! [`minimize_generic_with`] is an optimized engine built on three ideas:
//!
//! 1. **Interning** — every annotation DNF is hash-consed into a
//!    [`DnfPool`], so closure rows are vectors of `u32` ids, row equality
//!    is id-vector equality, and unions/compositions/implications are
//!    memoized by id pair.
//! 2. **Bitset prefilters** — two dense unconditional reachability
//!    skeletons are maintained over the live edges (one for all edges,
//!    one for unconditional edges only). A candidate with no alternate
//!    2+-step path is rejected without touching annotated rows; a
//!    candidate with a same-guard (or unguarded) alternate that reaches
//!    its head unconditionally is accepted likewise. On fully
//!    unconditional inputs every candidate is decided here, so the
//!    generic engine matches [`minimize_unconditional_fast`] within a
//!    small constant.
//! 3. **Scoped-thread parallelism** — candidates the prefilters leave
//!    undecided are screened concurrently (their tentative tail row is
//!    composed on worker threads against a read-only snapshot, invalidated
//!    if an earlier acceptance dirtied their dependency cone), and the
//!    slow path's affected-ancestor recomputation runs in
//!    reverse-topological level batches across a `std::thread::scope`
//!    pool. The result is pinned edge-for-edge equal to the sequential
//!    reference implementation, kept as [`minimize_generic_baseline`].
//!
//! ```
//! use dscweaver_core::minimize::{minimize, EdgeOrder, EquivalenceMode};
//! use dscweaver_core::ExecConditions;
//! use dscweaver_dscl::{ConstraintSet, Origin, Relation, StateRef};
//!
//! // a → b → c plus the redundant transitive shortcut a → c.
//! let mut cs = ConstraintSet::new("triple");
//! for a in ["a", "b", "c"] {
//!     cs.add_activity(a);
//! }
//! cs.push(Relation::before(StateRef::finish("a"), StateRef::start("b"), Origin::Data));
//! cs.push(Relation::before(StateRef::finish("b"), StateRef::start("c"), Origin::Data));
//! cs.push(Relation::before(StateRef::finish("a"), StateRef::start("c"), Origin::Data));
//!
//! let exec = ExecConditions::derive(&cs);
//! let out = minimize(&cs, &exec, EquivalenceMode::ExecutionAware, &EdgeOrder::default())
//!     .expect("acyclic");
//! assert_eq!(out.removed.len(), 1); // only the shortcut goes
//! assert_eq!(out.minimal.constraint_count(), 2);
//! ```

use crate::exec::{dnf_and, implies_under, ExecConditions};
use dscweaver_dscl::sync_graph::{SyncGraph, SyncNode};
use dscweaver_dscl::{Condition, ConstraintSet, Origin, Relation, SyncEdge};
use dscweaver_graph::annotated::{Dnf, Row};
use dscweaver_graph::iclosure::{
    compose_interned_row, interned_closure, irow_get, IRow, RowScratch,
};
use dscweaver_graph::{
    effective_threads, find_cycle, par_map, topo_sort, BitSet, DiGraph, DnfId, DnfPool, EdgeId,
    LruCache, NodeId, TermId,
};
use dscweaver_obs as obs;
use std::collections::{BTreeMap, HashMap, HashSet};

/// How closures are compared (Definitions 4–5). Ordered from most to
/// least conservative; all three agree on the paper's Purchasing process
/// result *except* Strict, which keeps three extra edges (see the
/// `ablation_minimize` bench).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EquivalenceMode {
    /// Annotation-exact comparison (Definition 3's "the same ...
    /// conditional annotations" read literally). Sound under any scheduler.
    Strict,
    /// Semantic comparison modulo execution conditions and guard domains —
    /// reproduces the paper's Figure 9 / Table 2. Sound whenever an
    /// activity's non-execution is decided no earlier than its guards —
    /// true of the DES scheduler and of BPEL engines. The default.
    #[default]
    ExecutionAware,
    /// Target-set-only comparison (annotations ignored). Maximally
    /// aggressive; sound **only** under full BPEL-style dead-path
    /// elimination, where a skipped activity still propagates its link
    /// statuses after *all* of its incoming links are determined, so
    /// ordering holds along any path regardless of branch conditions.
    Reachability,
}

/// The order in which the greedy loop offers constraints for removal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EdgeOrder {
    /// Relation-list order.
    Given,
    /// Reverse relation-list order.
    ReverseGiven,
    /// Grouped by origin according to a priority list (origins not listed
    /// go last, in list order).
    ByDimension(Vec<Origin>),
}

impl Default for EdgeOrder {
    /// Cooperation first (they typically duplicate data constraints and the
    /// paper's Figure 9 keeps the data-labeled copies), then control, data,
    /// translated service constraints.
    fn default() -> Self {
        EdgeOrder::ByDimension(vec![
            Origin::Cooperation,
            Origin::Control,
            Origin::Data,
            Origin::Translated,
            Origin::Service,
            Origin::Coordinator,
            Origin::Other,
        ])
    }
}

/// Tuning knobs for the optimized minimizer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MinimizeOptions {
    /// Worker threads for candidate screening and ancestor recomputation.
    /// `0` (the default) picks from available parallelism; `1` forces the
    /// fully sequential engine. The result is identical either way.
    pub threads: usize,
    /// Capacity of the `implies` memo: at most this many verdicts stay
    /// cached, with least-recently-used eviction past the bound
    /// ([`dscweaver_graph::LruCache`]). Verdicts are pure, so the result
    /// is identical for any limit; the bound only caps memory on
    /// adversarial inputs whose branch combinations mint exponentially
    /// many distinct annotations, and eviction degrades the hit rate
    /// gracefully instead of cutting caching off entirely. `0` means
    /// unbounded.
    pub pool_cache_limit: usize,
}

impl Default for MinimizeOptions {
    fn default() -> Self {
        MinimizeOptions {
            threads: 0,
            pool_cache_limit: DEFAULT_POOL_CACHE_LIMIT,
        }
    }
}

/// Default [`MinimizeOptions::pool_cache_limit`]: ~1M memoized verdicts.
/// Far beyond anything the paper-scale workloads produce, so eviction is
/// effectively off unless a caller dials it down.
pub const DEFAULT_POOL_CACHE_LIMIT: usize = 1 << 20;

impl MinimizeOptions {
    /// The effective thread count (resolving `0` to the machine's
    /// available parallelism, capped at 8 — the row work saturates well
    /// before that).
    pub fn effective_threads(&self) -> usize {
        effective_threads(self.threads, 8)
    }
}

/// Why minimization refused to run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MinimizeError {
    /// The constraint graph is cyclic — the specification conflicts
    /// ("infinite synchronization sequence", §4.1). The payload names the
    /// states on one cycle.
    Conflict {
        /// Labels of the nodes on the detected cycle.
        cycle: Vec<String>,
    },
}

impl std::fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinimizeError::Conflict { cycle } => {
                write!(f, "conflicting constraints form a cycle: {}", cycle.join(" -> "))
            }
        }
    }
}

impl std::error::Error for MinimizeError {}

/// Interning and memo-cache counters from one optimized-engine run.
/// All-zero for the baseline and unconditional fast paths, which use
/// neither a pool nor an `implies` cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MinimizeStats {
    /// Distinct DNFs interned in the [`DnfPool`] at the end of the run.
    pub pool_dnfs: usize,
    /// Distinct conjunctive terms interned in the pool.
    pub pool_terms: usize,
    /// `implies` queries answered from the memo cache.
    pub implies_cache_hits: u64,
    /// `implies` queries computed structurally and then memoized.
    pub implies_cache_misses: u64,
    /// Memoized verdicts evicted (least-recently-used first) because the
    /// memo reached [`MinimizeOptions::pool_cache_limit`].
    pub implies_evictions: u64,
}

impl MinimizeStats {
    /// Cache hit rate over all cache-eligible `implies` queries
    /// (`hits / (hits + misses)`), or 0 when none were made.
    pub fn implies_hit_rate(&self) -> f64 {
        let total = self.implies_cache_hits + self.implies_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.implies_cache_hits as f64 / total as f64
        }
    }
}

/// The outcome of minimization.
#[derive(Clone, Debug)]
pub struct MinimizeResult {
    /// The minimal constraint set `P*`.
    pub minimal: ConstraintSet,
    /// The relations removed, in removal order.
    pub removed: Vec<Relation>,
    /// How many removal candidates were examined.
    pub candidates_checked: usize,
    /// Interning/memoization telemetry (optimized engine only).
    pub stats: MinimizeStats,
}

impl MinimizeResult {
    /// Constraints kept.
    pub fn kept(&self) -> usize {
        self.minimal.constraint_count()
    }
}

/// Runs the paper's greedy minimal-set algorithm on a (desugared)
/// constraint set. For the §4.4 workflow this is applied to the ASC
/// produced by [`crate::translate::translate_services`], but any
/// conflict-free constraint set works (service nodes get unconditional
/// execution conditions).
pub fn minimize(
    cs: &ConstraintSet,
    exec: &ExecConditions,
    mode: EquivalenceMode,
    order: &EdgeOrder,
) -> Result<MinimizeResult, MinimizeError> {
    minimize_with(cs, exec, mode, order, &MinimizeOptions::default())
}

/// [`minimize`] with explicit [`MinimizeOptions`].
pub fn minimize_with(
    cs: &ConstraintSet,
    exec: &ExecConditions,
    mode: EquivalenceMode,
    order: &EdgeOrder,
    opts: &MinimizeOptions,
) -> Result<MinimizeResult, MinimizeError> {
    let _span = obs::span("minimize");
    // Fast path: with no conditional constraints, annotated closures
    // degenerate to plain reachability in every mode, and the minimal set
    // is the (unique) transitive reduction of the constraint DAG — no DNF
    // machinery needed. The property tests pin this against the generic
    // greedy algorithm.
    if cs
        .happen_befores()
        .all(|r| matches!(r, Relation::HappenBefore { cond: None, .. }))
    {
        let _span = obs::span("minimize.reduction");
        return minimize_unconditional_fast(cs, order);
    }
    minimize_generic_with(cs, exec, mode, order, opts)
}

/// The generic §4.4 greedy algorithm over condition-annotated closures
/// (optimized engine, default options).
pub fn minimize_generic(
    cs: &ConstraintSet,
    exec: &ExecConditions,
    mode: EquivalenceMode,
    order: &EdgeOrder,
) -> Result<MinimizeResult, MinimizeError> {
    minimize_generic_with(cs, exec, mode, order, &MinimizeOptions::default())
}

// `IRow` (the interned closure row) and `irow_get` now live in
// `dscweaver_graph::iclosure`, next to the level-parallel builder that
// produces them.

/// Interns a structurally composed row.
fn intern_row(pool: &mut DnfPool<Condition>, srow: Vec<(u32, Dnf<Condition>)>) -> IRow {
    srow.into_iter().map(|(t, d)| (t, pool.intern(&d))).collect()
}

/// Structural row composition against a read-only snapshot — safe to run
/// on worker threads (resolves interned successor rows through `&DnfPool`,
/// never interns). `fresh` overrides `irows` for already-recomputed nodes.
fn compose_structural(
    g: &DiGraph<SyncNode, SyncEdge>,
    n: NodeId,
    skip: EdgeId,
    removed: &HashSet<EdgeId>,
    pool: &DnfPool<Condition>,
    irows: &[IRow],
    fresh: &HashMap<usize, IRow>,
) -> Vec<(u32, Dnf<Condition>)> {
    let mut acc: BTreeMap<u32, Dnf<Condition>> = BTreeMap::new();
    for e in g.out_edges(n) {
        if e == skip || removed.contains(&e) {
            continue;
        }
        let (_, m) = g.endpoints(e);
        let guard = &g.edge_weight(e).cond;
        acc.entry(m.index() as u32)
            .or_insert_with(Dnf::empty)
            .insert(guard.clone().map(|c| vec![c]).unwrap_or_default());
        let mrow: &IRow = fresh.get(&m.index()).unwrap_or(&irows[m.index()]);
        for &(t, did) in mrow {
            pool.dnf(did)
                .compose_into(guard.as_ref(), acc.entry(t).or_insert_with(Dnf::empty));
        }
    }
    acc.into_iter().collect()
}

/// Sorts removal candidates according to `order`.
pub(crate) fn order_candidates(
    g: &DiGraph<SyncNode, SyncEdge>,
    sg: &SyncGraph,
    order: &EdgeOrder,
) -> Vec<(EdgeId, usize)> {
    let mut candidates: Vec<(EdgeId, usize)> = sg.constraint_edges().collect();
    match order {
        EdgeOrder::Given => {}
        EdgeOrder::ReverseGiven => candidates.reverse(),
        EdgeOrder::ByDimension(priority) => {
            let rank = |o: Origin| -> usize {
                priority.iter().position(|&p| p == o).unwrap_or(priority.len())
            };
            candidates.sort_by_key(|&(e, i)| (rank(g.edge_weight(e).origin), i));
        }
    }
    candidates
}

/// Interns every node's execution condition (service nodes: always).
fn intern_exec(
    g: &DiGraph<SyncNode, SyncEdge>,
    exec: &ExecConditions,
    pool: &mut DnfPool<Condition>,
) -> Vec<DnfId> {
    let mut exec_ids = vec![DnfPool::<Condition>::ALWAYS; g.node_bound()];
    for n in g.node_ids() {
        exec_ids[n.index()] = match g.weight(n) {
            SyncNode::State(s) => pool.intern(&exec.of(&s.activity)),
            SyncNode::Service(_) => DnfPool::<Condition>::ALWAYS,
        };
    }
    exec_ids
}

/// All mutable state of the optimized greedy loop. Crate-visible so the
/// re-weave session ([`crate::reweave`]) can drive the same engine over a
/// delta-updated closure.
pub(crate) struct Engine<'a> {
    pub(crate) g: &'a DiGraph<SyncNode, SyncEdge>,
    cs: &'a ConstraintSet,
    mode: EquivalenceMode,
    /// Worker threads for screening/recomputation. The re-weave session
    /// pins this to 1 after construction: the slow path's parallel branch
    /// interns only final rows (not intermediates), which is
    /// result-identical but numbers the pool differently per thread
    /// count, and the session fingerprints its pool.
    pub(crate) threads: usize,
    pub(crate) pool: DnfPool<Condition>,
    /// Interned annotated-closure rows, by node index.
    pub(crate) irows: Vec<IRow>,
    /// Interned execution condition per node (services: always).
    pub(crate) exec_ids: Vec<DnfId>,
    /// Direct-edge annotation id per edge index (`ALWAYS` when
    /// unconditional) — interned once so the greedy loop's row
    /// recompositions never hash a guard value.
    edge_gdnf: Vec<DnfId>,
    /// Singleton guard term per edge index (`None` when unconditional).
    edge_term: Vec<Option<TermId>>,
    /// Dense per-row accumulator reused across recompositions.
    scratch: RowScratch,
    /// Reachability over all live edges / over unconditional live edges.
    /// Crate-visible so the re-weave session can persist both skeletons in
    /// its memo and patch only the rows a delta update changed (a bitset
    /// row is exactly the support of the interned row, so an unchanged
    /// row pins an unchanged skeleton row).
    pub(crate) closure: Vec<BitSet>,
    pub(crate) uncond: Vec<BitSet>,
    pub(crate) removed: HashSet<EdgeId>,
    topo_pos: Vec<usize>,
    /// Longest-path distance to a sink on the original graph — strictly
    /// decreasing along every edge, so it stays a valid schedule under
    /// edge deletion. Nodes sharing a level never depend on each other.
    level: Vec<usize>,
    /// Memoized `context ∧ old ⟹ new` verdicts, keyed by interned ids
    /// (domains are fixed per run, so the verdict is too). Bounded to
    /// [`MinimizeOptions::pool_cache_limit`] entries with LRU eviction.
    imp_cache: LruCache<(DnfId, DnfId, DnfId), bool>,
    imp_hits: u64,
    imp_misses: u64,
    /// Nodes whose rows changed / lost an out-edge since the last
    /// screening snapshot — invalidates precomputed screening rows.
    pub(crate) dirty_rows: HashSet<usize>,
    pub(crate) dirty_tails: HashSet<usize>,
    /// Copy-on-write log of pre-greedy rows: when set, the first slow-path
    /// commit that overwrites a row stashes the original here. The
    /// re-weave session restores these afterwards so its memo keeps the
    /// *initial* closure (what the next delta update expects) without
    /// cloning the whole row table up front.
    pub(crate) row_undo: Option<HashMap<usize, IRow>>,
    /// Copy-on-write log of pre-greedy bitset skeleton rows, mirroring
    /// `row_undo`: the first slow-path repair that touches a node stashes
    /// its `(closure, uncond)` pair here, so the re-weave session can
    /// store skeletons matching the restored initial rows.
    pub(crate) skeleton_undo: Option<HashMap<usize, (BitSet, BitSet)>>,
}

/// How one greedy step was decided — recorded by the re-weave session so
/// a later run can replay verdicts whose inputs provably did not change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Decision {
    /// Accepted by the same-guard prefilter (tail row provably unchanged).
    AcceptPrefilter,
    /// Rejected without composing a row: no alternate path (and, under
    /// execution-aware mode, the lost annotation was not vacuous).
    RejectCheap,
    /// Accepted because the recomposed tail row came out identical.
    AcceptRowUnchanged,
    /// Rejected because the recomposed tail row is not covered.
    RejectNotCovered,
    /// Accepted through the slow path (ancestor rows recomputed and
    /// swapped in).
    AcceptSlow,
    /// Rejected during the slow path's ancestor coverage recheck.
    RejectSlow,
}

impl Decision {
    /// Did this verdict remove the candidate?
    pub(crate) fn removed(self) -> bool {
        matches!(
            self,
            Decision::AcceptPrefilter | Decision::AcceptRowUnchanged | Decision::AcceptSlow
        )
    }
}

/// Minimum same-level batch size before ancestor recomputation fans out to
/// worker threads — below this the scope setup costs more than the rows.
const PAR_BATCH_MIN: usize = 8;

impl<'a> Engine<'a> {
    pub(crate) fn new(
        g: &'a DiGraph<SyncNode, SyncEdge>,
        cs: &'a ConstraintSet,
        exec: &ExecConditions,
        mode: EquivalenceMode,
        threads: usize,
        pool_cache_limit: usize,
        topo: &[NodeId],
    ) -> Engine<'a> {
        let mut pool = DnfPool::new();
        let exec_ids = intern_exec(g, exec, &mut pool);

        // The initial annotated closure, built directly in interned form
        // and level-parallel on the worker pool (bit-identical for every
        // thread count — see `dscweaver_graph::iclosure`).
        let lvl_span = obs::span("minimize.closure.levels");
        let (irows, cstats) =
            interned_closure(g, &|_, w: &SyncEdge| w.cond.clone(), &mut pool, threads)
                .expect("cycle-free graph must close");
        drop(lvl_span);
        obs::counter_add("minimize.closure.rows_composed", cstats.rows as u64);
        obs::counter_add("minimize.closure.pool_hits", cstats.pool_hits);
        obs::counter_add("minimize.closure.pool_misses", cstats.pool_misses);
        obs::counter_add("minimize.closure.minted_dnfs", cstats.minted as u64);

        Engine::assemble(g, cs, mode, threads, pool_cache_limit, topo, pool, exec_ids, irows, None)
    }

    /// Builds an engine around an externally supplied interned closure —
    /// the re-weave path, where `pool` and `irows` come from a previous
    /// run's memo, delta-updated in place. Execution conditions are
    /// interned into the supplied pool (pure hits unless they changed,
    /// and the session detects changes by comparing the resulting ids).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_closure(
        g: &'a DiGraph<SyncNode, SyncEdge>,
        cs: &'a ConstraintSet,
        exec: &ExecConditions,
        mode: EquivalenceMode,
        threads: usize,
        pool_cache_limit: usize,
        topo: &[NodeId],
        mut pool: DnfPool<Condition>,
        irows: Vec<IRow>,
        skeletons: Option<(Vec<BitSet>, Vec<BitSet>, Vec<usize>)>,
    ) -> Engine<'a> {
        let exec_ids = intern_exec(g, exec, &mut pool);
        Engine::assemble(
            g, cs, mode, threads, pool_cache_limit, topo, pool, exec_ids, irows, skeletons,
        )
    }

    /// Shared back half of construction: derived tables and the bitset
    /// skeleton pass over an already-built closure. When `skeletons` is
    /// supplied (previous run's skeletons plus the node indices whose
    /// rows changed), only the dirty rows are rebuilt — every clean row's
    /// skeleton is pinned by its unchanged interned row.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        g: &'a DiGraph<SyncNode, SyncEdge>,
        cs: &'a ConstraintSet,
        mode: EquivalenceMode,
        threads: usize,
        pool_cache_limit: usize,
        topo: &[NodeId],
        mut pool: DnfPool<Condition>,
        exec_ids: Vec<DnfId>,
        irows: Vec<IRow>,
        skeletons: Option<(Vec<BitSet>, Vec<BitSet>, Vec<usize>)>,
    ) -> Engine<'a> {
        let bound = g.node_bound();
        let mut topo_pos = vec![usize::MAX; bound];
        for (i, &n) in topo.iter().enumerate() {
            topo_pos[n.index()] = i;
        }
        let mut level = vec![0usize; bound];
        for &n in topo.iter().rev() {
            let l = g
                .successors(n)
                .map(|m| level[m.index()] + 1)
                .max()
                .unwrap_or(0);
            level[n.index()] = l;
        }

        // Per-edge guard tables for the greedy loop's recompositions
        // (every term/dnf below is already interned, so these are hits).
        let ebound = g.edge_bound();
        let mut edge_gdnf = vec![DnfPool::<Condition>::ALWAYS; ebound];
        let mut edge_term = vec![None; ebound];
        for e in g.edge_ids() {
            if let Some(c) = &g.edge_weight(e).cond {
                edge_term[e.index()] = Some(pool.intern_term(&vec![c.clone()]));
                edge_gdnf[e.index()] = pool.of_guard(Some(c));
            }
        }

        let (closure, uncond, dirty) = match skeletons {
            Some((c, u, dirty)) => (c, u, Some(dirty)),
            None => (
                vec![BitSet::new(bound); bound],
                vec![BitSet::new(bound); bound],
                None,
            ),
        };
        let mut eng = Engine {
            g,
            cs,
            mode,
            threads,
            pool,
            irows,
            exec_ids,
            edge_gdnf,
            edge_term,
            scratch: RowScratch::new(bound),
            closure,
            uncond,
            removed: HashSet::new(),
            topo_pos,
            level,
            imp_cache: LruCache::new(pool_cache_limit),
            imp_hits: 0,
            imp_misses: 0,
            dirty_rows: HashSet::new(),
            dirty_tails: HashSet::new(),
            row_undo: None,
            skeleton_undo: None,
        };
        match dirty {
            // One reverse-topological pass derives both bitset skeletons
            // (cheap unions — never the closure bottleneck).
            None => {
                for &n in topo.iter().rev() {
                    eng.rebuild_bitset_row(n);
                }
            }
            // Incremental: rebuild only the changed rows, deepest first,
            // so each rebuild reads already-current successor skeletons.
            Some(dirty) => {
                let mut is_dirty = vec![false; bound];
                for &i in &dirty {
                    is_dirty[i] = true;
                }
                for &n in topo.iter().rev() {
                    if is_dirty[n.index()] {
                        eng.rebuild_bitset_row(n);
                    }
                }
            }
        }
        eng
    }

    /// Recomputes the interned row of `n`, excluding `skip` and all
    /// removed edges. Successor rows come from `fresh` when present.
    /// Runs on the shared dense-scratch composer with the pre-interned
    /// per-edge guard tables — no maps, no guard hashing in the loop.
    fn compose_interned(
        &mut self,
        n: NodeId,
        skip: Option<EdgeId>,
        fresh: &HashMap<usize, IRow>,
    ) -> IRow {
        let g = self.g;
        let (pool, scratch, irows, removed) = (
            &mut self.pool,
            &mut self.scratch,
            &self.irows,
            &self.removed,
        );
        let (edge_gdnf, edge_term) = (&self.edge_gdnf, &self.edge_term);
        let adj = g.out_edges(n).filter_map(|e| {
            if Some(e) == skip || removed.contains(&e) {
                return None;
            }
            let (_, m) = g.endpoints(e);
            Some((
                m.index() as u32,
                edge_gdnf[e.index()],
                edge_term[e.index()],
            ))
        });
        compose_interned_row(pool, scratch, adj, |m| {
            fresh
                .get(&(m as usize))
                .unwrap_or(&irows[m as usize])
        })
    }

    /// Rebuilds `closure[n]` and `uncond[n]` from the live out-edges.
    /// Successor rows must already be current (reverse-topological order).
    fn rebuild_bitset_row(&mut self, n: NodeId) {
        let g = self.g;
        let bound = g.node_bound();
        let mut row = BitSet::new(bound);
        let mut urow = BitSet::new(bound);
        for e in g.out_edges(n) {
            if self.removed.contains(&e) {
                continue;
            }
            let (_, m) = g.endpoints(e);
            row.insert(m.index());
            row.union_with(&self.closure[m.index()]);
            if g.edge_weight(e).cond.is_none() {
                urow.insert(m.index());
                urow.union_with(&self.uncond[m.index()]);
            }
        }
        self.closure[n.index()] = row;
        self.uncond[n.index()] = urow;
    }

    /// Memoized `ctx ∧ old ⟹ new` over interned formulas. The memo is an
    /// LRU bounded to `pool_cache_limit` verdicts: past the bound the
    /// coldest entries are evicted, so memory stays bounded while the hit
    /// rate degrades gracefully under churn — same answers either way.
    fn implies(&mut self, ctx: DnfId, old: DnfId, new: DnfId) -> bool {
        if old == new || old == DnfPool::<Condition>::EMPTY || ctx == DnfPool::<Condition>::EMPTY
        {
            return true;
        }
        if let Some(&b) = self.imp_cache.get(&(ctx, old, new)) {
            self.imp_hits += 1;
            return b;
        }
        let b = implies_under(
            self.pool.dnf(ctx),
            self.pool.dnf(old),
            self.pool.dnf(new),
            &self.cs.domains,
        );
        self.imp_misses += 1;
        self.imp_cache.insert((ctx, old, new), b);
        b
    }

    /// Telemetry snapshot for [`MinimizeResult::stats`].
    pub(crate) fn stats(&self) -> MinimizeStats {
        MinimizeStats {
            pool_dnfs: self.pool.dnf_count(),
            pool_terms: self.pool.term_count(),
            implies_cache_hits: self.imp_hits,
            implies_cache_misses: self.imp_misses,
            implies_evictions: self.imp_cache.evictions(),
        }
    }

    /// Definition 4/5: is node `ni`'s current row covered by `new`?
    fn covered(&mut self, ni: usize, new: &IRow) -> bool {
        match self.mode {
            EquivalenceMode::Strict => self.irows[ni] == *new,
            EquivalenceMode::Reachability => {
                let old_len = self.irows[ni].len();
                (0..old_len).all(|k| {
                    let t = self.irows[ni][k].0;
                    irow_get(new, t).is_some()
                })
            }
            EquivalenceMode::ExecutionAware => {
                let old_len = self.irows[ni].len();
                for k in 0..old_len {
                    let (t, old_id) = self.irows[ni][k];
                    let new_id = irow_get(new, t).unwrap_or(DnfPool::<Condition>::EMPTY);
                    if old_id == new_id {
                        continue;
                    }
                    let ctx = self.pool.and(self.exec_ids[ni], self.exec_ids[t as usize]);
                    if !self.implies(ctx, old_id, new_id) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Difference-driven reachability repair after accepting the removal
    /// of `cand = u → v`. Deleting an edge only *loses* paths, and every
    /// path lost from an affected ancestor ran through the candidate, so
    /// its lost targets all lie in `{v} ∪ closure[v]` — the candidate
    /// head's cone, whose own rows the removal cannot touch (`v` is no
    /// ancestor of `u` on a DAG). Only those columns are rechecked against
    /// the already-repaired successor rows (`affected` is ordered
    /// successors-first); every other bit is provably unchanged. The
    /// unconditional skeleton can only shrink when the removed edge itself
    /// was unconditional.
    fn repair_bitsets_after_removal(&mut self, affected: &[NodeId], v: NodeId, cand_uncond: bool) {
        let g = self.g;
        let vi = v.index();
        // Copy-on-write for the re-weave session: stash each affected
        // node's pre-repair skeleton pair once (mirrors `row_undo`).
        {
            let (undo, closure, uncond) = (&mut self.skeleton_undo, &self.closure, &self.uncond);
            if let Some(undo) = undo.as_mut() {
                for &n in affected {
                    let ni = n.index();
                    undo.entry(ni)
                        .or_insert_with(|| (closure[ni].clone(), uncond[ni].clone()));
                }
            }
        }
        let mut maybe_lost: Vec<usize> = self.closure[vi].iter().collect();
        maybe_lost.push(vi);
        let mut maybe_lost_u: Vec<usize> = Vec::new();
        if cand_uncond {
            maybe_lost_u = self.uncond[vi].iter().collect();
            maybe_lost_u.push(vi);
        }
        for &n in affected {
            let ni = n.index();
            for &t in &maybe_lost {
                if !self.closure[ni].contains(t) {
                    continue;
                }
                let still = g.out_edges(n).any(|e| {
                    !self.removed.contains(&e) && {
                        let (_, w) = g.endpoints(e);
                        w.index() == t || self.closure[w.index()].contains(t)
                    }
                });
                if !still {
                    self.closure[ni].remove(t);
                }
            }
            for &t in &maybe_lost_u {
                if !self.uncond[ni].contains(t) {
                    continue;
                }
                let still = g.out_edges(n).any(|e| {
                    !self.removed.contains(&e) && g.edge_weight(e).cond.is_none() && {
                        let (_, w) = g.endpoints(e);
                        w.index() == t || self.uncond[w.index()].contains(t)
                    }
                });
                if !still {
                    self.uncond[ni].remove(t);
                }
            }
        }
    }

    /// Accept prefilter: a live alternate out-edge of `u` whose guard is
    /// absent or identical to the candidate's, reaching `v` directly or
    /// through unconditional edges, replays every annotation the candidate
    /// contributed — the row of `u` (hence the whole closure) is provably
    /// unchanged, so the removal is pure redundancy.
    pub(crate) fn prefilter_accept(&self, cand: EdgeId, u: NodeId, v: NodeId) -> bool {
        let g = self.g;
        let guard_c = &g.edge_weight(cand).cond;
        for oe in g.out_edges(u) {
            if oe == cand || self.removed.contains(&oe) {
                continue;
            }
            let gw = &g.edge_weight(oe).cond;
            if !(gw.is_none() || gw == guard_c) {
                continue;
            }
            let (_, w) = g.endpoints(oe);
            if w == v || self.uncond[w.index()].contains(v.index()) {
                return true;
            }
        }
        false
    }

    /// Reject prefilter: with no alternate path `u ⇒ v` at all, `v` drops
    /// out of `u`'s row entirely. (On a DAG no path from a sibling head
    /// can route back through the candidate edge, so the closure queried
    /// *with* the candidate still answers this exactly.)
    pub(crate) fn has_alternate_path(&self, cand: EdgeId, u: NodeId, v: NodeId) -> bool {
        let g = self.g;
        g.out_edges(u).any(|oe| {
            oe != cand && !self.removed.contains(&oe) && {
                let (_, w) = g.endpoints(oe);
                w == v || self.closure[w.index()].contains(v.index())
            }
        })
    }

    /// True if the prefilters cannot decide `cand` against the current
    /// state — i.e. screening should precompute its tentative tail row.
    fn screen_undecided(&self, cand: EdgeId) -> bool {
        let (u, v) = self.g.endpoints(cand);
        if self.prefilter_accept(cand, u, v) {
            return false;
        }
        if !self.has_alternate_path(cand, u, v) {
            // Strict/Reachability reject outright; ExecutionAware still
            // needs the row when the lost target was never live.
            return self.mode == EquivalenceMode::ExecutionAware;
        }
        true
    }

    /// True if a screening row precomputed at the window snapshot is still
    /// valid: the tail kept all its edges and no successor row changed.
    fn precomp_valid(&self, cand: EdgeId) -> bool {
        let g = self.g;
        let (u, _) = g.endpoints(cand);
        if self.dirty_tails.contains(&u.index()) {
            return false;
        }
        g.out_edges(u).all(|oe| {
            oe == cand || self.removed.contains(&oe) || {
                let (_, m) = g.endpoints(oe);
                !self.dirty_rows.contains(&m.index())
            }
        })
    }

    /// Live-edge ancestors of `u` (inclusive), sorted so successors come
    /// before predecessors (descending topological position).
    fn affected_ancestors(&self, u: NodeId) -> Vec<NodeId> {
        let g = self.g;
        let mut seen = vec![false; g.node_bound()];
        let mut stack = vec![u];
        let mut affected = Vec::new();
        seen[u.index()] = true;
        while let Some(x) = stack.pop() {
            affected.push(x);
            for e in g.in_edges(x) {
                if self.removed.contains(&e) {
                    continue;
                }
                let (p, _) = g.endpoints(e);
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        affected.sort_by_key(|n| std::cmp::Reverse(self.topo_pos[n.index()]));
        affected
    }

    /// Recomputes the rows of every affected ancestor with `cand` gone,
    /// fanning same-level batches out to worker threads. `new_u` is the
    /// already-computed row of the candidate's tail.
    fn recompute_rows(
        &mut self,
        affected: &[NodeId],
        u: NodeId,
        cand: EdgeId,
        new_u: IRow,
    ) -> HashMap<usize, IRow> {
        let mut fresh: HashMap<usize, IRow> = HashMap::new();
        fresh.insert(u.index(), new_u);
        let rest: Vec<NodeId> = affected.iter().copied().filter(|&n| n != u).collect();
        if self.threads > 1 && rest.len() >= PAR_BATCH_MIN {
            // Level batches, nearest-to-sinks first: a node's successors
            // always sit on strictly smaller levels, so each batch only
            // reads rows finished in earlier batches (or untouched ones).
            let mut by_level: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
            for &n in &rest {
                by_level.entry(self.level[n.index()]).or_default().push(n);
            }
            for (_, batch) in by_level {
                if batch.len() >= 2 {
                    let (g, pool, irows, removed, fr) =
                        (self.g, &self.pool, &self.irows, &self.removed, &fresh);
                    let rows = par_map(self.threads, &batch, &|&n: &NodeId| {
                        (
                            n.index(),
                            compose_structural(g, n, cand, removed, pool, irows, fr),
                        )
                    });
                    for (ni, srow) in rows {
                        let ir = intern_row(&mut self.pool, srow);
                        fresh.insert(ni, ir);
                    }
                } else {
                    for &n in &batch {
                        let r = self.compose_interned(n, Some(cand), &fresh);
                        fresh.insert(n.index(), r);
                    }
                }
            }
        } else {
            for &n in &rest {
                let r = self.compose_interned(n, Some(cand), &fresh);
                fresh.insert(n.index(), r);
            }
        }
        fresh
    }

    /// One greedy step: decide `cand` and mutate state on acceptance.
    /// `pre` is an optional screening row (structural, snapshot-composed).
    fn try_remove(&mut self, cand: EdgeId, pre: Option<Vec<(u32, Dnf<Condition>)>>) -> bool {
        self.try_remove_classified(cand, pre).removed()
    }

    /// [`Engine::try_remove`] with the decision class exposed — the
    /// re-weave session records these to know which verdicts it may
    /// replay on the next run.
    pub(crate) fn try_remove_classified(
        &mut self,
        cand: EdgeId,
        pre: Option<Vec<(u32, Dnf<Condition>)>>,
    ) -> Decision {
        let g = self.g;
        let (u, v) = g.endpoints(cand);
        let ui = u.index();

        if self.prefilter_accept(cand, u, v) {
            // Row of u provably unchanged — no closure maintenance needed.
            self.removed.insert(cand);
            self.dirty_tails.insert(ui);
            return Decision::AcceptPrefilter;
        }

        if !self.has_alternate_path(cand, u, v) {
            match self.mode {
                EquivalenceMode::Strict | EquivalenceMode::Reachability => {
                    return Decision::RejectCheap
                }
                EquivalenceMode::ExecutionAware => {
                    // v is lost from u's row entirely; salvageable only if
                    // the annotation was vacuous under the execution
                    // context (e.g. a dead branch combination).
                    let old_v = irow_get(&self.irows[ui], v.index() as u32)
                        .expect("candidate edge target must be in tail row");
                    let ctx = self.pool.and(self.exec_ids[ui], self.exec_ids[v.index()]);
                    if !self.implies(ctx, old_v, DnfPool::<Condition>::EMPTY) {
                        return Decision::RejectCheap;
                    }
                }
            }
        }

        // General path: the full recomposed row of u.
        let new_u: IRow = match pre {
            Some(srow) => intern_row(&mut self.pool, srow),
            None => self.compose_interned(u, Some(cand), &HashMap::new()),
        };
        if new_u == self.irows[ui] {
            self.removed.insert(cand);
            self.dirty_tails.insert(ui);
            return Decision::AcceptRowUnchanged;
        }
        if !self.covered(ui, &new_u) {
            return Decision::RejectNotCovered;
        }

        // Slow path (rare): u's row weakened but stays covered — every
        // live ancestor's row must be recomputed and rechecked.
        let affected = self.affected_ancestors(u);
        let fresh = self.recompute_rows(&affected, u, cand, new_u);
        for &n in &affected {
            let ni = n.index();
            if fresh[&ni] == self.irows[ni] {
                continue;
            }
            // Borrow dance: `covered` needs `&mut self`, so take the new
            // row out of the map for the call.
            let new_row = &fresh[&ni];
            let ok = {
                let row = new_row.clone();
                self.covered(ni, &row)
            };
            if !ok {
                return Decision::RejectSlow;
            }
        }

        // Commit: swap rows in, then repair both reachability skeletons
        // for the affected cone (successors first — the affected list is
        // already in that order), rechecking only the columns the removal
        // can have lost.
        let cand_uncond = g.edge_weight(cand).cond.is_none();
        self.removed.insert(cand);
        self.dirty_tails.insert(ui);
        for (ni, row) in fresh {
            if self.irows[ni] != row {
                self.dirty_rows.insert(ni);
                if let Some(undo) = &mut self.row_undo {
                    if !undo.contains_key(&ni) {
                        let old = std::mem::take(&mut self.irows[ni]);
                        undo.insert(ni, old);
                    }
                }
            }
            self.irows[ni] = row;
        }
        self.repair_bitsets_after_removal(&affected, v, cand_uncond);
        Decision::AcceptSlow
    }
}

/// The generic §4.4 greedy algorithm with explicit [`MinimizeOptions`] —
/// the optimized engine (interned annotations, bitset prefilters, scoped
/// worker threads). Produces edge-for-edge the same minimal set as
/// [`minimize_generic_baseline`].
pub fn minimize_generic_with(
    cs: &ConstraintSet,
    exec: &ExecConditions,
    mode: EquivalenceMode,
    order: &EdgeOrder,
    opts: &MinimizeOptions,
) -> Result<MinimizeResult, MinimizeError> {
    let _span = obs::span_with("minimize.generic", || {
        format!("relations={} threads={}", cs.relations.len(), opts.effective_threads())
    });
    let sg = SyncGraph::build(cs);
    let g = &sg.graph;
    if let Some(cycle) = find_cycle(g) {
        return Err(MinimizeError::Conflict {
            cycle: cycle.iter().map(|&n| g.weight(n).label()).collect(),
        });
    }
    let topo = topo_sort(g).expect("cycle-free graph must sort");
    let candidates = order_candidates(g, &sg, order);
    let threads = opts.effective_threads();
    let closure_span = obs::span("minimize.closure");
    let mut eng = Engine::new(g, cs, exec, mode, threads, opts.pool_cache_limit, &topo);
    drop(closure_span);

    let greedy_span = obs::span_with("minimize.greedy", || format!("candidates={}", candidates.len()));
    let mut removed_rels: Vec<usize> = Vec::new();
    let mut checked = 0usize;
    let window = if threads > 1 { (threads * 4).max(8) } else { 1 };
    let mut k = 0usize;
    while k < candidates.len() {
        let end = (k + window).min(candidates.len());

        // Screening phase: compose the tentative tail row of every
        // prefilter-undecided candidate in the window concurrently against
        // a read-only snapshot. Results are advisory — the apply phase
        // re-runs the prefilters and drops any row whose dependency cone
        // an earlier acceptance dirtied.
        let mut pre: HashMap<usize, Vec<(u32, Dnf<Condition>)>> = HashMap::new();
        if threads > 1 && end - k > 1 {
            let undecided: Vec<(usize, EdgeId)> = (k..end)
                .map(|i| (i, candidates[i].0))
                .filter(|&(_, e)| eng.screen_undecided(e))
                .collect();
            if undecided.len() >= 2 {
                let (g, pool, irows, removed) = (eng.g, &eng.pool, &eng.irows, &eng.removed);
                let none: HashMap<usize, IRow> = HashMap::new();
                let rows = par_map(threads, &undecided, &|&(i, e): &(usize, EdgeId)| {
                    let (u, _) = g.endpoints(e);
                    (i, compose_structural(g, u, e, removed, pool, irows, &none))
                });
                pre.extend(rows);
            }
        }

        eng.dirty_rows.clear();
        eng.dirty_tails.clear();
        for i in k..end {
            let (cand, rel_idx) = candidates[i];
            checked += 1;
            let precomp = pre.remove(&i).filter(|_| eng.precomp_valid(cand));
            if eng.try_remove(cand, precomp) {
                removed_rels.push(rel_idx);
            }
        }
        k = end;
    }
    drop(greedy_span);

    let removed_set: HashSet<usize> = removed_rels.iter().copied().collect();
    let minimal = SyncGraph::subset(cs, &|i| !removed_set.contains(&i));
    let removed = removed_rels
        .iter()
        .map(|&i| cs.relations[i].clone())
        .collect();
    let stats = eng.stats();
    obs::counter_add("minimize.candidates_checked", checked as u64);
    obs::counter_add("minimize.implies_cache_hits", stats.implies_cache_hits);
    obs::counter_add("minimize.implies_cache_misses", stats.implies_cache_misses);
    obs::counter_add("minimize.implies_evictions", stats.implies_evictions);
    obs::gauge_set("minimize.pool_dnfs", stats.pool_dnfs as f64);
    obs::gauge_set("minimize.pool_terms", stats.pool_terms as f64);
    obs::gauge_set("minimize.implies_hit_rate", stats.implies_hit_rate());
    Ok(MinimizeResult {
        minimal,
        removed,
        candidates_checked: checked,
        stats,
    })
}

/// The sequential reference implementation of the §4.4 greedy algorithm —
/// structural rows, no interning, no prefilters, no threads. Kept for the
/// equivalence property tests and as the before-side of the `ext_a`
/// benchmarks; [`minimize_generic_with`] must match it edge for edge.
pub fn minimize_generic_baseline(
    cs: &ConstraintSet,
    exec: &ExecConditions,
    mode: EquivalenceMode,
    order: &EdgeOrder,
) -> Result<MinimizeResult, MinimizeError> {
    let sg = SyncGraph::build(cs);
    let g = &sg.graph;

    if let Some(cycle) = find_cycle(g) {
        return Err(MinimizeError::Conflict {
            cycle: cycle.iter().map(|&n| g.weight(n).label()).collect(),
        });
    }
    let topo = topo_sort(g).expect("cycle-free graph must sort");
    let mut topo_pos = vec![usize::MAX; g.node_bound()];
    for (i, &n) in topo.iter().enumerate() {
        topo_pos[n.index()] = i;
    }

    // Initial annotated closure.
    let mut rows: Vec<Row<Condition>> =
        dscweaver_graph::annotated_closure(g, &|_, w: &SyncEdge| w.cond.clone())
            .expect("acyclic")
            .into_rows();

    // Execution condition of a node (service nodes: always).
    let exec_of = |n: NodeId| -> Dnf<Condition> {
        match g.weight(n) {
            SyncNode::State(s) => exec.of(&s.activity),
            SyncNode::Service(_) => Dnf::always(),
        }
    };

    let candidates = order_candidates(g, &sg, order);

    let mut removed_edges: HashSet<EdgeId> = HashSet::new();
    let mut removed_rels: Vec<usize> = Vec::new();
    let mut checked = 0usize;
    // Dense scratch index: `scratch_of[n]` is the position of `n`'s
    // freshly recomputed row in `new_rows`, or `usize::MAX`. Allocated
    // once and reset per candidate (only the touched entries).
    let mut scratch_of: Vec<usize> = vec![usize::MAX; g.node_bound()];

    for (cand, rel_idx) in candidates {
        checked += 1;
        let (u, _) = g.endpoints(cand);

        // Fast path: recompute the row of the edge's tail first. Rows of
        // every other node depend on the graph only *through* u's row, so
        // if it is unchanged the whole closure is unchanged (accept
        // immediately), and if it is not even covered the removal is
        // rejected without touching the ancestors.
        let new_u = compose_without(g, u, cand, &removed_edges, &rows, &[], &scratch_of);
        if new_u == rows[u.index()] {
            // Closure untouched: the constraint was pure redundancy.
            removed_edges.insert(cand);
            removed_rels.push(rel_idx);
            continue;
        }
        if !row_covered(&rows[u.index()], &new_u, mode, &exec_of(u), &exec_of, cs) {
            continue; // load-bearing edge
        }

        // Slow path (rare): u's row weakened but stays covered — every
        // ancestor's row must be rechecked.
        let mut affected: Vec<NodeId> = Vec::new();
        {
            let mut seen = vec![false; g.node_bound()];
            let mut stack = vec![u];
            seen[u.index()] = true;
            while let Some(x) = stack.pop() {
                affected.push(x);
                for e in g.in_edges(x) {
                    if removed_edges.contains(&e) {
                        continue;
                    }
                    let (p, _) = g.endpoints(e);
                    if !seen[p.index()] {
                        seen[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
        }
        // Recompute affected rows in reverse topological order (the
        // original order stays valid: we only ever delete edges).
        affected.sort_by_key(|n| std::cmp::Reverse(topo_pos[n.index()]));
        let mut new_rows: Vec<(NodeId, Row<Condition>)> = Vec::with_capacity(affected.len());
        for &n in &affected {
            let row = compose_without(g, n, cand, &removed_edges, &rows, &new_rows, &scratch_of);
            scratch_of[n.index()] = new_rows.len();
            new_rows.push((n, row));
        }
        for &n in &affected {
            scratch_of[n.index()] = usize::MAX;
        }

        // Definition 4/5 check on every affected row.
        let ok = new_rows.iter().all(|(n, new_row)| {
            row_covered(&rows[n.index()], new_row, mode, &exec_of(*n), &exec_of, cs)
        });

        if ok {
            removed_edges.insert(cand);
            removed_rels.push(rel_idx);
            for (n, row) in new_rows {
                rows[n.index()] = row;
            }
        }
    }

    let removed_set: HashSet<usize> = removed_rels.iter().copied().collect();
    let minimal = SyncGraph::subset(cs, &|i| !removed_set.contains(&i));
    let removed = removed_rels
        .iter()
        .map(|&i| cs.relations[i].clone())
        .collect();
    Ok(MinimizeResult {
        minimal,
        removed,
        candidates_checked: checked,
        stats: MinimizeStats::default(),
    })
}

/// Transitive-reduction fast path for unconditional constraint sets.
///
/// An edge `u → v` is removable iff a two-or-more-step path `u ⇒ v`
/// exists (reduction criterion — removals never change the closure, so
/// the criterion evaluated on the original closure stays valid), or iff a
/// parallel duplicate of it survives. `order` decides which duplicate of
/// a bundle is kept, exactly as in the greedy algorithm.
pub fn minimize_unconditional_fast(
    cs: &ConstraintSet,
    order: &EdgeOrder,
) -> Result<MinimizeResult, MinimizeError> {
    let sg = SyncGraph::build(cs);
    let g = &sg.graph;
    if let Some(cycle) = find_cycle(g) {
        return Err(MinimizeError::Conflict {
            cycle: cycle.iter().map(|&n| g.weight(n).label()).collect(),
        });
    }
    let closure = dscweaver_graph::transitive_closure(g);

    let candidates = order_candidates(g, &sg, order);

    // Count live constraint edges per (u, v) pair for duplicate handling.
    let mut live_per_pair: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    for &(e, _) in &candidates {
        *live_per_pair.entry(g.endpoints(e)).or_insert(0) += 1;
    }

    let mut removed_rels: Vec<usize> = Vec::new();
    let mut checked = 0usize;
    for &(e, rel_idx) in &candidates {
        checked += 1;
        let (u, v) = g.endpoints(e);
        // Two-or-more-step path: some other successor of u reaches v (or
        // *is* v via a lifecycle edge — impossible here since lifecycle
        // targets are states of the same activity and v ≠ u's own state
        // chain only when the constraint is a self-loop, which the cycle
        // check excluded).
        let two_step = g.out_edges(u).any(|oe| {
            if oe == e {
                return false;
            }
            let (_, w) = g.endpoints(oe);
            w == v && !matches!(g.edge_weight(oe).kind, dscweaver_dscl::EdgeKind::Constraint(_))
                || w != v && closure.reaches(w, v)
        });
        let duplicate_left = live_per_pair[&(u, v)] > 1;
        if two_step || duplicate_left {
            removed_rels.push(rel_idx);
            *live_per_pair.get_mut(&(u, v)).expect("counted") -= 1;
        }
    }

    let removed_set: std::collections::HashSet<usize> =
        removed_rels.iter().copied().collect();
    let minimal = SyncGraph::subset(cs, &|i| !removed_set.contains(&i));
    let removed = removed_rels
        .iter()
        .map(|&i| cs.relations[i].clone())
        .collect();
    Ok(MinimizeResult {
        minimal,
        removed,
        candidates_checked: checked,
        stats: MinimizeStats::default(),
    })
}

/// Recomposes the closure row of `n` with edge `skip` (and every edge in
/// `removed`) excluded. Successor rows come from `scratch` (freshly
/// recomputed rows, located via the dense `scratch_of` index, `usize::MAX`
/// meaning absent) when present, else from the stable `rows` table —
/// successors outside the affected set are untouched by the removal.
fn compose_without(
    g: &DiGraph<SyncNode, SyncEdge>,
    n: NodeId,
    skip: EdgeId,
    removed: &HashSet<EdgeId>,
    rows: &[Row<Condition>],
    scratch: &[(NodeId, Row<Condition>)],
    scratch_of: &[usize],
) -> Row<Condition> {
    let mut row = Row::new();
    for e in g.out_edges(n) {
        if e == skip || removed.contains(&e) {
            continue;
        }
        let (_, m) = g.endpoints(e);
        let guard = g.edge_weight(e).cond.clone();
        row.add_term(m, guard.clone().map(|c| vec![c]).unwrap_or_default());
        let mrow: &Row<Condition> = match scratch_of[m.index()] {
            usize::MAX => &rows[m.index()],
            i => &scratch[i].1,
        };
        for (t, dnf) in mrow.iter() {
            row.compose_from(t, dnf, guard.as_ref());
        }
    }
    row
}

/// Is `old`'s row covered by `new` under `mode`? (`new` ⊆ `old` pointwise
/// holds by construction — removal only loses paths — so this is the whole
/// equivalence check.)
fn row_covered(
    old: &Row<Condition>,
    new: &Row<Condition>,
    mode: EquivalenceMode,
    src_exec: &Dnf<Condition>,
    exec_of: &dyn Fn(NodeId) -> Dnf<Condition>,
    cs: &ConstraintSet,
) -> bool {
    match mode {
        EquivalenceMode::Strict => old == new,
        EquivalenceMode::ExecutionAware => old.iter().all(|(t, old_dnf)| {
            let empty = Dnf::empty();
            let new_dnf = new.get(t).unwrap_or(&empty);
            let ctx = dnf_and(src_exec, &exec_of(t));
            implies_under(&ctx, old_dnf, new_dnf, &cs.domains)
        }),
        EquivalenceMode::Reachability => old.iter().all(|(t, _)| new.reaches(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::StateRef;

    fn cs_with(activities: &[&str], rels: Vec<Relation>) -> ConstraintSet {
        let mut cs = ConstraintSet::new("t");
        for a in activities {
            cs.add_activity(*a);
        }
        for r in rels {
            cs.push(r);
        }
        cs
    }

    fn before(a: &str, b: &str, o: Origin) -> Relation {
        Relation::before(StateRef::finish(a), StateRef::start(b), o)
    }

    fn run(cs: &ConstraintSet, mode: EquivalenceMode) -> MinimizeResult {
        let exec = ExecConditions::derive(cs);
        minimize(cs, &exec, mode, &EdgeOrder::default()).unwrap()
    }

    /// Minimal-set relations rendered and sorted — removal-order agnostic.
    fn kept_set(r: &MinimizeResult) -> Vec<String> {
        let mut v: Vec<String> = r
            .minimal
            .happen_befores()
            .map(|x| format!("{x} ({})", x.origin()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn transitive_shortcut_removed() {
        let cs = cs_with(
            &["a", "b", "c"],
            vec![
                before("a", "b", Origin::Data),
                before("b", "c", Origin::Data),
                before("a", "c", Origin::Cooperation),
            ],
        );
        let res = run(&cs, EquivalenceMode::Strict);
        assert_eq!(res.kept(), 2);
        assert_eq!(res.removed.len(), 1);
        assert_eq!(res.removed[0].origin(), Origin::Cooperation);
    }

    #[test]
    fn duplicate_constraint_removed_by_priority() {
        // data and cooperation duplicates of the same edge: the default
        // order removes the cooperation copy (paper's Figure 9 keeps →_d).
        let cs = cs_with(
            &["a", "b"],
            vec![
                before("a", "b", Origin::Data),
                before("a", "b", Origin::Cooperation),
            ],
        );
        let res = run(&cs, EquivalenceMode::Strict);
        assert_eq!(res.kept(), 1);
        assert_eq!(res.minimal.relations[0].origin(), Origin::Data);
    }

    #[test]
    fn diamond_keeps_all_edges() {
        let cs = cs_with(
            &["a", "b", "c", "d"],
            vec![
                before("a", "b", Origin::Data),
                before("a", "c", Origin::Data),
                before("b", "d", Origin::Data),
                before("c", "d", Origin::Data),
            ],
        );
        for mode in [EquivalenceMode::Strict, EquivalenceMode::ExecutionAware] {
            let res = run(&cs, mode);
            assert_eq!(res.kept(), 4, "mode {mode:?}");
        }
    }

    #[test]
    fn strict_keeps_condition_mismatch_execution_aware_removes() {
        // g →[g=T] b, plus a → b (unconditional) where b is control
        // dependent on g=T and a → g exists:
        //   a → g →[T] b   and the direct a → b.
        // Strict: direct edge's unconditional annotation is not matched by
        // the {g=T} path → kept. ExecutionAware: b only executes when g=T →
        // removed.
        let mut cs = cs_with(
            &["a", "g", "b"],
            vec![
                before("a", "g", Origin::Data),
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("b"),
                    Condition::new("g", "T"),
                    Origin::Control,
                ),
                before("a", "b", Origin::Data),
            ],
        );
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        let strict = run(&cs, EquivalenceMode::Strict);
        assert_eq!(strict.kept(), 3);
        let aware = run(&cs, EquivalenceMode::ExecutionAware);
        assert_eq!(aware.kept(), 2);
        assert!(aware
            .removed
            .iter()
            .any(|r| r.to_string() == "F(a) -> S(b)"));
    }

    #[test]
    fn branch_completeness_removal() {
        // g →[T] x → j, g →[F] y → j, and a direct g → j: with domain
        // {T, F} the direct edge is covered by the two branch paths.
        let mut cs = cs_with(
            &["g", "x", "y", "j"],
            vec![
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("x"),
                    Condition::new("g", "T"),
                    Origin::Control,
                ),
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("y"),
                    Condition::new("g", "F"),
                    Origin::Control,
                ),
                before("x", "j", Origin::Data),
                before("y", "j", Origin::Data),
                before("g", "j", Origin::Control),
            ],
        );
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        let aware = run(&cs, EquivalenceMode::ExecutionAware);
        assert_eq!(aware.kept(), 4);
        assert!(aware
            .removed
            .iter()
            .any(|r| r.to_string() == "F(g) -> S(j)"));
        // Strict mode must keep it.
        assert_eq!(run(&cs, EquivalenceMode::Strict).kept(), 5);
    }

    #[test]
    fn incomplete_domain_blocks_branch_removal() {
        let mut cs = cs_with(
            &["g", "x", "y", "j"],
            vec![
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("x"),
                    Condition::new("g", "T"),
                    Origin::Control,
                ),
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("y"),
                    Condition::new("g", "F"),
                    Origin::Control,
                ),
                before("x", "j", Origin::Data),
                before("y", "j", Origin::Data),
                before("g", "j", Origin::Control),
            ],
        );
        cs.add_domain("g", vec!["T".into(), "F".into(), "ERR".into()]);
        let aware = run(&cs, EquivalenceMode::ExecutionAware);
        assert_eq!(aware.kept(), 5, "a third branch value may occur");
    }

    #[test]
    fn cycle_reported_as_conflict() {
        let cs = cs_with(
            &["a", "b"],
            vec![
                before("a", "b", Origin::Data),
                before("b", "a", Origin::Cooperation),
            ],
        );
        let exec = ExecConditions::derive(&cs);
        let err = minimize(&cs, &exec, EquivalenceMode::Strict, &EdgeOrder::default())
            .unwrap_err();
        let MinimizeError::Conflict { cycle } = err;
        assert!(cycle.len() >= 3);
        // Baseline reports the same conflict.
        assert!(minimize_generic_baseline(
            &cs,
            &exec,
            EquivalenceMode::Strict,
            &EdgeOrder::default()
        )
        .is_err());
    }

    #[test]
    fn result_is_locally_minimal() {
        // Chain with many shortcuts; after minimization, re-running removes
        // nothing (Definition 6, second bullet).
        let mut rels = Vec::new();
        let names = ["a", "b", "c", "d", "e"];
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                rels.push(before(names[i], names[j], Origin::Data));
            }
        }
        let cs = cs_with(&names, rels);
        let first = run(&cs, EquivalenceMode::ExecutionAware);
        assert_eq!(first.kept(), 4, "chain reduction");
        let second = run(&first.minimal, EquivalenceMode::ExecutionAware);
        assert!(second.removed.is_empty());
    }

    #[test]
    fn order_changes_which_duplicate_survives() {
        let cs = cs_with(
            &["a", "b"],
            vec![
                before("a", "b", Origin::Data),
                before("a", "b", Origin::Cooperation),
            ],
        );
        let exec = ExecConditions::derive(&cs);
        let given = minimize(&cs, &exec, EquivalenceMode::Strict, &EdgeOrder::Given).unwrap();
        // Given order offers the data copy first; it is removable while the
        // cooperation copy remains.
        assert_eq!(given.minimal.relations[0].origin(), Origin::Cooperation);
        let rev = minimize(
            &cs,
            &exec,
            EquivalenceMode::Strict,
            &EdgeOrder::ReverseGiven,
        )
        .unwrap();
        assert_eq!(rev.minimal.relations[0].origin(), Origin::Data);
        // Either way exactly one edge survives.
        assert_eq!(given.kept(), 1);
        assert_eq!(rev.kept(), 1);
    }

    #[test]
    fn state_granular_constraints_respected() {
        // S(a) → F(b) (overlapping lifetimes) is NOT implied by F(a) → S(b)
        // — the closure rows of S(a) differ.
        let cs = cs_with(
            &["a", "b"],
            vec![
                Relation::before(StateRef::start("a"), StateRef::finish("b"), Origin::Cooperation),
                before("a", "b", Origin::Data),
            ],
        );
        let res = run(&cs, EquivalenceMode::ExecutionAware);
        // F(a) → S(b) implies S(a) ... → S(b) → ... F(b)? S(a) reaches F(b)
        // through its own lifecycle (S→R→F of a, then F(a)→S(b)→...): so
        // S(a) → F(b) IS transitively implied and gets removed; the data
        // edge is load-bearing.
        assert_eq!(res.kept(), 1);
        assert_eq!(res.minimal.relations[0].origin(), Origin::Data);
    }

    #[test]
    fn fast_path_agrees_with_generic_on_unconditional_sets() {
        // Deterministic pseudo-random unconditional DAGs: the dispatch
        // (fast path), the optimized generic engine, and the sequential
        // baseline must keep exactly the same relations.
        let mut x: u64 = 0xD1B54A32D192ED03;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..20 {
            let n = 4 + (case % 5);
            let names: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
            let mut cs = ConstraintSet::new("rand");
            for a in &names {
                cs.add_activity(a.clone());
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    if rnd() % 3 == 0 {
                        let origin = if rnd() % 2 == 0 {
                            Origin::Data
                        } else {
                            Origin::Cooperation
                        };
                        cs.push(Relation::before(
                            StateRef::finish(&names[i]),
                            StateRef::start(&names[j]),
                            origin,
                        ));
                    }
                }
            }
            let exec = ExecConditions::derive(&cs);
            for order in [EdgeOrder::Given, EdgeOrder::ReverseGiven, EdgeOrder::default()] {
                let fast = minimize_unconditional_fast(&cs, &order).unwrap();
                let generic =
                    minimize_generic(&cs, &exec, EquivalenceMode::Strict, &order).unwrap();
                let baseline =
                    minimize_generic_baseline(&cs, &exec, EquivalenceMode::Strict, &order)
                        .unwrap();
                assert_eq!(
                    kept_set(&fast),
                    kept_set(&generic),
                    "case {case}, order {order:?}"
                );
                assert_eq!(
                    kept_set(&generic),
                    kept_set(&baseline),
                    "case {case}, order {order:?} (baseline)"
                );
            }
        }
    }

    #[test]
    fn engine_agrees_with_baseline_on_conditional_sets() {
        // Hand-built conditional sets covering the prefilter edge cases:
        // same-guard duplicates, guarded shortcut chains, branch joins.
        let mut cs = cs_with(
            &["a", "g", "x", "y", "j", "z"],
            vec![
                before("a", "g", Origin::Data),
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("x"),
                    Condition::new("g", "T"),
                    Origin::Control,
                ),
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("y"),
                    Condition::new("g", "F"),
                    Origin::Control,
                ),
                before("x", "j", Origin::Data),
                before("y", "j", Origin::Data),
                before("g", "j", Origin::Control),
                before("a", "j", Origin::Cooperation),
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("z"),
                    Condition::new("g", "T"),
                    Origin::Data,
                ),
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("z"),
                    Condition::new("g", "T"),
                    Origin::Cooperation,
                ),
            ],
        );
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        let exec = ExecConditions::derive(&cs);
        for mode in [
            EquivalenceMode::Strict,
            EquivalenceMode::ExecutionAware,
            EquivalenceMode::Reachability,
        ] {
            for order in [EdgeOrder::Given, EdgeOrder::ReverseGiven, EdgeOrder::default()] {
                for threads in [1usize, 4] {
                    let opts = MinimizeOptions {
                        threads,
                        ..Default::default()
                    };
                    let engine =
                        minimize_generic_with(&cs, &exec, mode, &order, &opts).unwrap();
                    let baseline =
                        minimize_generic_baseline(&cs, &exec, mode, &order).unwrap();
                    assert_eq!(
                        kept_set(&engine),
                        kept_set(&baseline),
                        "mode {mode:?}, order {order:?}, threads {threads}"
                    );
                    assert_eq!(engine.removed.len(), baseline.removed.len());
                }
            }
        }
    }

    #[test]
    fn fast_path_handles_lifecycle_shortcuts_and_duplicates() {
        // Constraint S(a) → F(a) is covered by a's own lifecycle.
        let mut cs = ConstraintSet::new("lc");
        cs.add_activity("a");
        cs.push(Relation::before(
            StateRef::start("a"),
            StateRef::finish("a"),
            Origin::Cooperation,
        ));
        let res = minimize_unconditional_fast(&cs, &EdgeOrder::default()).unwrap();
        assert_eq!(res.kept(), 0, "lifecycle covers it");
        // Triplicate edges: exactly one survives.
        let mut cs2 = ConstraintSet::new("dup");
        cs2.add_activity("x");
        cs2.add_activity("y");
        for _ in 0..3 {
            cs2.push(Relation::before(
                StateRef::finish("x"),
                StateRef::start("y"),
                Origin::Data,
            ));
        }
        let res2 = minimize_unconditional_fast(&cs2, &EdgeOrder::default()).unwrap();
        assert_eq!(res2.kept(), 1);
    }

    #[test]
    fn overlap_constraint_kept_when_not_implied() {
        // Only S(a) → F(b): nothing else implies it.
        let cs = cs_with(
            &["a", "b"],
            vec![Relation::before(
                StateRef::start("a"),
                StateRef::finish("b"),
                Origin::Cooperation,
            )],
        );
        let res = run(&cs, EquivalenceMode::ExecutionAware);
        assert_eq!(res.kept(), 1);
    }

    #[test]
    fn options_thread_resolution() {
        let three = MinimizeOptions {
            threads: 3,
            ..Default::default()
        };
        assert_eq!(three.effective_threads(), 3);
        assert!(MinimizeOptions::default().effective_threads() >= 1);
    }

    #[test]
    fn pool_cache_lru_eviction_preserves_results_and_counts_evictions() {
        // A capacity-1 memo churns through LRU eviction on nearly every
        // verdict; the minimal set must be unchanged and the telemetry
        // must show the evictions.
        let mut cs = cs_with(
            &["g", "x", "y", "j"],
            vec![
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("x"),
                    Condition::new("g", "T"),
                    Origin::Control,
                ),
                Relation::before_if(
                    StateRef::finish("g"),
                    StateRef::start("y"),
                    Condition::new("g", "F"),
                    Origin::Control,
                ),
                before("x", "j", Origin::Data),
                before("y", "j", Origin::Data),
                before("g", "j", Origin::Control),
            ],
        );
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        let exec = ExecConditions::derive(&cs);
        let order = EdgeOrder::default();
        let cached = minimize_generic_with(
            &cs,
            &exec,
            EquivalenceMode::ExecutionAware,
            &order,
            &MinimizeOptions::default(),
        )
        .unwrap();
        let evicting = minimize_generic_with(
            &cs,
            &exec,
            EquivalenceMode::ExecutionAware,
            &order,
            &MinimizeOptions {
                pool_cache_limit: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(kept_set(&cached), kept_set(&evicting));
        assert!(cached.stats.pool_dnfs > 1);
        assert_eq!(cached.stats.implies_evictions, 0);
        assert!(evicting.stats.implies_evictions > 0);
        // The same verdict sequence was issued either way; eviction only
        // converts would-be hits into recomputed misses.
        assert_eq!(
            cached.stats.implies_cache_hits + cached.stats.implies_cache_misses,
            evicting.stats.implies_cache_hits + evicting.stats.implies_cache_misses,
            "same verdict sequence, different caching"
        );
        assert!(evicting.stats.implies_cache_misses >= cached.stats.implies_cache_misses);
        assert!(evicting.stats.implies_hit_rate() <= cached.stats.implies_hit_rate());
    }
}
