//! §4.2 — DSCL representation of dependencies: merging the four dependency
//! dimensions into one synchronization constraint set.
//!
//! `P = {A → B | A →_d B ∨ A →_o B ∨ A →_s B} ∪ {→_1}`: data, cooperation
//! and service dependencies lower to unconditional HappenBefore relations,
//! control dependencies to conditional ones (the condition names the guard
//! activity — the dependency's source — and its branch value).
//!
//! State defaulting: a dependency endpoint with no explicit state
//! synchronizes on *Finish* when it is the source and *Start* when it is
//! the target (`F_i → S_j` for a data dependency, §4.1). Explicit states
//! (fine-granularity cooperation dependencies) pass through unchanged.

use crate::dependency::{Dependency, DependencyKind, DependencySet};
use dscweaver_dscl::{ActivityState, Condition, ConstraintSet, Origin, Relation};

/// Lowers one dependency to its DSCL relation.
pub fn lower(dep: &Dependency) -> Relation {
    let from = dep.from.resolve(ActivityState::Finish);
    let to = dep.to.resolve(ActivityState::Start);
    match &dep.kind {
        DependencyKind::Data => Relation::before(from, to, Origin::Data),
        DependencyKind::Cooperation => Relation::before(from, to, Origin::Cooperation),
        DependencyKind::Service => Relation::before(from, to, Origin::Service),
        DependencyKind::Control { value: Some(v) } => Relation::before_if(
            from,
            to,
            Condition::new(dep.from.name.clone(), v.clone()),
            Origin::Control,
        ),
        DependencyKind::Control { value: None } => Relation::before(from, to, Origin::Control),
    }
}

/// Merges a full dependency set into the synchronization constraint set
/// `SC = {A, S, P}` of Definition 1. Node declarations and guard domains
/// carry over; the relation list preserves the dependency order so Table-1
/// and Figure-7 reports line up.
pub fn merge(ds: &DependencySet) -> ConstraintSet {
    let mut cs = ConstraintSet::new(ds.name.clone());
    for a in &ds.activities {
        cs.add_activity(a.clone());
    }
    for s in &ds.services {
        cs.add_service(s.clone());
    }
    for (g, dom) in &ds.domains {
        cs.add_domain(g.clone(), dom.clone());
    }
    for dep in &ds.deps {
        cs.push(lower(dep));
    }
    cs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::StateRef;

    #[test]
    fn data_lowers_to_finish_start() {
        let r = lower(&Dependency::data("a", "b"));
        assert_eq!(r.to_string(), "F(a) -> S(b)");
        assert_eq!(r.origin(), Origin::Data);
    }

    #[test]
    fn control_carries_condition() {
        let r = lower(&Dependency::control("if_au", "x", "T"));
        assert_eq!(r.to_string(), "F(if_au) ->[if_au=T] S(x)");
        assert_eq!(r.origin(), Origin::Control);
    }

    #[test]
    fn unconditional_control() {
        let r = lower(&Dependency::control_unconditional("if_au", "reply"));
        assert_eq!(r.to_string(), "F(if_au) -> S(reply)");
        assert_eq!(r.origin(), Origin::Control);
    }

    #[test]
    fn explicit_states_pass_through() {
        let r = lower(&Dependency::cooperation_states(
            StateRef::start("collectSurvey"),
            StateRef::finish("closeOrder"),
        ));
        assert_eq!(r.to_string(), "S(collectSurvey) -> F(closeOrder)");
    }

    #[test]
    fn merge_preserves_declarations_and_order() {
        let mut ds = DependencySet::new("m");
        ds.add_activity("a");
        ds.add_activity("b");
        ds.add_activity("if_x");
        ds.add_service("Svc");
        ds.add_domain("if_x", vec!["T".into(), "F".into()]);
        ds.push(Dependency::data("a", "b"));
        ds.push(Dependency::service("a", "Svc"));
        ds.push(Dependency::control("if_x", "b", "T"));
        let cs = merge(&ds);
        assert!(cs.validate().is_empty(), "{:?}", cs.validate());
        assert_eq!(cs.constraint_count(), 3);
        assert_eq!(cs.relations[0].origin(), Origin::Data);
        assert_eq!(cs.relations[1].origin(), Origin::Service);
        assert_eq!(cs.relations[2].origin(), Origin::Control);
        assert_eq!(cs.domains["if_x"], vec!["T", "F"]);
    }
}
