//! The three DSCL synchronization relations (§4.1).

use crate::state::{Condition, StateRef};

/// Where a constraint came from — the paper's four dependency dimensions
/// plus bookkeeping origins introduced by the pipeline itself. Carried on
/// every relation so Table-1-style reports and the optimizer's provenance
/// output can name the source of each constraint (§1: sequencing constructs
/// "obfuscate the sources of dependencies"; we never do).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Origin {
    /// Data dependency (`→_d`, §3.1).
    Data,
    /// Control dependency (`→_1`, §3.1).
    Control,
    /// Service dependency (`→_s`, §3.2).
    Service,
    /// Cooperation dependency (`→_o`, §3.2).
    Cooperation,
    /// Produced by service-dependency translation (§4.3, the bold edges of
    /// Figure 8).
    Translated,
    /// Introduced by HappenTogether desugaring.
    Coordinator,
    /// Hand-written DSCL or unknown.
    Other,
}

impl Origin {
    /// The paper's arrow subscript for this dimension.
    pub fn subscript(self) -> &'static str {
        match self {
            Origin::Data => "d",
            Origin::Control => "1",
            Origin::Service => "s",
            Origin::Cooperation => "o",
            Origin::Translated => "t",
            Origin::Coordinator => "k",
            Origin::Other => "",
        }
    }
}

impl std::fmt::Display for Origin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Origin::Data => "data",
            Origin::Control => "control",
            Origin::Service => "service",
            Origin::Cooperation => "cooperation",
            Origin::Translated => "translated",
            Origin::Coordinator => "coordinator",
            Origin::Other => "other",
        };
        write!(f, "{name}")
    }
}

/// A DSCL relation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Relation {
    /// `from →_c to`: the state `from` must happen before the state `to`
    /// (under condition `cond`, if present).
    HappenBefore {
        /// The earlier state.
        from: StateRef,
        /// The later state.
        to: StateRef,
        /// Optional branch condition (the `c` subscript).
        cond: Option<Condition>,
        /// Which dependency dimension induced this constraint.
        origin: Origin,
    },
    /// `a ↔_c b`: the two states must be reached together. Syntactic sugar
    /// (§4.2) — desugared into HappenBefore relations through a coordinator
    /// activity before optimization.
    HappenTogether {
        /// One state.
        a: StateRef,
        /// The other state.
        b: StateRef,
        /// Optional branch condition.
        cond: Option<Condition>,
        /// Provenance.
        origin: Origin,
    },
    /// `a ⊘ b`: the states must never be concurrent. Checked dynamically by
    /// the scheduling engine (§4.2), not used for static scheme
    /// construction.
    Exclusive {
        /// One state.
        a: StateRef,
        /// The other state.
        b: StateRef,
        /// Provenance.
        origin: Origin,
    },
}

impl Relation {
    /// An unconditional HappenBefore.
    pub fn before(from: StateRef, to: StateRef, origin: Origin) -> Relation {
        Relation::HappenBefore {
            from,
            to,
            cond: None,
            origin,
        }
    }

    /// A conditional HappenBefore.
    pub fn before_if(from: StateRef, to: StateRef, cond: Condition, origin: Origin) -> Relation {
        Relation::HappenBefore {
            from,
            to,
            cond: Some(cond),
            origin,
        }
    }

    /// The provenance tag.
    pub fn origin(&self) -> Origin {
        match self {
            Relation::HappenBefore { origin, .. }
            | Relation::HappenTogether { origin, .. }
            | Relation::Exclusive { origin, .. } => *origin,
        }
    }

    /// The activities this relation mentions.
    pub fn activities(&self) -> [&str; 2] {
        match self {
            Relation::HappenBefore { from, to, .. } => [&from.activity, &to.activity],
            Relation::HappenTogether { a, b, .. } | Relation::Exclusive { a, b, .. } => {
                [&a.activity, &b.activity]
            }
        }
    }

    /// True for HappenBefore.
    pub fn is_happen_before(&self) -> bool {
        matches!(self, Relation::HappenBefore { .. })
    }
}

impl std::fmt::Display for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Relation::HappenBefore {
                from,
                to,
                cond: None,
                ..
            } => write!(f, "{from} -> {to}"),
            Relation::HappenBefore {
                from,
                to,
                cond: Some(c),
                ..
            } => write!(f, "{from} ->[{c}] {to}"),
            Relation::HappenTogether { a, b, cond: None, .. } => write!(f, "{a} <-> {b}"),
            Relation::HappenTogether {
                a,
                b,
                cond: Some(c),
                ..
            } => write!(f, "{a} <->[{c}] {b}"),
            Relation::Exclusive { a, b, .. } => write!(f, "{a} >< {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateRef;

    #[test]
    fn display_matches_dscl_syntax() {
        let r = Relation::before(StateRef::finish("a"), StateRef::start("b"), Origin::Data);
        assert_eq!(r.to_string(), "F(a) -> S(b)");
        let r = Relation::before_if(
            StateRef::finish("if_au"),
            StateRef::start("x"),
            Condition::new("if_au", "T"),
            Origin::Control,
        );
        assert_eq!(r.to_string(), "F(if_au) ->[if_au=T] S(x)");
        let r = Relation::Exclusive {
            a: StateRef::run("p"),
            b: StateRef::run("q"),
            origin: Origin::Cooperation,
        };
        assert_eq!(r.to_string(), "R(p) >< R(q)");
    }

    #[test]
    fn accessors() {
        let r = Relation::before(StateRef::finish("a"), StateRef::start("b"), Origin::Data);
        assert_eq!(r.origin(), Origin::Data);
        assert_eq!(r.activities(), ["a", "b"]);
        assert!(r.is_happen_before());
    }

    #[test]
    fn origin_subscripts_match_paper() {
        assert_eq!(Origin::Data.subscript(), "d");
        assert_eq!(Origin::Control.subscript(), "1");
        assert_eq!(Origin::Service.subscript(), "s");
        assert_eq!(Origin::Cooperation.subscript(), "o");
    }
}
