//! Workflow patterns (van der Aalst et al., the paper's reference \[1\])
//! expressed in DSCL.
//!
//! §4.1 claims: "DSCL can describe a wide variety of synchronization
//! behavior, like sequence, parallel split, synchronization, interleave
//! parallel routing, and milestone". This module delivers those
//! constructors (plus exclusive choice / simple merge, which fall out of
//! conditional HappenBefore), so the claim is a tested API rather than a
//! sentence. Each function *appends* the relations realizing one pattern
//! instance to a [`ConstraintSet`]; activities must already be declared.

use crate::constraint::ConstraintSet;
use crate::relation::{Origin, Relation};
use crate::state::{Condition, StateRef};

/// WCP-1 **Sequence**: `a` then `b`.
pub fn sequence(cs: &mut ConstraintSet, a: &str, b: &str) {
    cs.push(Relation::before(
        StateRef::finish(a),
        StateRef::start(b),
        Origin::Other,
    ));
}

/// WCP-2 **Parallel split**: after `a`, all `branches` may run
/// concurrently.
pub fn parallel_split(cs: &mut ConstraintSet, a: &str, branches: &[&str]) {
    for b in branches {
        cs.push(Relation::before(
            StateRef::finish(a),
            StateRef::start(*b),
            Origin::Other,
        ));
    }
}

/// WCP-3 **Synchronization**: `join` starts only after every branch
/// finishes.
pub fn synchronization(cs: &mut ConstraintSet, branches: &[&str], join: &str) {
    for b in branches {
        cs.push(Relation::before(
            StateRef::finish(*b),
            StateRef::start(join),
            Origin::Other,
        ));
    }
}

/// WCP-4 **Exclusive choice**: after guard `g`, exactly one case runs,
/// selected by `g`'s branch value. Declares `g`'s domain from the case
/// labels.
pub fn exclusive_choice(cs: &mut ConstraintSet, g: &str, cases: &[(&str, &str)]) {
    cs.add_domain(
        g,
        cases.iter().map(|(label, _)| label.to_string()).collect(),
    );
    for (label, target) in cases {
        cs.push(Relation::before_if(
            StateRef::finish(g),
            StateRef::start(*target),
            Condition::new(g, *label),
            Origin::Control,
        ));
    }
}

/// WCP-5 **Simple merge**: `join` follows whichever of the alternative
/// `cases` ran (the others are dead paths). The constraints are
/// unconditional — dead-path elimination resolves the non-taken sides —
/// so the merge neither blocks nor fires twice.
pub fn simple_merge(cs: &mut ConstraintSet, cases: &[&str], join: &str) {
    for c in cases {
        cs.push(Relation::before(
            StateRef::finish(*c),
            StateRef::start(join),
            Origin::Other,
        ));
    }
}

/// WCP-17 **Interleaved parallel routing**: the activities run in *some*
/// order, never concurrently, with no order fixed in advance — exactly
/// DSCL's Exclusive relation over every pair (§4.2's runtime-checked
/// dimension).
pub fn interleaved_parallel_routing(cs: &mut ConstraintSet, activities: &[&str]) {
    for (i, a) in activities.iter().enumerate() {
        for b in &activities[i + 1..] {
            cs.push(Relation::Exclusive {
                a: StateRef::run(*a),
                b: StateRef::run(*b),
                origin: Origin::Cooperation,
            });
        }
    }
}

/// WCP-18 **Milestone**: `b` may only *start* while `a` is still running —
/// i.e. `b` starts after `a` starts and before `a` finishes. The second
/// half is a fine-granularity constraint only state-level relations can
/// express (`S(b) → F(a)`).
pub fn milestone(cs: &mut ConstraintSet, a: &str, b: &str) {
    cs.push(Relation::before(
        StateRef::start(a),
        StateRef::start(b),
        Origin::Cooperation,
    ));
    cs.push(Relation::before(
        StateRef::start(b),
        StateRef::finish(a),
        Origin::Cooperation,
    ));
}

/// **Barrier** (start-together), realized by HappenTogether sugar.
pub fn barrier(cs: &mut ConstraintSet, a: &str, b: &str) {
    cs.push(Relation::HappenTogether {
        a: StateRef::start(a),
        b: StateRef::start(b),
        cond: None,
        origin: Origin::Cooperation,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(acts: &[&str]) -> ConstraintSet {
        let mut cs = ConstraintSet::new("patterns");
        for a in acts {
            cs.add_activity(*a);
        }
        cs
    }

    #[test]
    fn split_then_synchronize() {
        let mut cs = base(&["a", "x", "y", "z", "j"]);
        parallel_split(&mut cs, "a", &["x", "y", "z"]);
        synchronization(&mut cs, &["x", "y", "z"], "j");
        assert_eq!(cs.constraint_count(), 6);
        assert!(cs.validate().is_empty());
    }

    #[test]
    fn exclusive_choice_declares_domain() {
        let mut cs = base(&["g", "yes", "no", "maybe"]);
        exclusive_choice(
            &mut cs,
            "g",
            &[("Y", "yes"), ("N", "no"), ("M", "maybe")],
        );
        assert_eq!(cs.domains["g"], vec!["Y", "N", "M"]);
        assert_eq!(cs.constraint_count(), 3);
        assert!(cs.validate().is_empty());
    }

    #[test]
    fn interleaving_is_pairwise_exclusive() {
        let mut cs = base(&["p", "q", "r"]);
        interleaved_parallel_routing(&mut cs, &["p", "q", "r"]);
        assert_eq!(cs.exclusives().count(), 3);
        assert_eq!(cs.constraint_count(), 0, "no static ordering imposed");
    }

    #[test]
    fn milestone_uses_state_granularity() {
        let mut cs = base(&["session", "act"]);
        milestone(&mut cs, "session", "act");
        let strs: Vec<String> = cs.happen_befores().map(|r| r.to_string()).collect();
        assert!(strs.contains(&"S(session) -> S(act)".to_string()));
        assert!(strs.contains(&"S(act) -> F(session)".to_string()));
    }

    #[test]
    fn barrier_desugars() {
        let mut cs = base(&["a", "b"]);
        barrier(&mut cs, "a", "b");
        assert_eq!(cs.desugar_happen_together(), 1);
        assert!(cs.validate().is_empty());
        assert!(cs.activities.iter().any(|a| a.starts_with("__sync")));
    }

    #[test]
    fn sequence_and_merge() {
        let mut cs = base(&["g", "a", "b", "j", "end"]);
        exclusive_choice(&mut cs, "g", &[("T", "a"), ("F", "b")]);
        simple_merge(&mut cs, &["a", "b"], "j");
        sequence(&mut cs, "j", "end");
        assert!(cs.validate().is_empty());
        assert_eq!(cs.constraint_count(), 5);
    }
}
