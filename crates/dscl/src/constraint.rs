//! The synchronization constraint set — the paper's Definition 1:
//! `SC = {A, S, P}` with internal activities `A`, external services `S` and
//! (conditional) HappenBefore constraints `P`.

use crate::relation::{Origin, Relation};
use crate::state::{ActivityState, StateRef};
use std::collections::{BTreeMap, BTreeSet};

/// A synchronization constraint set (Definition 1). When `services` is
/// empty and every relation mentions only internal activities this is the
/// *activity* synchronization constraint set `ASC = {A, P}` of §4.3.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ConstraintSet {
    /// A label for reports (usually the process name).
    pub name: String,
    /// `A`: internal activities.
    pub activities: BTreeSet<String>,
    /// `S`: external service nodes, already split per port / dummy callback
    /// port in the paper's §3.3 naming (`Purchase_1`, `Purchase_d`, ...).
    pub services: BTreeSet<String>,
    /// `P` (plus not-yet-desugared sugar and runtime-checked exclusives).
    pub relations: Vec<Relation>,
    /// Branch-value domains: guard activity → every case label it can
    /// produce. Needed for branch-complete reasoning during optimization
    /// (a `T` path plus an `F` path jointly cover an unconditional
    /// constraint when `{T, F}` is the full domain).
    pub domains: BTreeMap<String, Vec<String>>,
}

/// Problems found by [`ConstraintSet::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConstraintError {
    /// A relation endpoint names an undeclared activity/service.
    UnknownNode {
        /// The undeclared name.
        name: String,
        /// The offending relation, displayed.
        relation: String,
    },
    /// A condition references an activity with no declared domain.
    UnknownGuard {
        /// The guard activity.
        guard: String,
        /// The offending relation, displayed.
        relation: String,
    },
    /// A condition uses a value outside the guard's domain.
    BadConditionValue {
        /// The guard activity.
        guard: String,
        /// The out-of-domain value.
        value: String,
    },
    /// An activity was declared both internal and external.
    AmbiguousNode(String),
}

impl std::fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintError::UnknownNode { name, relation } => {
                write!(f, "relation '{relation}' references undeclared node '{name}'")
            }
            ConstraintError::UnknownGuard { guard, relation } => {
                write!(f, "relation '{relation}' is conditioned on '{guard}' which has no declared domain")
            }
            ConstraintError::BadConditionValue { guard, value } => {
                write!(f, "condition value '{value}' is outside the domain of '{guard}'")
            }
            ConstraintError::AmbiguousNode(n) => {
                write!(f, "'{n}' is declared both as an activity and as a service")
            }
        }
    }
}

impl std::error::Error for ConstraintError {}

impl ConstraintSet {
    /// An empty set with a name.
    pub fn new(name: impl Into<String>) -> Self {
        ConstraintSet {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares an internal activity.
    pub fn add_activity(&mut self, name: impl Into<String>) {
        self.activities.insert(name.into());
    }

    /// Declares an external service node.
    pub fn add_service(&mut self, name: impl Into<String>) {
        self.services.insert(name.into());
    }

    /// Declares a guard's branch-value domain.
    pub fn add_domain(&mut self, guard: impl Into<String>, values: Vec<String>) {
        self.domains.insert(guard.into(), values);
    }

    /// Appends a relation.
    pub fn push(&mut self, r: Relation) {
        self.relations.push(r);
    }

    /// True if `name` is a declared internal activity.
    pub fn is_internal(&self, name: &str) -> bool {
        self.activities.contains(name)
    }

    /// True if `name` is a declared external service node.
    pub fn is_external(&self, name: &str) -> bool {
        self.services.contains(name)
    }

    /// All HappenBefore relations (the set `P` proper).
    pub fn happen_befores(&self) -> impl Iterator<Item = &Relation> {
        self.relations.iter().filter(|r| r.is_happen_before())
    }

    /// All Exclusive relations (runtime-checked, §4.2).
    pub fn exclusives(&self) -> impl Iterator<Item = (&StateRef, &StateRef)> {
        self.relations.iter().filter_map(|r| match r {
            Relation::Exclusive { a, b, .. } => Some((a, b)),
            _ => None,
        })
    }

    /// Count of HappenBefore constraints — the number Table 2 reports.
    pub fn constraint_count(&self) -> usize {
        self.happen_befores().count()
    }

    /// Counts HappenBefore constraints per origin dimension.
    pub fn counts_by_origin(&self) -> BTreeMap<Origin, usize> {
        let mut out = BTreeMap::new();
        for r in self.happen_befores() {
            *out.entry(r.origin()).or_insert(0) += 1;
        }
        out
    }

    /// Structural validation.
    pub fn validate(&self) -> Vec<ConstraintError> {
        let mut errors = Vec::new();
        for a in &self.activities {
            if self.services.contains(a) {
                errors.push(ConstraintError::AmbiguousNode(a.clone()));
            }
        }
        for r in &self.relations {
            for name in r.activities() {
                if !self.is_internal(name) && !self.is_external(name) {
                    errors.push(ConstraintError::UnknownNode {
                        name: name.to_string(),
                        relation: r.to_string(),
                    });
                }
            }
            let cond = match r {
                Relation::HappenBefore { cond, .. } | Relation::HappenTogether { cond, .. } => {
                    cond.as_ref()
                }
                Relation::Exclusive { .. } => None,
            };
            if let Some(c) = cond {
                match self.domains.get(&c.on) {
                    None => errors.push(ConstraintError::UnknownGuard {
                        guard: c.on.clone(),
                        relation: r.to_string(),
                    }),
                    Some(dom) if !dom.contains(&c.value) => {
                        errors.push(ConstraintError::BadConditionValue {
                            guard: c.on.clone(),
                            value: c.value.clone(),
                        })
                    }
                    _ => {}
                }
            }
        }
        errors
    }

    /// Desugars every HappenTogether relation into HappenBefore relations
    /// through a fresh zero-duration *coordinator* activity (§4.2 calls ↔ a
    /// "syntax sugar ... simulated by introducing a coordinating activity").
    ///
    /// For `X(a) ↔ Y(b)` with coordinator `k`:
    /// * every existing constraint **into** a `Start` end is redirected to
    ///   `S(k)` (the coordinator inherits the prerequisites), and
    ///   `F(k) → S(x)` forces the ends to begin together;
    /// * a `Finish` end instead contributes `F(x) → S(k)` and its outgoing
    ///   constraints are redirected to leave from `F(k)`.
    ///
    /// Under the scheduler this makes the paired states commit atomically
    /// once the coordinator fires. Conditions on the sugar carry over to the
    /// generated relations.
    pub fn desugar_happen_together(&mut self) -> usize {
        let mut count = 0;
        while let Some(pos) = self
            .relations
            .iter()
            .position(|r| matches!(r, Relation::HappenTogether { .. }))
        {
            let Relation::HappenTogether { a, b, cond, .. } = self.relations.remove(pos) else {
                unreachable!("position matched HappenTogether");
            };
            count += 1;
            let k = format!("__sync{count}_{}_{}", a.activity, b.activity);
            self.add_activity(k.clone());
            for end in [&a, &b] {
                match end.state {
                    ActivityState::Start | ActivityState::Run => {
                        // Redirect prerequisites of the end into the
                        // coordinator, then gate the end on the coordinator.
                        for r in &mut self.relations {
                            if let Relation::HappenBefore { to, .. } = r {
                                if *to == *end {
                                    *to = StateRef::start(k.clone());
                                }
                            }
                        }
                        self.relations.push(Relation::HappenBefore {
                            from: StateRef::finish(k.clone()),
                            to: end.clone(),
                            cond: cond.clone(),
                            origin: Origin::Coordinator,
                        });
                    }
                    ActivityState::Finish => {
                        // The coordinator observes the finish; downstream
                        // constraints leave from the coordinator instead.
                        for r in &mut self.relations {
                            if let Relation::HappenBefore { from, .. } = r {
                                if *from == *end {
                                    *from = StateRef::finish(k.clone());
                                }
                            }
                        }
                        self.relations.push(Relation::HappenBefore {
                            from: end.clone(),
                            to: StateRef::start(k.clone()),
                            cond: cond.clone(),
                            origin: Origin::Coordinator,
                        });
                    }
                }
            }
        }
        count
    }

    /// Renders the set in DSCL text syntax (re-parsable by
    /// [`crate::parser::parse_constraints`]).
    pub fn to_dscl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("constraints {} {{\n", self.name));
        if !self.activities.is_empty() {
            let list: Vec<&str> = self.activities.iter().map(String::as_str).collect();
            out.push_str(&format!("  activities {};\n", list.join(", ")));
        }
        if !self.services.is_empty() {
            let list: Vec<&str> = self.services.iter().map(String::as_str).collect();
            out.push_str(&format!("  services {};\n", list.join(", ")));
        }
        for (guard, values) in &self.domains {
            out.push_str(&format!("  domain {guard} {{ {} }}\n", values.join(", ")));
        }
        for r in &self.relations {
            let origin = r.origin();
            if origin == Origin::Other {
                out.push_str(&format!("  {r};\n"));
            } else {
                out.push_str(&format!("  {origin}: {r};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Condition;

    fn base() -> ConstraintSet {
        let mut cs = ConstraintSet::new("t");
        for a in ["a", "b", "c", "if_x"] {
            cs.add_activity(a);
        }
        cs.add_domain("if_x", vec!["T".into(), "F".into()]);
        cs
    }

    #[test]
    fn validate_ok_and_counts() {
        let mut cs = base();
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("if_x"),
            StateRef::start("c"),
            Condition::new("if_x", "T"),
            Origin::Control,
        ));
        assert!(cs.validate().is_empty());
        assert_eq!(cs.constraint_count(), 2);
        let counts = cs.counts_by_origin();
        assert_eq!(counts[&Origin::Data], 1);
        assert_eq!(counts[&Origin::Control], 1);
    }

    #[test]
    fn validate_catches_unknown_node_and_guard() {
        let mut cs = base();
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("ghost"),
            Origin::Data,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("a"),
            StateRef::start("b"),
            Condition::new("mystery", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("a"),
            StateRef::start("b"),
            Condition::new("if_x", "MAYBE"),
            Origin::Control,
        ));
        let errs = cs.validate();
        assert!(errs.iter().any(|e| matches!(e, ConstraintError::UnknownNode { .. })));
        assert!(errs.iter().any(|e| matches!(e, ConstraintError::UnknownGuard { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ConstraintError::BadConditionValue { .. })));
    }

    #[test]
    fn ambiguous_node_detected() {
        let mut cs = base();
        cs.add_service("a");
        assert!(cs
            .validate()
            .iter()
            .any(|e| matches!(e, ConstraintError::AmbiguousNode(_))));
    }

    #[test]
    fn desugar_start_start_barrier() {
        let mut cs = base();
        // prereq: F(c) -> S(a); sugar: S(a) <-> S(b)
        cs.push(Relation::before(
            StateRef::finish("c"),
            StateRef::start("a"),
            Origin::Data,
        ));
        cs.push(Relation::HappenTogether {
            a: StateRef::start("a"),
            b: StateRef::start("b"),
            cond: None,
            origin: Origin::Cooperation,
        });
        assert_eq!(cs.desugar_happen_together(), 1);
        assert!(cs
            .relations
            .iter()
            .all(|r| !matches!(r, Relation::HappenTogether { .. })));
        // Coordinator exists and inherited the prerequisite.
        let k = cs
            .activities
            .iter()
            .find(|a| a.starts_with("__sync"))
            .unwrap()
            .clone();
        let redirected = cs.relations.iter().any(|r| {
            matches!(r, Relation::HappenBefore { from, to, .. }
                if from == &StateRef::finish("c") && to == &StateRef::start(k.clone()))
        });
        assert!(redirected, "{:#?}", cs.relations);
        // Both ends gated on the coordinator.
        for end in ["a", "b"] {
            assert!(cs.relations.iter().any(|r| {
                matches!(r, Relation::HappenBefore { from, to, .. }
                    if from == &StateRef::finish(k.clone()) && to == &StateRef::start(end))
            }));
        }
    }

    #[test]
    fn desugar_finish_end_redirects_downstream() {
        let mut cs = base();
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("c"),
            Origin::Data,
        ));
        cs.push(Relation::HappenTogether {
            a: StateRef::finish("a"),
            b: StateRef::finish("b"),
            cond: None,
            origin: Origin::Cooperation,
        });
        cs.desugar_happen_together();
        let k = cs
            .activities
            .iter()
            .find(|a| a.starts_with("__sync"))
            .unwrap()
            .clone();
        // F(a) -> S(k) and F(b) -> S(k) exist; F(a) -> S(c) now leaves from k.
        for end in ["a", "b"] {
            assert!(cs.relations.iter().any(|r| {
                matches!(r, Relation::HappenBefore { from, to, .. }
                    if from == &StateRef::finish(end) && to == &StateRef::start(k.clone()))
            }));
        }
        assert!(cs.relations.iter().any(|r| {
            matches!(r, Relation::HappenBefore { from, to, .. }
                if from == &StateRef::finish(k.clone()) && to == &StateRef::start("c"))
        }));
    }

    #[test]
    fn dscl_rendering_mentions_everything() {
        let mut cs = base();
        cs.add_service("Purchase_1");
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("Purchase_1"),
            Origin::Service,
        ));
        let text = cs.to_dscl();
        assert!(text.contains("activities a, b, c, if_x;"));
        assert!(text.contains("services Purchase_1;"));
        assert!(text.contains("domain if_x { T, F }"));
        assert!(text.contains("service: F(a) -> S(Purchase_1);"));
    }
}
