//! # dscweaver-dscl
//!
//! The DAG Synchronization Constraint Language (DSCL) — the paper's §4.1
//! intermediate language in which dependencies of all four dimensions are
//! uniformly represented before merging and optimization.
//!
//! DSCL models an activity's life cycle as the states *Start → Run →
//! Finish* and provides three relations over states:
//!
//! * **HappenBefore** (`→_c`) — optionally conditional ordering;
//! * **HappenTogether** (`↔_c`) — sugar, desugared through a coordinator
//!   activity ([`ConstraintSet::desugar_happen_together`]);
//! * **Exclusive** (`⊘`) — mutual exclusion, enforced at run time by the
//!   scheduling engine rather than by the static scheme (§4.2).
//!
//! A [`ConstraintSet`] is the paper's Definition 1 triple `SC = {A, S, P}`;
//! [`SyncGraph`] materializes it as a graph over activity states and
//! service nodes for the optimizer. A text syntax with parser
//! ([`parse_constraints`]) and printer ([`ConstraintSet::to_dscl`]) rounds
//! the language out.

#![warn(missing_docs)]

pub mod constraint;
pub mod parser;
pub mod patterns;
pub mod relation;
pub mod state;
pub mod sync_graph;

pub use constraint::{ConstraintError, ConstraintSet};
pub use parser::{parse_constraints, DsclParseError};
pub use relation::{Origin, Relation};
pub use state::{ActivityState, Condition, StateRef};
pub use sync_graph::{EdgeKind, SyncEdge, SyncGraph, SyncNode};
