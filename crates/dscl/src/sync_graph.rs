//! Materialization of a [`ConstraintSet`] as a directed graph over
//! activity-*states* and service nodes — the structure every algorithm in
//! the optimizer works on.
//!
//! Internal activities contribute three nodes (`S`, `R`, `F`) connected by
//! implicit *lifecycle* edges `S → R → F` (these are facts of execution,
//! not constraints: the optimizer may never remove them, but transitive
//! reasoning flows through them). External service nodes (the paper's
//! `Purchase_1`, `Ship_d`, ...) contribute a single node each — a remote
//! port has no observable life cycle from the process's point of view.

use crate::constraint::ConstraintSet;
use crate::relation::{Origin, Relation};
use crate::state::{ActivityState, Condition, StateRef};
use dscweaver_graph::{DiGraph, EdgeId, FxHashMap, NodeId};

/// A node of the synchronization graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SyncNode {
    /// One life-cycle state of an internal activity.
    State(StateRef),
    /// An external service node.
    Service(String),
}

impl SyncNode {
    /// The display name (`F(a)` or the service name).
    pub fn label(&self) -> String {
        match self {
            SyncNode::State(s) => s.to_string(),
            SyncNode::Service(s) => s.clone(),
        }
    }

    /// The activity name if this is a state node.
    pub fn activity(&self) -> Option<&str> {
        match self {
            SyncNode::State(s) => Some(&s.activity),
            SyncNode::Service(_) => None,
        }
    }
}

/// Why an edge exists.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// Implicit `S → R → F` life-cycle edge; never removable.
    Lifecycle,
    /// A HappenBefore constraint; the payload is the index of the relation
    /// in the originating [`ConstraintSet::relations`].
    Constraint(usize),
}

/// Edge payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SyncEdge {
    /// Branch condition, if conditional.
    pub cond: Option<Condition>,
    /// Dependency dimension that induced the constraint.
    pub origin: Origin,
    /// Lifecycle vs constraint.
    pub kind: EdgeKind,
}

impl SyncEdge {
    /// True for implicit life-cycle edges.
    pub fn is_lifecycle(&self) -> bool {
        matches!(self.kind, EdgeKind::Lifecycle)
    }
}

/// The materialized synchronization graph.
#[derive(Clone, Debug)]
pub struct SyncGraph {
    /// The underlying graph.
    pub graph: DiGraph<SyncNode, SyncEdge>,
    // One entry per activity with its `[S, R, F]` node ids: resolving a
    // `StateRef` is a single borrowed-`&str` hash lookup plus an index,
    // with no per-lookup allocation (`build` resolves two endpoints per
    // relation, so this is on the hot path of every pipeline run).
    state_idx: FxHashMap<String, [NodeId; 3]>,
    service_idx: FxHashMap<String, NodeId>,
}

impl SyncGraph {
    /// Builds the graph for `cs`. HappenTogether sugar must already be
    /// desugared (sugar relations are skipped with a debug assertion);
    /// Exclusive relations are runtime-only and contribute no edges.
    pub fn build(cs: &ConstraintSet) -> SyncGraph {
        let mut graph: DiGraph<SyncNode, SyncEdge> = DiGraph::with_capacity(
            cs.activities.len() * 3 + cs.services.len(),
            cs.activities.len() * 2 + cs.relations.len(),
        );
        let mut state_idx = FxHashMap::default();
        let mut service_idx = FxHashMap::default();

        for a in &cs.activities {
            let ids = ActivityState::ALL.map(|st| {
                graph.add_node(SyncNode::State(StateRef {
                    activity: a.clone(),
                    state: st,
                }))
            });
            for w in ids.windows(2) {
                graph.add_edge(
                    w[0],
                    w[1],
                    SyncEdge {
                        cond: None,
                        origin: Origin::Other,
                        kind: EdgeKind::Lifecycle,
                    },
                );
            }
            state_idx.insert(a.clone(), ids);
        }
        for s in &cs.services {
            let n = graph.add_node(SyncNode::Service(s.clone()));
            service_idx.insert(s.clone(), n);
        }

        let mut sg = SyncGraph {
            graph,
            state_idx,
            service_idx,
        };
        for (i, r) in cs.relations.iter().enumerate() {
            match r {
                Relation::HappenBefore { from, to, cond, origin } => {
                    let (Some(f), Some(t)) = (sg.resolve(from), sg.resolve(to)) else {
                        continue; // undeclared endpoint: validation reports it
                    };
                    sg.graph.add_edge(
                        f,
                        t,
                        SyncEdge {
                            cond: cond.clone(),
                            origin: *origin,
                            kind: EdgeKind::Constraint(i),
                        },
                    );
                }
                Relation::HappenTogether { .. } => {
                    debug_assert!(false, "desugar HappenTogether before building the graph");
                }
                Relation::Exclusive { .. } => {}
            }
        }
        sg
    }

    /// Resolves a state reference: state node for internal activities, the
    /// single service node for external ones (the state letter is
    /// meaningless on services and ignored).
    pub fn resolve(&self, s: &StateRef) -> Option<NodeId> {
        self.state_idx
            .get(s.activity.as_str())
            .map(|ids| ids[s.state as usize])
            .or_else(|| self.service_idx.get(s.activity.as_str()).copied())
    }

    /// The node for an internal activity's state.
    pub fn state_node(&self, activity: &str, state: ActivityState) -> Option<NodeId> {
        self.state_idx.get(activity).map(|ids| ids[state as usize])
    }

    /// The node for an external service.
    pub fn service_node(&self, service: &str) -> Option<NodeId> {
        self.service_idx.get(service).copied()
    }

    /// Iterates over service nodes.
    pub fn service_nodes(&self) -> impl Iterator<Item = (&str, NodeId)> {
        self.service_idx.iter().map(|(s, &n)| (s.as_str(), n))
    }

    /// Constraint edges only (no lifecycle), as `(edge, relation index)`.
    pub fn constraint_edges(&self) -> impl Iterator<Item = (EdgeId, usize)> + '_ {
        self.graph.edge_ids().filter_map(|e| {
            match self.graph.edge_weight(e).kind {
                EdgeKind::Constraint(i) => Some((e, i)),
                EdgeKind::Lifecycle => None,
            }
        })
    }

    /// The guard-extraction view used with
    /// [`dscweaver_graph::annotated_closure`]: conditional constraint edges
    /// carry their [`Condition`] as the guard.
    pub fn guard_of(_e: EdgeId, w: &SyncEdge) -> Option<Condition> {
        w.cond.clone()
    }

    /// Projects constraint edges to activity granularity:
    /// `(from_activity_or_service, to_activity_or_service, cond, origin)`.
    pub fn activity_edges(&self) -> Vec<(String, String, Option<Condition>, Origin)> {
        let mut out = Vec::new();
        for (e, _) in self.constraint_edges() {
            let (f, t) = self.graph.endpoints(e);
            let w = self.graph.edge_weight(e);
            let fname = match self.graph.weight(f) {
                SyncNode::State(s) => s.activity.clone(),
                SyncNode::Service(s) => s.clone(),
            };
            let tname = match self.graph.weight(t) {
                SyncNode::State(s) => s.activity.clone(),
                SyncNode::Service(s) => s.clone(),
            };
            out.push((fname, tname, w.cond.clone(), w.origin));
        }
        out
    }

    /// Rebuilds a [`ConstraintSet`] keeping only the relations whose
    /// indices are in `keep` (plus all non-HappenBefore relations, which
    /// the optimizer never touches). Node declarations and domains carry
    /// over unchanged.
    pub fn subset(cs: &ConstraintSet, keep: &dyn Fn(usize) -> bool) -> ConstraintSet {
        // Clone the declarations but not the relations `cs.clone()` would
        // bring along only to be overwritten — on large sets the relations
        // are by far the heaviest part.
        let mut out = ConstraintSet::new(cs.name.clone());
        out.activities = cs.activities.clone();
        out.services = cs.services.clone();
        out.domains = cs.domains.clone();
        out.relations = cs
            .relations
            .iter()
            .enumerate()
            .filter(|(i, r)| !r.is_happen_before() || keep(*i))
            .map(|(_, r)| r.clone())
            .collect();
        out
    }

    /// A deterministic, sorted textual listing of the constraint edges —
    /// how the `repro` harness prints Figures 7, 8 and 9.
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = self
            .constraint_edges()
            .map(|(e, _)| {
                let (f, t) = self.graph.endpoints(e);
                let w = self.graph.edge_weight(e);
                let cond = w
                    .cond
                    .as_ref()
                    .map(|c| format!("[{c}]"))
                    .unwrap_or_default();
                format!(
                    "{} ->{} {}  ({})",
                    self.graph.weight(f).label(),
                    cond,
                    self.graph.weight(t).label(),
                    w.origin
                )
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn sample() -> ConstraintSet {
        let mut cs = ConstraintSet::new("g");
        for a in ["a", "b", "if_x"] {
            cs.add_activity(a);
        }
        cs.add_service("Svc_1");
        cs.add_domain("if_x", vec!["T".into(), "F".into()]);
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("if_x"),
            StateRef::start("b"),
            Condition::new("if_x", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("Svc_1"),
            Origin::Service,
        ));
        cs
    }

    #[test]
    fn lifecycle_edges_created() {
        let sg = SyncGraph::build(&sample());
        // 3 activities × 3 states + 1 service node.
        assert_eq!(sg.graph.node_count(), 10);
        // 3 activities × 2 lifecycle edges + 3 constraints.
        assert_eq!(sg.graph.edge_count(), 9);
        let s = sg.state_node("a", ActivityState::Start).unwrap();
        let r = sg.state_node("a", ActivityState::Run).unwrap();
        let f = sg.state_node("a", ActivityState::Finish).unwrap();
        assert!(sg.graph.has_edge(s, r));
        assert!(sg.graph.has_edge(r, f));
        assert!(sg.graph.edge_weight(sg.graph.find_edge(s, r).unwrap()).is_lifecycle());
    }

    #[test]
    fn constraints_connect_states_and_services() {
        let sg = SyncGraph::build(&sample());
        let fa = sg.state_node("a", ActivityState::Finish).unwrap();
        let sb = sg.state_node("b", ActivityState::Start).unwrap();
        let svc = sg.service_node("Svc_1").unwrap();
        assert!(sg.graph.has_edge(fa, sb));
        assert!(sg.graph.has_edge(fa, svc));
        assert_eq!(sg.constraint_edges().count(), 3);
    }

    #[test]
    fn resolve_service_ignores_state_letter() {
        let sg = SyncGraph::build(&sample());
        assert_eq!(
            sg.resolve(&StateRef::start("Svc_1")),
            sg.resolve(&StateRef::finish("Svc_1"))
        );
    }

    #[test]
    fn activity_projection() {
        let sg = SyncGraph::build(&sample());
        let edges = sg.activity_edges();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().any(
            |(f, t, c, o)| f == "if_x" && t == "b" && c.is_some() && *o == Origin::Control
        ));
    }

    #[test]
    fn subset_keeps_declarations() {
        let cs = sample();
        let kept = SyncGraph::subset(&cs, &|i| i != 1);
        assert_eq!(kept.constraint_count(), 2);
        assert_eq!(kept.activities, cs.activities);
        assert_eq!(kept.domains, cs.domains);
    }

    #[test]
    fn render_is_sorted_and_labeled() {
        let sg = SyncGraph::build(&sample());
        let text = sg.render();
        assert!(text.contains("F(a) -> S(b)  (data)"));
        assert!(text.contains("F(if_x) ->[if_x=T] S(b)  (control)"));
        assert!(text.contains("F(a) -> Svc_1  (service)"));
        let lines: Vec<&str> = text.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }
}

impl SyncGraph {
    /// Renders the constraint graph in Graphviz DOT syntax: state nodes as
    /// ellipses, service nodes as boxes, lifecycle edges dotted gray,
    /// constraints styled by dimension (data dashed, control labeled with
    /// the branch condition, translated bold).
    pub fn to_dot(&self, name: &str) -> String {
        dscweaver_graph::to_dot(
            &self.graph,
            name,
            |_, w| {
                let mut s = dscweaver_graph::NodeStyle::label(w.label());
                if matches!(w, SyncNode::Service(_)) {
                    s.shape = "box".into();
                    s.style = "filled".into();
                    s.fillcolor = "#eeeeee".into();
                }
                s
            },
            |_, w| {
                let mut s = dscweaver_graph::EdgeStyle::default();
                if let Some(c) = &w.cond {
                    s.label = c.to_string();
                }
                match w.kind {
                    EdgeKind::Lifecycle => {
                        s.style = "dotted".into();
                        s.color = "#aaaaaa".into();
                    }
                    EdgeKind::Constraint(_) => match w.origin {
                        Origin::Data => s.style = "dashed".into(),
                        Origin::Translated => s.style = "bold".into(),
                        _ => {}
                    },
                }
                s
            },
        )
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::relation::Relation;
    use crate::state::StateRef;

    #[test]
    fn dot_renders_styles() {
        let mut cs = ConstraintSet::new("d");
        cs.add_activity("a");
        cs.add_activity("b");
        cs.add_service("Svc");
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("b"),
            StateRef::start("Svc"),
            Origin::Service,
        ));
        let dot = SyncGraph::build(&cs).to_dot("demo");
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("shape=box"), "service node boxed");
        assert!(dot.contains("style=\"dotted\""), "lifecycle edges dotted");
        assert!(dot.contains("style=\"dashed\""), "data edges dashed");
    }
}
