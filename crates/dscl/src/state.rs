//! Activity life-cycle states and state references.
//!
//! DSCL (§4.1) "treats the life cycle of an activity as a sequence of
//! states, start (S), run (R), and finish (F), and synchronizes an activity
//! with others depending on its current state". Constraints therefore bind
//! *states*, not whole activities — that is what lets the language express
//! overlapping-lifetime constraints such as
//! `S(collectSurvey) → F(closeOrder)` (§3.2).

/// One of the three life-cycle states of an activity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ActivityState {
    /// The activity starts (is scheduled).
    Start,
    /// The activity is running.
    Run,
    /// The activity finishes.
    Finish,
}

impl ActivityState {
    /// The single-letter DSCL spelling.
    pub fn letter(self) -> char {
        match self {
            ActivityState::Start => 'S',
            ActivityState::Run => 'R',
            ActivityState::Finish => 'F',
        }
    }

    /// Parses the single-letter spelling.
    pub fn from_letter(c: char) -> Option<ActivityState> {
        match c {
            'S' => Some(ActivityState::Start),
            'R' => Some(ActivityState::Run),
            'F' => Some(ActivityState::Finish),
            _ => None,
        }
    }

    /// All states in life-cycle order.
    pub const ALL: [ActivityState; 3] = [
        ActivityState::Start,
        ActivityState::Run,
        ActivityState::Finish,
    ];
}

impl std::fmt::Display for ActivityState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A reference to one state of one activity, e.g. `F(invCredit_po)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateRef {
    /// The activity name.
    pub activity: String,
    /// Which life-cycle state.
    pub state: ActivityState,
}

impl StateRef {
    /// `S(activity)`.
    pub fn start(activity: impl Into<String>) -> Self {
        StateRef {
            activity: activity.into(),
            state: ActivityState::Start,
        }
    }

    /// `R(activity)`.
    pub fn run(activity: impl Into<String>) -> Self {
        StateRef {
            activity: activity.into(),
            state: ActivityState::Run,
        }
    }

    /// `F(activity)`.
    pub fn finish(activity: impl Into<String>) -> Self {
        StateRef {
            activity: activity.into(),
            state: ActivityState::Finish,
        }
    }
}

impl std::fmt::Display for StateRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.state, self.activity)
    }
}

/// A branch condition: the paper's `→_c` subscript, naming the guard
/// activity and the branch value it must have produced (e.g. `if_au = T`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Condition {
    /// The guard (branch-evaluating) activity.
    pub on: String,
    /// The required branch value (case label: `"T"`, `"F"`, ...).
    pub value: String,
}

impl Condition {
    /// `on = value`.
    pub fn new(on: impl Into<String>, value: impl Into<String>) -> Self {
        Condition {
            on: on.into(),
            value: value.into(),
        }
    }
}

impl std::fmt::Display for Condition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.on, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_round_trip() {
        for s in ActivityState::ALL {
            assert_eq!(ActivityState::from_letter(s.letter()), Some(s));
        }
        assert_eq!(ActivityState::from_letter('X'), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(StateRef::finish("a").to_string(), "F(a)");
        assert_eq!(StateRef::start("b").to_string(), "S(b)");
        assert_eq!(StateRef::run("c").to_string(), "R(c)");
        assert_eq!(Condition::new("if_au", "T").to_string(), "if_au=T");
    }

    #[test]
    fn ordering_is_lifecycle_order() {
        assert!(ActivityState::Start < ActivityState::Run);
        assert!(ActivityState::Run < ActivityState::Finish);
    }
}
