//! Text syntax for DSCL constraint sets.
//!
//! ```text
//! constraints Purchasing {
//!   activities recClient_po, invCredit_po, if_au, set_oi;
//!   services Credit, Credit_d;
//!   domain if_au { T, F }
//!
//!   data:        F(recClient_po) -> S(invCredit_po);
//!   control:     F(if_au) ->[if_au=F] S(set_oi);
//!   service:     F(invCredit_po) -> S(Credit);
//!   cooperation: S(collectSurvey) -> F(closeOrder);   // overlapping lifetimes
//!   F(a) <-> F(b);                                    // HappenTogether
//!   R(a) >< R(b);                                     // Exclusive
//! }
//! ```
//!
//! The optional `origin:` prefix tags the dependency dimension; untagged
//! relations get [`Origin::Other`]. `//` and `#` start line comments.
//! [`ConstraintSet::to_dscl`] emits exactly this syntax, and
//! `parse(to_dscl(cs)) == cs` (see the round-trip tests).

use crate::constraint::ConstraintSet;
use crate::relation::{Origin, Relation};
use crate::state::{ActivityState, Condition, StateRef};

/// Parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsclParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
}

impl std::fmt::Display for DsclParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DSCL parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DsclParseError {}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, message: impl Into<String>) -> DsclParseError {
        let line = 1 + self.src[..self.pos.min(self.src.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        DsclParseError {
            message: message.into(),
            line,
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while matches!(self.src.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            let rest = &self.src[self.pos.min(self.src.len())..];
            if rest.starts_with(b"//") || rest.starts_with(b"#") {
                while !matches!(self.src.get(self.pos), None | Some(b'\n')) {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos.min(self.src.len())..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), DsclParseError> {
        self.skip_ws();
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    fn ident(&mut self) -> Result<String, DsclParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.src.get(self.pos) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected an identifier"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn ident_list(&mut self) -> Result<Vec<String>, DsclParseError> {
        let mut out = vec![self.ident()?];
        loop {
            self.skip_ws();
            if self.eat(",") {
                out.push(self.ident()?);
            } else {
                return Ok(out);
            }
        }
    }

    /// `S(name)` / `R(name)` / `F(name)`.
    fn state_ref(&mut self) -> Result<StateRef, DsclParseError> {
        self.skip_ws();
        let letter = match self.src.get(self.pos) {
            Some(&b) => b as char,
            None => return Err(self.err("expected a state reference")),
        };
        let state = ActivityState::from_letter(letter)
            .ok_or_else(|| self.err(format!("expected S/R/F, got '{letter}'")))?;
        self.pos += 1;
        self.expect("(")?;
        let activity = self.ident()?;
        self.expect(")")?;
        Ok(StateRef { activity, state })
    }

    /// `[guard=value]`.
    fn condition(&mut self) -> Result<Condition, DsclParseError> {
        let on = self.ident()?;
        self.expect("=")?;
        let value = self.ident()?;
        self.expect("]")?;
        Ok(Condition { on, value })
    }
}

fn origin_from_tag(tag: &str) -> Option<Origin> {
    match tag {
        "data" => Some(Origin::Data),
        "control" => Some(Origin::Control),
        "service" => Some(Origin::Service),
        "cooperation" | "coop" => Some(Origin::Cooperation),
        "translated" => Some(Origin::Translated),
        "coordinator" => Some(Origin::Coordinator),
        "other" => Some(Origin::Other),
        _ => None,
    }
}

/// Parses a `constraints NAME { ... }` document.
pub fn parse_constraints(src: &str) -> Result<ConstraintSet, DsclParseError> {
    let mut p = P {
        src: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if p.ident()? != "constraints" {
        return Err(p.err("expected 'constraints'"));
    }
    let name = p.ident()?;
    p.expect("{")?;
    let mut cs = ConstraintSet::new(name);

    loop {
        p.skip_ws();
        if p.eat("}") {
            break;
        }
        if p.pos >= p.src.len() {
            return Err(p.err("unterminated constraints block"));
        }
        // Declarations start with a keyword identifier; relations start
        // with a state letter followed by '(' — or an origin tag followed
        // by ':'.
        let save = p.pos;
        let word = p.ident()?;
        p.skip_ws();
        match word.as_str() {
            "activities" => {
                for a in p.ident_list()? {
                    cs.add_activity(a);
                }
                p.expect(";")?;
                continue;
            }
            "services" => {
                for s in p.ident_list()? {
                    cs.add_service(s);
                }
                p.expect(";")?;
                continue;
            }
            "domain" => {
                let guard = p.ident()?;
                p.expect("{")?;
                let values = p.ident_list()?;
                p.expect("}")?;
                cs.add_domain(guard, values);
                continue;
            }
            _ => {}
        }
        // Relation, possibly with an origin tag.
        let origin = if p.eat(":") {
            origin_from_tag(&word)
                .ok_or_else(|| p.err(format!("unknown origin tag '{word}'")))?
        } else {
            p.pos = save; // the word was the start of a state ref
            Origin::Other
        };
        let a = p.state_ref()?;
        p.skip_ws();
        let rel = if p.eat("->") {
            let cond = if p.eat("[") { Some(p.condition()?) } else { None };
            let b = p.state_ref()?;
            Relation::HappenBefore {
                from: a,
                to: b,
                cond,
                origin,
            }
        } else if p.eat("<->") {
            let cond = if p.eat("[") { Some(p.condition()?) } else { None };
            let b = p.state_ref()?;
            Relation::HappenTogether { a, b, cond, origin }
        } else if p.eat("><") {
            let b = p.state_ref()?;
            Relation::Exclusive { a, b, origin }
        } else {
            return Err(p.err("expected '->', '<->' or '><'"));
        };
        p.expect(";")?;
        cs.push(rel);
    }
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing content after constraints block"));
    }
    Ok(cs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
constraints Demo {
  activities a, b, if_x, set_oi;   // internal
  services Credit, Credit_d;
  domain if_x { T, F }

  data:        F(a) -> S(b);
  control:     F(if_x) ->[if_x=F] S(set_oi);
  service:     F(a) -> S(Credit);
  cooperation: S(a) -> F(b);
  F(a) <-> F(b);
  R(a) >< R(b);
}
"#;

    #[test]
    fn parses_all_forms() {
        let cs = parse_constraints(SRC).unwrap();
        assert_eq!(cs.name, "Demo");
        assert_eq!(cs.activities.len(), 4);
        assert_eq!(cs.services.len(), 2);
        assert_eq!(cs.domains["if_x"], vec!["T", "F"]);
        assert_eq!(cs.relations.len(), 6);
        assert_eq!(cs.constraint_count(), 4);
        assert_eq!(cs.exclusives().count(), 1);
        let conditional = cs
            .happen_befores()
            .find(|r| matches!(r, Relation::HappenBefore { cond: Some(_), .. }))
            .unwrap();
        assert_eq!(conditional.origin(), Origin::Control);
    }

    #[test]
    fn round_trip_through_to_dscl() {
        let cs = parse_constraints(SRC).unwrap();
        let text = cs.to_dscl();
        let again = parse_constraints(&text).unwrap();
        assert_eq!(again, cs);
    }

    #[test]
    fn untagged_relation_gets_other() {
        let cs = parse_constraints("constraints X { activities a, b; F(a) -> S(b); }").unwrap();
        assert_eq!(cs.relations[0].origin(), Origin::Other);
    }

    #[test]
    fn bad_origin_tag_rejected() {
        let err =
            parse_constraints("constraints X { activities a, b; bogus: F(a) -> S(b); }")
                .unwrap_err();
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn bad_state_letter_rejected() {
        let err =
            parse_constraints("constraints X { activities a, b; Q(a) -> S(b); }").unwrap_err();
        assert!(err.message.contains("S/R/F") || err.message.contains("'->'"));
    }

    #[test]
    fn line_numbers_reported() {
        let err = parse_constraints("constraints X {\n activities a;\n F(a) -> ;\n}").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn missing_semicolon_rejected() {
        assert!(parse_constraints("constraints X { activities a, b; F(a) -> S(b) }").is_err());
    }

    #[test]
    fn empty_block_ok() {
        let cs = parse_constraints("constraints Empty { }").unwrap();
        assert!(cs.relations.is_empty());
        assert!(cs.activities.is_empty());
    }
}
