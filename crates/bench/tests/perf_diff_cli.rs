//! Tier-1 smoke of the `repro perf-diff` CLI exit-code contract: a
//! committed artifact diffed against itself exits 0, a doctored
//! regression exits 1, and usage errors exit 2.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn committed_artifact_self_diff_exits_zero() {
    let artifact = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_minimize.json");
    let out = repro(&["perf-diff", artifact, artifact]);
    assert!(
        out.status.success(),
        "self-diff must be clean: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("perf-diff: OK"), "{stdout}");
}

#[test]
fn serve_artifact_self_diff_exits_zero() {
    // The serve artifact carries the connection-mode and variant-workload
    // sections; every row must self-match (distinct identity keys), or
    // perf-diff would flag a committed artifact against itself.
    let artifact = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let out = repro(&["perf-diff", artifact, artifact]);
    assert!(
        out.status.success(),
        "serve self-diff must be clean: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("perf-diff: OK"), "{stdout}");
}

#[test]
fn regression_exits_one_and_usage_errors_exit_two() {
    let dir = std::env::temp_dir().join(format!("perf_diff_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(
        &old,
        r#"{"artifact": "BENCH_t", "cases": [{"name": "x", "run_ms": 10.0}]}"#,
    )
    .unwrap();
    std::fs::write(
        &new,
        r#"{"artifact": "BENCH_t", "cases": [{"name": "x", "run_ms": 100.0}]}"#,
    )
    .unwrap();
    let (old, new) = (old.to_str().unwrap(), new.to_str().unwrap());

    let out = repro(&["perf-diff", old, new]);
    assert_eq!(out.status.code(), Some(1), "10x slower must fail the gate");
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSION"));

    // A generous threshold lets the same pair pass.
    let out = repro(&["perf-diff", old, new, "--threshold", "20"]);
    assert_eq!(out.status.code(), Some(0));

    // Usage errors: missing operand, bad flag value, unreadable file.
    assert_eq!(repro(&["perf-diff", old]).status.code(), Some(2));
    assert_eq!(
        repro(&["perf-diff", old, new, "--threshold", "0.5"]).status.code(),
        Some(2)
    );
    assert_eq!(
        repro(&["perf-diff", old, "/nonexistent/x.json"]).status.code(),
        Some(2)
    );

    std::fs::remove_dir_all(&dir).ok();
}
