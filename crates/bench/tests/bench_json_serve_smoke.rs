//! Tier-1 smoke run of the `repro bench-json --suite serve` measurement
//! path: serves the small process population cold and warm through the
//! daemon's request handler, gates cold/warm/one-shot response bodies
//! bit-identical (asserted inside `bench_serve_json`), and checks the
//! rendered artifact is well-formed. Timings in this mode are meaningless
//! (debug build) and are not asserted on — except the warm-over-cold
//! speedup, which must clear 5x even here because warm requests skip the
//! whole compile pipeline.

use dscweaver_bench::harness::BenchOpts;
use dscweaver_bench::perf_serve::{bench_serve_json, serve_cases};

#[test]
fn bench_json_serve_smoke_runs_and_renders() {
    let _serial = dscweaver_obs::test_lock();
    let (json, trace) = bench_serve_json(&BenchOpts {
        smoke: true,
        threads: 0,
    });
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"artifact\": \"BENCH_serve\""));
    assert!(json.contains("\"smoke\": true"));
    // One population × 2 thread counts × {cold, warm} = 4 pass rows, each
    // carrying the full field set exactly once.
    let rows = json.matches("\"req_per_sec\":").count();
    assert_eq!(rows, 4, "smoke sweeps 2 thread counts x cold/warm: {json}");
    for field in [
        "\"processes\":",
        "\"threads\":",
        "\"phase\":",
        "\"requests\":",
        "\"wall_ms\":",
        "\"p50_us\":",
        "\"p99_us\":",
        "\"cache_hits\":",
        "\"cache_misses\":",
    ] {
        assert!(
            json.matches(field).count() >= rows,
            "field {field}: {json}"
        );
    }
    assert_eq!(json.matches("\"phase\": \"cold\"").count(), 2);
    assert_eq!(json.matches("\"phase\": \"warm\"").count(), 2);
    // One speedup row per thread count.
    assert_eq!(json.matches("\"speedup\":").count(), 2);
    // The traced pass recorded the serve.* request phases.
    assert!(!trace.is_empty());
    let phases = trace.phase_totals_ms();
    for span in ["serve.lookup", "serve.compile", "serve.run"] {
        assert!(phases.contains_key(span), "{span} missing: {phases:?}");
    }
    // Balanced braces/brackets — cheap well-formedness check without a
    // JSON parser dependency (no string values contain braces).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn full_suite_serves_ten_thousand_distinct_processes() {
    let full = serve_cases(false);
    let big = full.iter().find(|c| c.processes >= 10_000).unwrap();
    assert_eq!(big.threads, vec![1, 4]);
}
