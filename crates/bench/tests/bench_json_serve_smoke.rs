//! Tier-1 smoke run of the `repro bench-json --suite serve` measurement
//! path: serves the small process population cold and warm through the
//! daemon's request handler, sweeps the TCP connection modes against a
//! live server, runs the textual-variant workload, gates response bodies
//! bit-identical (asserted inside `bench_serve_json`), and checks the
//! rendered artifact is well-formed. Timings in this mode are meaningless
//! (debug build) and are not asserted on — except the warm-over-cold
//! speedup, which must clear 5x even here because warm requests skip the
//! whole compile pipeline (the 2x keep-alive gate is full-suite only).

use dscweaver_bench::harness::BenchOpts;
use dscweaver_bench::perf_serve::{bench_serve_json, serve_cases, PIPELINE_DEPTHS};

#[test]
fn bench_json_serve_smoke_runs_and_renders() {
    let _serial = dscweaver_obs::test_lock();
    let (json, trace) = bench_serve_json(&BenchOpts {
        smoke: true,
        threads: 0,
    });
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"artifact\": \"BENCH_serve\""));
    assert!(json.contains("\"smoke\": true"));
    // One population × 2 thread counts × {cold, warm} = 4 pass rows, plus
    // per thread count one per_conn + one keepalive + one pipelined row
    // per swept depth, plus the single variant-workload row.
    let pass_rows = 4;
    let conn_rows = 2 * (2 + PIPELINE_DEPTHS.len());
    let rows = json.matches("\"req_per_sec\":").count();
    assert_eq!(
        rows,
        pass_rows + conn_rows + 1,
        "unexpected row count: {json}"
    );
    for field in [
        "\"processes\":",
        "\"threads\":",
        "\"requests\":",
        "\"wall_ms\":",
        "\"p50_us\":",
        "\"p99_us\":",
    ] {
        assert!(
            json.matches(field).count() >= pass_rows,
            "field {field}: {json}"
        );
    }
    assert_eq!(json.matches("\"phase\": \"cold\"").count(), 2);
    assert_eq!(json.matches("\"phase\": \"warm\"").count(), 2);
    // One warm-over-cold speedup row per thread count.
    assert_eq!(json.matches("\"speedup\":").count(), 2);
    // Connection modes: every mode ran at every thread count.
    assert_eq!(json.matches("\"mode\": \"per_conn\"").count(), 2);
    assert_eq!(json.matches("\"mode\": \"keepalive\"").count(), 2);
    assert_eq!(
        json.matches("\"mode\": \"pipelined\"").count(),
        2 * PIPELINE_DEPTHS.len()
    );
    // Section header plus one row per thread count.
    assert_eq!(json.matches("\"keepalive_speedup\":").count(), 3);
    assert_eq!(json.matches("\"best_speedup\":").count(), 2);
    // Variant workload: rate present and already gated >= 0.9 inside the
    // run; the smoke shape (10 bases x 10 variants) pins it at exactly
    // 0.9.
    assert_eq!(json.matches("\"canonical_hit_rate\": 0.900").count(), 1);
    assert!(json.contains("\"variants_per_base\": 10"));
    // The traced pass recorded the serve.* request phases.
    assert!(!trace.is_empty());
    let phases = trace.phase_totals_ms();
    for span in ["serve.lookup", "serve.compile", "serve.run"] {
        assert!(phases.contains_key(span), "{span} missing: {phases:?}");
    }
    // Balanced braces/brackets — cheap well-formedness check without a
    // JSON parser dependency (no string values contain braces).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn full_suite_serves_ten_thousand_distinct_processes() {
    let full = serve_cases(false);
    let big = full.iter().find(|c| c.processes >= 10_000).unwrap();
    assert_eq!(big.threads, vec![1, 4]);
}
