//! Tier-1 smoke run of the `repro bench-json` measurement path: prepares
//! the small comparison cases, runs both minimizer implementations,
//! asserts they agree (done inside `bench_minimize_json`), and checks the
//! rendered artifact is well-formed. Timings in this mode are meaningless
//! (debug build, one sample) and are not asserted on.

use dscweaver_bench::harness::BenchOpts;
use dscweaver_bench::perf::{bench_minimize_json, minimize_cases};

#[test]
fn bench_json_smoke_runs_and_renders() {
    let _serial = dscweaver_obs::test_lock();
    let (json, trace) = bench_minimize_json(&BenchOpts {
        smoke: true,
        threads: 2,
    });
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"artifact\": \"BENCH_minimize\""));
    assert!(json.contains("\"smoke\": true"));
    assert!(json.contains("\"name\": \"purchasing_n14\""));
    assert!(json.contains("\"speedup_par\""));
    // Every emitted case has the full field set, exactly once per case.
    let cases = json.matches("\"name\":").count();
    assert!(cases >= 2, "expected at least two smoke cases, got {cases}");
    for field in [
        "\"baseline_ms\":",
        "\"new_seq_ms\":",
        "\"new_par_ms\":",
        "\"closure_seq_ms\":",
        "\"closure_par_ms\":",
        "\"closure_speedup\":",
        "\"constraints_in\":",
        "\"redundancy\":",
        "\"pool_dnfs\":",
        "\"pool_terms\":",
        "\"implies_hit_rate\":",
        "\"implies_evictions\":",
        "\"phases\":",
    ] {
        assert_eq!(json.matches(field).count(), cases, "field {field}");
    }
    // The per-phase breakdown covers the minimizer's span taxonomy, and
    // the suite trace carries the merged instrumented runs.
    assert!(json.contains("\"minimize.generic\":"), "{json}");
    assert!(json.contains("\"minimize.greedy\":"), "{json}");
    assert!(!trace.is_empty());
    assert!(trace.phase_totals_ms().contains_key("minimize.closure"));
    // Balanced braces/brackets — cheap well-formedness check without a
    // JSON parser dependency (no string values contain braces).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn full_suite_contains_the_acceptance_case() {
    let full = minimize_cases(false);
    let big = full.iter().find(|c| c.name == "layered_n2003").unwrap();
    let (asc, _) = big.prepare();
    assert!(asc.activities.len() >= 2000);
    // Redundancy floor for the acceptance criterion: at least 2× the
    // skeleton. (The generator injects transitively-implied shortcuts, so
    // constraint_count / kept ≥ 2 once 10k shortcuts land.)
    assert!(asc.constraint_count() >= 2 * 10_000);
}
