//! Tier-1 smoke run of the `repro bench-json --suite monitor` measurement
//! path: generates the small fleet's interleaved log, gates every
//! (batch, threads) configuration against the post-hoc oracle (asserted
//! inside `bench_monitor_json`), and checks the rendered artifact is
//! well-formed. Timings in this mode are meaningless (debug build, one
//! sample) and are not asserted on.

use dscweaver_bench::harness::BenchOpts;
use dscweaver_bench::perf_monitor::{bench_monitor_json, monitor_cases};

#[test]
fn bench_json_monitor_smoke_runs_and_renders() {
    let _serial = dscweaver_obs::test_lock();
    let (json, trace) = bench_monitor_json(&BenchOpts {
        smoke: true,
        threads: 0,
    });
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"artifact\": \"BENCH_monitor\""));
    assert!(json.contains("\"smoke\": true"));
    assert!(json.contains("\"fleet\": 500"));
    // One fleet row; 2 batches × 2 threads = 4 case rows, each carrying
    // the full field set exactly once.
    assert_eq!(json.matches("\"injected_ordering\":").count(), 1);
    let rows = json.matches("\"events_per_sec\":").count();
    assert_eq!(rows, 4, "smoke sweeps 2 batches x 2 thread counts: {json}");
    for field in [
        "\"batch\":",
        "\"threads\":",
        "\"ingest_ms\":",
        "\"ns_per_event\":",
        "\"bytes_per_instance\":",
        "\"peak_live\":",
        "\"retired\":",
        "\"slab_rows\":",
        "\"verdicts\":",
    ] {
        assert_eq!(json.matches(field).count(), rows, "field {field}");
    }
    // The whole fleet stayed live until the final round and then retired.
    assert_eq!(json.matches("\"peak_live\": 500").count(), rows);
    assert_eq!(json.matches("\"retired\": 500").count(), rows);
    // The traced pass recorded the ingest phase spans.
    assert!(!trace.is_empty());
    assert!(
        trace.phase_totals_ms().contains_key("monitor.ingest"),
        "{:?}",
        trace.phase_totals_ms()
    );
    // Balanced braces/brackets — cheap well-formedness check without a
    // JSON parser dependency (no string values contain braces).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn full_suite_reaches_a_million_concurrent_instances() {
    let full = monitor_cases(false);
    let big = full.iter().find(|c| c.fleet == 1_000_000).unwrap();
    assert_eq!(big.batches, vec![1024, 16_384, 65_536]);
    assert_eq!(big.threads, vec![1, 2, 4]);
}
