//! Tier-1 smoke run of the `repro bench-json --suite petri` measurement
//! path: prepares the small dense-conditional cases, runs the legacy and
//! wavefront validators, asserts they agree (done inside
//! `bench_petri_json`), and checks the rendered artifact is well-formed.
//! Timings in this mode are meaningless (debug build, one sample) and are
//! not asserted on.

use dscweaver_bench::harness::BenchOpts;
use dscweaver_bench::perf_petri::{bench_petri_json, petri_cases};

#[test]
fn bench_petri_json_smoke_runs_and_renders() {
    let _serial = dscweaver_obs::test_lock();
    let (json, trace) = bench_petri_json(&BenchOpts {
        smoke: true,
        threads: 2,
    });
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"artifact\": \"BENCH_petri\""));
    assert!(json.contains("\"smoke\": true"));
    assert!(json.contains("\"name\": \"dense_g4_l3\""));
    assert!(json.contains("\"speedup_par\""));
    // Every emitted case has the full field set, exactly once per case.
    let cases = json.matches("\"name\":").count();
    assert!(cases >= 2, "expected at least two smoke cases, got {cases}");
    for field in [
        "\"n_activities\":",
        "\"assignments\":",
        "\"failures\":",
        "\"baseline_ms\":",
        "\"new_seq_ms\":",
        "\"new_par_ms\":",
        "\"speedup_seq\":",
        "\"speedup_par\":",
        "\"prepared_runs\":",
        "\"fresh_run_ms\":",
        "\"prepared_run_ms\":",
        "\"prepared_speedup\":",
        "\"phases\":",
    ] {
        assert_eq!(json.matches(field).count(), cases, "field {field}");
    }
    // The per-phase breakdown covers the validator's span taxonomy, and
    // the suite trace carries the merged instrumented runs.
    assert!(json.contains("\"petri.validate\":"), "{json}");
    assert!(json.contains("\"petri.assignments\":"), "{json}");
    // threads=2 over ≥16 assignments spawns real workers, so the
    // per-window worker phase shows up in the breakdown too.
    assert!(json.contains("\"par.range.window\":"), "{json}");
    assert!(!trace.is_empty());
    assert!(trace.phase_totals_ms().contains_key("petri.lower"));
    // The factored-enumeration section on guard-independent workloads:
    // every entry reports both the full and the strictly smaller factored
    // assignment counts (the measurement path asserts matching verdicts).
    let factored = json.matches("\"workload\":").count();
    assert!(factored >= 1, "expected a factored smoke case");
    for field in [
        "\"guards\":",
        "\"guard_groups\":",
        "\"assignment_space\":",
        "\"full_assignments\":",
        "\"factored_assignments\":",
        "\"full_ms\":",
        "\"factored_ms\":",
        "\"factored_speedup\":",
    ] {
        assert_eq!(json.matches(field).count(), factored, "field {field}");
    }
    // Balanced braces/brackets — cheap well-formedness check without a
    // JSON parser dependency (no string values contain braces).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn full_suite_contains_the_512_assignment_case() {
    let full = petri_cases(false);
    let big = full.iter().find(|c| c.name == "dense_g9_l12").unwrap();
    assert!(1usize << big.params.guards >= 512);
    assert!(big.params.chain_len >= 8, "slow paths must be deep");
}
