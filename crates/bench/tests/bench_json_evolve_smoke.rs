//! Tier-1 smoke run of the `repro bench-json --suite evolve` measurement
//! path: weaves the small case, applies level-stable edit bursts, runs
//! the session re-weave against a fresh weave (equivalence and
//! delta-path engagement asserted inside `bench_evolve_json`), and
//! checks the rendered artifact is well-formed. Timings in this mode are
//! meaningless (debug build, one sample) and are not asserted on.

use dscweaver_bench::harness::BenchOpts;
use dscweaver_bench::perf_evolve::{bench_evolve_json, evolve_cases};

#[test]
fn bench_json_evolve_smoke_runs_and_renders() {
    let _serial = dscweaver_obs::test_lock();
    let (json, trace) = bench_evolve_json(&BenchOpts {
        smoke: true,
        threads: 2,
    });
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"artifact\": \"BENCH_evolve\""));
    assert!(json.contains("\"smoke\": true"));
    assert!(json.contains("\"case\": \"evolve_n62\""));
    // Every burst row carries the full field set, exactly once per row.
    let rows = json.matches("\"case\":").count();
    assert_eq!(rows, 2, "smoke sweeps burst sizes 1 and 2: {json}");
    for field in [
        "\"burst\":",
        "\"n_activities\":",
        "\"asc_constraints\":",
        "\"edits\":",
        "\"fresh_ms\":",
        "\"delta_ms\":",
        "\"speedup\":",
        "\"path\":",
        "\"rows_recomputed\":",
        "\"rows_changed\":",
        "\"delta_levels\":",
        "\"candidates_total\":",
        "\"candidates_rescreened\":",
        "\"candidates_reused\":",
        "\"phases\":",
    ] {
        assert_eq!(json.matches(field).count(), rows, "field {field}");
    }
    // Every row took the delta path (asserted before timing, reflected
    // in the artifact), and the traced re-weave recorded its spans.
    assert_eq!(json.matches("\"path\": \"delta\"").count(), rows);
    assert!(!trace.is_empty());
    assert!(trace.phase_totals_ms().contains_key("reweave"), "{:?}", trace.phase_totals_ms());
    // Balanced braces/brackets — cheap well-formedness check without a
    // JSON parser dependency (no string values contain braces).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn full_suite_sweeps_bursts_on_the_scaling_case() {
    let full = evolve_cases(false);
    let big = full.iter().find(|c| c.name == "evolve_n2003").unwrap();
    assert_eq!(big.bursts, vec![1, 2, 4, 8, 16]);
}
