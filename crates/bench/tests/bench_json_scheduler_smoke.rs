//! Tier-1 smoke run of the `repro bench-json --suite scheduler`
//! measurement path: prepares the small cases, runs the rescan and
//! wavefront engines, asserts trace agreement (done inside
//! `bench_scheduler_json`), and checks the rendered artifact is
//! well-formed. Timings in this mode are meaningless (debug build, one
//! sample) and are not asserted on.

use dscweaver_bench::harness::BenchOpts;
use dscweaver_bench::perf_scheduler::{bench_scheduler_json, scheduler_cases};

#[test]
fn bench_scheduler_json_smoke_runs_and_renders() {
    let _serial = dscweaver_obs::test_lock();
    let (json, trace) = bench_scheduler_json(&BenchOpts {
        smoke: true,
        threads: 2,
    });
    assert!(json.starts_with("{\n"));
    assert!(json.ends_with("}\n"));
    assert!(json.contains("\"artifact\": \"BENCH_scheduler\""));
    assert!(json.contains("\"smoke\": true"));
    assert!(json.contains("\"name\": \"dense_g4_l3\""));
    assert!(json.contains("\"checks_wavefront\""));
    // Every emitted case has the full field set, exactly once per case.
    let cases = json.matches("\"name\":").count();
    assert!(cases >= 2, "expected at least two smoke cases, got {cases}");
    for field in [
        "\"n_activities\":",
        "\"constraints\":",
        "\"checks_rescan\":",
        "\"checks_wavefront\":",
        "\"baseline_ms\":",
        "\"new_seq_ms\":",
        "\"new_par_ms\":",
        "\"speedup_seq\":",
        "\"speedup_par\":",
        "\"replay_runs\":",
        "\"fresh_replays_ms\":",
        "\"session_replays_ms\":",
        "\"session_speedup\":",
        "\"phases\":",
    ] {
        assert_eq!(json.matches(field).count(), cases, "field {field}");
    }
    // The per-phase breakdown covers the scheduler's span taxonomy, and
    // the suite trace carries the merged instrumented runs.
    assert!(json.contains("\"scheduler.run\":"), "{json}");
    assert!(!trace.is_empty());
    assert!(trace.phase_totals_ms().contains_key("scheduler.prepare"));
    // Balanced braces/brackets — cheap well-formedness check without a
    // JSON parser dependency (no string values contain braces).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn full_suite_scales_past_a_thousand_activities() {
    let full = scheduler_cases(false);
    assert!(full.iter().any(|c| c.name == "layered_n1003"));
    assert!(full.iter().any(|c| c.name == "dense_g9_l12"));
}

/// The strict CLI contract of `repro bench-json`, shared by all suites:
/// unknown flags and malformed values exit 2 before any measurement, and
/// an unwritable `--out` exits 1.
mod cli {
    use std::process::Command;

    fn repro() -> Command {
        Command::new(env!("CARGO_BIN_EXE_repro"))
    }

    #[test]
    fn unknown_argument_exits_2() {
        let out = repro()
            .args(["bench-json", "--suite", "petri", "--smkoe"])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2));
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unknown argument"), "{err}");
    }

    #[test]
    fn bad_suite_exits_2() {
        let out = repro()
            .args(["bench-json", "--suite", "nonsense"])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2));
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--suite requires"), "{err}");
    }

    #[test]
    fn out_with_suite_all_exits_2() {
        let out = repro()
            .args(["bench-json", "--suite", "all", "--smoke", "--out", "x.json"])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2));
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--out needs a single suite"), "{err}");
    }

    #[test]
    fn unwritable_out_exits_1() {
        let out = repro()
            .args([
                "bench-json",
                "--suite",
                "scheduler",
                "--smoke",
                "--out",
                "/nonexistent-dir/x.json",
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1));
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("cannot write"), "{err}");
    }

    #[test]
    fn smoke_artifact_written_to_out_path() {
        let dir = std::env::temp_dir().join("dscweaver_bench_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_petri_smoke.json");
        let out = repro()
            .args(["bench-json", "--suite", "petri", "--smoke", "--threads", "2"])
            .arg("--out")
            .arg(&path)
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"artifact\": \"BENCH_petri\""));
        let _ = std::fs::remove_file(&path);
    }
}
