//! Ext-D: scheduling — the dataflow engine over the Figure-2 structural
//! constraints, the unoptimized ASC, and the minimal set; plus trace
//! verification cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dscweaver_bench::ext_d_sim;
use dscweaver_core::{ExecConditions, Weaver};
use dscweaver_scheduler::{simulate, structural_constraints, SimConfig};
use dscweaver_workloads::{fork_join, purchasing_dependencies, purchasing_process};
use std::hint::black_box;

fn bench_purchasing_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_d/purchasing");
    group.sample_size(50);
    let process = purchasing_process();
    let out = Weaver::new().run(&purchasing_dependencies()).unwrap();
    let structural = structural_constraints(&process).unwrap();
    let exec_structural = ExecConditions::derive(&structural);
    let sim = ext_d_sim("T");

    let cases: Vec<(&str, &dscweaver_dscl::ConstraintSet, &ExecConditions)> = vec![
        ("constructs", &structural, &exec_structural),
        ("full_asc", &out.asc, &out.exec),
        ("minimal", &out.minimal, &out.exec),
    ];
    for (name, cs, exec) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| black_box(simulate(cs, exec, &sim)))
        });
    }
    group.finish();
}

fn bench_redundancy_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_d/forkjoin_redundancy");
    group.sample_size(20);
    for redundant in [0usize, 25, 100] {
        let ds = fork_join(6, 6, redundant, 13);
        let out = Weaver::new().run(&ds).unwrap();
        let sim = SimConfig::default();
        group.bench_with_input(
            BenchmarkId::new("full", redundant),
            &(out.asc.clone(), out.exec.clone()),
            |b, (cs, exec)| b.iter(|| black_box(simulate(cs, exec, &sim))),
        );
        group.bench_with_input(
            BenchmarkId::new("minimal", redundant),
            &(out.minimal.clone(), out.exec.clone()),
            |b, (cs, exec)| b.iter(|| black_box(simulate(cs, exec, &sim))),
        );
    }
    group.finish();
}

fn bench_trace_verification(c: &mut Criterion) {
    let out = Weaver::new().run(&purchasing_dependencies()).unwrap();
    let schedule = simulate(&out.minimal, &out.exec, &ext_d_sim("T"));
    c.bench_function("ext_d/verify_trace_vs_full_asc", |b| {
        b.iter(|| black_box(schedule.trace.verify(&out.asc)))
    });
}

criterion_group!(
    benches,
    bench_purchasing_schemes,
    bench_redundancy_overhead,
    bench_trace_verification
);
criterion_main!(benches);
