//! Ext-D: scheduling — the dataflow engine over the Figure-2 structural
//! constraints, the unoptimized ASC, and the minimal set; plus trace
//! verification cost.

use dscweaver_bench::ext_d_sim;
use dscweaver_bench::harness::{black_box, Harness};
use dscweaver_core::{ExecConditions, Weaver};
use dscweaver_scheduler::{
    simulate, simulate_rescan_baseline, structural_constraints, SimConfig,
};
use dscweaver_workloads::{fork_join, purchasing_dependencies, purchasing_process};

fn main() {
    let mut h = Harness::from_env();

    let process = purchasing_process();
    let out = Weaver::new().run(&purchasing_dependencies()).unwrap();
    let structural = structural_constraints(&process).unwrap();
    let exec_structural = ExecConditions::derive(&structural);
    let sim = ext_d_sim("T");

    let cases: Vec<(&str, &dscweaver_dscl::ConstraintSet, &ExecConditions)> = vec![
        ("constructs", &structural, &exec_structural),
        ("full_asc", &out.asc, &out.exec),
        ("minimal", &out.minimal, &out.exec),
    ];
    for (name, cs, exec) in cases {
        h.bench(&format!("ext_d/purchasing/{name}"), 50, || {
            black_box(simulate(cs, exec, &sim))
        });
    }

    for redundant in [0usize, 25, 100] {
        let ds = fork_join(6, 6, redundant, 13);
        let fj = Weaver::new().run(&ds).unwrap();
        let sim = SimConfig::default();
        h.bench(&format!("ext_d/forkjoin_redundancy/full/{redundant}"), 20, || {
            black_box(simulate(&fj.asc, &fj.exec, &sim))
        });
        h.bench(
            &format!("ext_d/forkjoin_redundancy/minimal/{redundant}"),
            20,
            || black_box(simulate(&fj.minimal, &fj.exec, &sim)),
        );
    }

    let schedule = simulate(&out.minimal, &out.exec, &ext_d_sim("T"));
    h.bench("ext_d/verify_trace_vs_full_asc", 100, || {
        black_box(schedule.trace.verify(&out.asc))
    });

    // Rescan vs wavefront on a redundancy-heavy ASC (the
    // BENCH_scheduler.json comparison).
    let ds = fork_join(12, 10, 120, 13);
    let fj = Weaver::new().run(&ds).unwrap();
    let sim = SimConfig::default();
    h.bench("ext_d/engine/rescan", 20, || {
        black_box(simulate_rescan_baseline(&fj.asc, &fj.exec, &sim))
    });
    h.bench("ext_d/engine/wavefront_seq", 20, || {
        black_box(simulate(
            &fj.asc,
            &fj.exec,
            &SimConfig {
                threads: 1,
                ..Default::default()
            },
        ))
    });
    h.bench("ext_d/engine/wavefront_par", 20, || {
        black_box(simulate(&fj.asc, &fj.exec, &sim))
    });

    h.finish();
}
