//! Ext-C: Petri-net validation cost — lowering, per-assignment
//! simulation, and (small nets) full interleaving exploration.

use dscweaver_bench::harness::{black_box, Harness};
use dscweaver_core::Weaver;
use dscweaver_petri::{explore, explore_with, lower, validate, ValidateOptions};
use dscweaver_workloads::{
    dense_conditional, layered, purchasing_dependencies, DenseConditionalParams, LayeredParams,
};

fn main() {
    let mut h = Harness::from_env();

    let out = Weaver::new().run(&purchasing_dependencies()).unwrap();
    h.bench("ext_c/lower_purchasing", 100, || {
        black_box(lower(&out.minimal, &out.exec))
    });

    let mut cases = vec![("purchasing".to_string(), purchasing_dependencies())];
    for guards in [2usize, 6] {
        cases.push((
            format!("layered_g{guards}"),
            layered(&LayeredParams {
                width: 4,
                depth: 6,
                density: 0.3,
                redundant: 8,
                guards,
                seed: 3,
            }),
        ));
    }
    for (name, ds) in cases {
        let out = Weaver::new().run(&ds).unwrap();
        h.bench(&format!("ext_c/validate/{name}"), 20, || {
            black_box(validate(&out.minimal, &out.exec, &ValidateOptions::default()))
        });
    }

    // Bounded interleaving exploration on a small diamond-shaped set.
    let ds = layered(&LayeredParams {
        width: 2,
        depth: 3,
        density: 0.6,
        redundant: 0,
        guards: 0,
        seed: 1,
    });
    let out = Weaver::new().run(&ds).unwrap();
    let lowered = lower(&out.minimal, &out.exec);
    h.bench("ext_c/explore_interleavings", 20, || {
        black_box(explore(&lowered.net, 200_000))
    });
    h.bench("ext_c/explore_interleavings_layered", 20, || {
        black_box(explore_with(&lowered.net, 200_000, 0))
    });

    // Rescan vs wavefront per-assignment simulation on the
    // dense-conditional core (the BENCH_petri.json comparison).
    let ds = dense_conditional(&DenseConditionalParams {
        guards: 6,
        chain_len: 6,
        redundant: 32,
        seed: 11,
    });
    let out = Weaver::new().run(&ds).unwrap();
    for (name, opts) in [
        (
            "rescan",
            ValidateOptions {
                threads: 1,
                rescan_baseline: true,
                ..Default::default()
            },
        ),
        (
            "wavefront_seq",
            ValidateOptions {
                threads: 1,
                ..Default::default()
            },
        ),
        (
            "wavefront_par",
            ValidateOptions {
                threads: 0,
                ..Default::default()
            },
        ),
    ] {
        h.bench(&format!("ext_c/validate_dense_g6/{name}"), 10, || {
            black_box(validate(&out.minimal, &out.exec, &opts))
        });
    }

    h.finish();
}
