//! Ext-C: Petri-net validation cost — lowering, per-assignment
//! simulation, and (small nets) full interleaving exploration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dscweaver_core::Weaver;
use dscweaver_petri::{explore, lower, validate, ValidateOptions};
use dscweaver_workloads::{layered, purchasing_dependencies, LayeredParams};
use std::hint::black_box;

fn bench_lowering(c: &mut Criterion) {
    let out = Weaver::new().run(&purchasing_dependencies()).unwrap();
    c.bench_function("ext_c/lower_purchasing", |b| {
        b.iter(|| black_box(lower(&out.minimal, &out.exec)))
    });
}

fn bench_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_c/validate");
    group.sample_size(20);
    let mut cases = vec![("purchasing".to_string(), purchasing_dependencies())];
    for guards in [2usize, 6] {
        cases.push((
            format!("layered_g{guards}"),
            layered(&LayeredParams {
                width: 4,
                depth: 6,
                density: 0.3,
                redundant: 8,
                guards,
                seed: 3,
            }),
        ));
    }
    for (name, ds) in cases {
        let out = Weaver::new().run(&ds).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(out.minimal.clone(), out.exec.clone()),
            |b, (cs, exec)| {
                b.iter(|| black_box(validate(cs, exec, &ValidateOptions::default())))
            },
        );
    }
    group.finish();
}

fn bench_exploration(c: &mut Criterion) {
    // Bounded interleaving exploration on a small diamond-shaped set.
    let ds = layered(&LayeredParams {
        width: 2,
        depth: 3,
        density: 0.6,
        redundant: 0,
        guards: 0,
        seed: 1,
    });
    let out = Weaver::new().run(&ds).unwrap();
    let lowered = lower(&out.minimal, &out.exec);
    c.bench_function("ext_c/explore_interleavings", |b| {
        b.iter(|| black_box(explore(&lowered.net, 200_000)))
    });
}

criterion_group!(benches, bench_lowering, bench_validation, bench_exploration);
criterion_main!(benches);
