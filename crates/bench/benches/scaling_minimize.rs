//! Ext-A: optimization cost vs process size (the scaling evaluation the
//! paper's single worked example lacks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dscweaver_core::Weaver;
use dscweaver_workloads::{layered, service_mesh, LayeredParams};
use std::hint::black_box;

fn bench_layered_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_a/layered");
    group.sample_size(10);
    for (width, depth) in [(4usize, 5usize), (6, 10), (8, 15), (10, 25)] {
        let ds = layered(&LayeredParams {
            width,
            depth,
            density: 0.25,
            redundant: width * depth / 2,
            guards: 2,
            seed: 7,
        });
        let n = ds.activities.len();
        group.throughput(Throughput::Elements(ds.deps.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds, |b, ds| {
            b.iter(|| black_box(Weaver::new().run(ds).unwrap()))
        });
    }
    group.finish();
}

fn bench_mesh_translation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_a/service_mesh");
    group.sample_size(10);
    for n in [10usize, 40, 100] {
        let ds = service_mesh(n, 5);
        group.throughput(Throughput::Elements(ds.deps.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds, |b, ds| {
            b.iter(|| black_box(Weaver::new().run(ds).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layered_scaling, bench_mesh_translation_scaling);
criterion_main!(benches);
