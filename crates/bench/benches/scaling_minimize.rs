//! Ext-A: optimization cost vs process size (the scaling evaluation the
//! paper's single worked example lacks), plus the old-vs-new minimizer
//! comparison behind `BENCH_minimize.json` (`repro bench-json` writes the
//! machine-readable version of the same sweep).

use dscweaver_bench::harness::{black_box, Harness};
use dscweaver_bench::perf::minimize_cases;
use dscweaver_core::{minimize_generic, minimize_generic_baseline, Weaver};
use dscweaver_workloads::{layered, service_mesh, LayeredParams};

fn main() {
    let mut h = Harness::from_env();

    for (width, depth) in [(4usize, 5usize), (6, 10), (8, 15), (10, 25)] {
        let ds = layered(&LayeredParams {
            width,
            depth,
            density: 0.25,
            redundant: width * depth / 2,
            guards: 2,
            seed: 7,
        });
        let n = ds.activities.len();
        h.bench(&format!("ext_a/layered/{n}"), 10, || {
            black_box(Weaver::new().run(&ds).unwrap())
        });
    }

    for n in [10usize, 40, 100] {
        let ds = service_mesh(n, 5);
        h.bench(&format!("ext_a/service_mesh/{n}"), 10, || {
            black_box(Weaver::new().run(&ds).unwrap())
        });
    }

    // Interned + prefiltered + parallel minimizer vs the pre-interning
    // reference implementation, on the same prepared inputs the JSON
    // artifact uses. The baseline is capped to smaller sizes: at n=2000 it
    // is minutes-slow — run `repro bench-json` for the measured (single
    // sample) large-n comparison.
    for case in minimize_cases(true) {
        let (asc, exec) = case.prepare();
        h.bench(&format!("ext_a/minimize_new/{}", case.name), 10, || {
            black_box(minimize_generic(&asc, &exec, case.mode, &case.order).unwrap())
        });
        h.bench(&format!("ext_a/minimize_baseline/{}", case.name), 3, || {
            black_box(minimize_generic_baseline(&asc, &exec, case.mode, &case.order).unwrap())
        });
    }

    h.finish();
}
