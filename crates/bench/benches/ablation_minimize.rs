//! Ext-B: minimal-set algorithm ablation — equivalence modes (the literal
//! Definition-3 reading vs the execution-aware semantics the paper's own
//! Figure 9 requires vs pure reachability) × removal orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dscweaver_core::{minimize, EdgeOrder, EquivalenceMode, ExecConditions, merge, translate_services};
use dscweaver_workloads::{layered, purchasing_dependencies, LayeredParams};
use std::hint::black_box;

fn prepared(ds: &dscweaver_core::DependencySet) -> (dscweaver_dscl::ConstraintSet, ExecConditions) {
    let sc = merge(ds);
    let exec = ExecConditions::derive(&sc);
    let (asc, _) = translate_services(&sc);
    (asc, exec)
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_b/mode");
    group.sample_size(30);
    let (asc, exec) = prepared(&purchasing_dependencies());
    for mode in [
        EquivalenceMode::Strict,
        EquivalenceMode::ExecutionAware,
        EquivalenceMode::Reachability,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    black_box(minimize(&asc, &exec, mode, &EdgeOrder::default()).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_b/order");
    group.sample_size(30);
    let ds = layered(&LayeredParams {
        width: 5,
        depth: 8,
        density: 0.35,
        redundant: 20,
        guards: 3,
        seed: 11,
    });
    let (asc, exec) = prepared(&ds);
    for (name, order) in [
        ("given", EdgeOrder::Given),
        ("reverse", EdgeOrder::ReverseGiven),
        ("coop_first", EdgeOrder::default()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &order, |b, order| {
            b.iter(|| {
                black_box(
                    minimize(&asc, &exec, EquivalenceMode::ExecutionAware, order).unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes, bench_orders);
criterion_main!(benches);
