//! Ext-B: minimal-set algorithm ablation — equivalence modes (the literal
//! Definition-3 reading vs the execution-aware semantics the paper's own
//! Figure 9 requires vs pure reachability) × removal orders × the
//! interned/prefiltered implementation vs the structural baseline.

use dscweaver_bench::harness::{black_box, Harness};
use dscweaver_core::{
    merge, minimize, minimize_generic, minimize_generic_baseline, translate_services, EdgeOrder,
    EquivalenceMode, ExecConditions,
};
use dscweaver_workloads::{layered, purchasing_dependencies, LayeredParams};

fn prepared(ds: &dscweaver_core::DependencySet) -> (dscweaver_dscl::ConstraintSet, ExecConditions) {
    let sc = merge(ds);
    let exec = ExecConditions::derive(&sc);
    let (asc, _) = translate_services(&sc);
    (asc, exec)
}

fn main() {
    let mut h = Harness::from_env();

    let (asc, exec) = prepared(&purchasing_dependencies());
    for mode in [
        EquivalenceMode::Strict,
        EquivalenceMode::ExecutionAware,
        EquivalenceMode::Reachability,
    ] {
        h.bench(&format!("ext_b/mode/{mode:?}"), 30, || {
            black_box(minimize(&asc, &exec, mode, &EdgeOrder::default()).unwrap())
        });
    }

    let ds = layered(&LayeredParams {
        width: 5,
        depth: 8,
        density: 0.35,
        redundant: 20,
        guards: 3,
        seed: 11,
    });
    let (asc, exec) = prepared(&ds);
    for (name, order) in [
        ("given", EdgeOrder::Given),
        ("reverse", EdgeOrder::ReverseGiven),
        ("coop_first", EdgeOrder::default()),
    ] {
        h.bench(&format!("ext_b/order/{name}"), 30, || {
            black_box(minimize(&asc, &exec, EquivalenceMode::ExecutionAware, &order).unwrap())
        });
    }

    // Implementation ablation on the same layered workload: interned +
    // bitset-prefiltered + parallel vs the structural reference.
    for mode in [
        EquivalenceMode::Strict,
        EquivalenceMode::ExecutionAware,
        EquivalenceMode::Reachability,
    ] {
        h.bench(&format!("ext_b/impl_new/{mode:?}"), 20, || {
            black_box(minimize_generic(&asc, &exec, mode, &EdgeOrder::default()).unwrap())
        });
        h.bench(&format!("ext_b/impl_baseline/{mode:?}"), 10, || {
            black_box(minimize_generic_baseline(&asc, &exec, mode, &EdgeOrder::default()).unwrap())
        });
    }

    h.finish();
}
