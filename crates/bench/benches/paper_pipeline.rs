//! Per-stage benchmarks of the paper's pipeline on the Purchasing process
//! — the operations behind Table 1 (categorization/extraction), Figure 5
//! (PDG extraction), Figure 7 (merge), Figure 8 (service translation),
//! Figure 9 / Table 2 (minimization).

use criterion::{criterion_group, criterion_main, Criterion};
use dscweaver_core::{merge, minimize, translate_services, EdgeOrder, EquivalenceMode, ExecConditions, Weaver};
use dscweaver_workloads::{purchasing_dependencies, purchasing_process};
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let process = purchasing_process();
    c.bench_function("fig5/extract_data_deps", |b| {
        b.iter(|| black_box(dscweaver_pdg::data_dependencies(&process)))
    });
    c.bench_function("fig5/extract_control_deps", |b| {
        b.iter(|| black_box(dscweaver_pdg::control_dependencies(&process)))
    });
    c.bench_function("table1/full_extraction", |b| {
        b.iter(|| {
            black_box(dscweaver_workloads::purchasing_dependencies_extracted())
        })
    });
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let ds = purchasing_dependencies();
    c.bench_function("fig7/merge", |b| b.iter(|| black_box(merge(&ds))));

    let sc = merge(&ds);
    c.bench_function("fig8/translate_services", |b| {
        b.iter(|| black_box(translate_services(&sc)))
    });

    let (asc, _) = translate_services(&sc);
    let exec = ExecConditions::derive(&sc);
    c.bench_function("fig9/minimize_execution_aware", |b| {
        b.iter(|| {
            black_box(
                minimize(
                    &asc,
                    &exec,
                    EquivalenceMode::ExecutionAware,
                    &EdgeOrder::default(),
                )
                .unwrap(),
            )
        })
    });
    c.bench_function("table2/full_pipeline", |b| {
        b.iter(|| black_box(Weaver::new().run(&ds).unwrap()))
    });
}

fn bench_baseline(c: &mut Criterion) {
    let process = purchasing_process();
    c.bench_function("fig2/structural_constraints", |b| {
        b.iter(|| black_box(dscweaver_scheduler::structural_constraints(&process).unwrap()))
    });
}

criterion_group!(benches, bench_extraction, bench_pipeline_stages, bench_baseline);
criterion_main!(benches);
