//! Per-stage benchmarks of the paper's pipeline on the Purchasing process
//! — the operations behind Table 1 (categorization/extraction), Figure 5
//! (PDG extraction), Figure 7 (merge), Figure 8 (service translation),
//! Figure 9 / Table 2 (minimization).

use dscweaver_bench::harness::{black_box, Harness};
use dscweaver_core::{
    merge, minimize, translate_services, EdgeOrder, EquivalenceMode, ExecConditions, Weaver,
};
use dscweaver_workloads::{purchasing_dependencies, purchasing_process};

fn main() {
    let mut h = Harness::from_env();

    let process = purchasing_process();
    h.bench("fig5/extract_data_deps", 100, || {
        black_box(dscweaver_pdg::data_dependencies(&process))
    });
    h.bench("fig5/extract_control_deps", 100, || {
        black_box(dscweaver_pdg::control_dependencies(&process))
    });
    h.bench("table1/full_extraction", 100, || {
        black_box(dscweaver_workloads::purchasing_dependencies_extracted())
    });

    let ds = purchasing_dependencies();
    h.bench("fig7/merge", 100, || black_box(merge(&ds)));

    let sc = merge(&ds);
    h.bench("fig8/translate_services", 100, || {
        black_box(translate_services(&sc))
    });

    let (asc, _) = translate_services(&sc);
    let exec = ExecConditions::derive(&sc);
    h.bench("fig9/minimize_execution_aware", 100, || {
        black_box(
            minimize(
                &asc,
                &exec,
                EquivalenceMode::ExecutionAware,
                &EdgeOrder::default(),
            )
            .unwrap(),
        )
    });
    h.bench("table2/full_pipeline", 100, || {
        black_box(Weaver::new().run(&ds).unwrap())
    });

    h.bench("fig2/structural_constraints", 100, || {
        black_box(dscweaver_scheduler::structural_constraints(&process).unwrap())
    });

    h.finish();
}
