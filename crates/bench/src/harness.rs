//! A minimal benchmarking harness.
//!
//! The build has no network access, so Criterion is unavailable; the
//! `benches/*.rs` targets (all `harness = false`) use this instead. It
//! keeps the parts the experiments actually need — named benchmarks,
//! sample counts, name filtering from the command line, and robust
//! (median) timing — and nothing else.
//!
//! Environment knobs:
//! * `DSCWEAVER_BENCH_SAMPLES` — override every benchmark's sample count.
//! * a positional CLI argument — substring filter on benchmark names
//!   (`cargo bench --bench scaling_minimize -- layered`).

use dscweaver_obs as obs;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] so bench files need one import.
pub use std::hint::black_box;

/// Shared configuration for the `repro bench-json` suites.
#[derive(Clone, Debug, Default)]
pub struct BenchOpts {
    /// Restrict to the small cases with one sample each (the tier-1
    /// smoke run; timings in this mode are not meaningful).
    pub smoke: bool,
    /// Worker threads for the parallel engine runs (`0` = auto).
    pub threads: usize,
}

/// Renders a trace snapshot's per-phase totals as a JSON object
/// (`{"minimize": 12.345, ...}` — milliseconds, stable ordering), the
/// `"phases"` value attached to every bench-json case. Lines after the
/// first are prefixed with `indent`.
pub fn phases_json(snapshot: &obs::TraceSnapshot, indent: &str) -> String {
    let totals = snapshot.phase_totals_ms();
    if totals.is_empty() {
        return "{}".to_string();
    }
    let mut out = String::from("{\n");
    for (i, (name, ms)) in totals.iter().enumerate() {
        out.push_str(&format!("{indent}  \"{name}\": {ms:.3}"));
        out.push_str(if i + 1 == totals.len() { "\n" } else { ",\n" });
    }
    out.push_str(&format!("{indent}}}"));
    out
}

/// Times `iters` invocations of `f`, returning the total wall time.
pub fn time_iters<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed()
}

/// Runs `f` `samples` times (after one untimed warm-up call) and returns
/// the per-sample durations, sorted ascending.
pub fn sample<T>(samples: usize, mut f: impl FnMut() -> T) -> Vec<Duration> {
    black_box(f()); // warm-up
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    times
}

/// Histogram-derived latency percentiles of a duration sample set, in
/// milliseconds: the samples feed a log₂ [`obs::Histogram`] and
/// `(p50, p99)` come from its deterministic quantile extraction — the
/// same estimator the daemon's `/metrics` histograms use, so artifact
/// percentiles and scraped percentiles are directly comparable.
pub fn percentiles_ms(samples: &[Duration]) -> (f64, f64) {
    let h = obs::Histogram::new();
    for d in samples {
        h.record(d.as_nanos() as u64);
    }
    let s = h.snapshot();
    (s.p50() as f64 / 1e6, s.p99() as f64 / 1e6)
}

/// Median of a sorted duration slice.
pub fn median(sorted: &[Duration]) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

/// Formats a duration with a unit that keeps 3-4 significant digits.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The harness: collects CLI filter + env overrides, runs benchmarks,
/// prints one line per benchmark.
pub struct Harness {
    filter: Option<String>,
    sample_override: Option<usize>,
    ran: usize,
}

impl Harness {
    /// Builds a harness from `std::env::args` (skipping flags cargo
    /// passes, e.g. `--bench`) and `DSCWEAVER_BENCH_SAMPLES`.
    pub fn from_env() -> Harness {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        let sample_override = std::env::var("DSCWEAVER_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok());
        Harness {
            filter,
            sample_override,
            ran: 0,
        }
    }

    /// Runs one benchmark unless filtered out; prints median-of-samples.
    pub fn bench<T>(&mut self, name: &str, samples: usize, f: impl FnMut() -> T) {
        if let Some(flt) = &self.filter {
            if !name.contains(flt.as_str()) {
                return;
            }
        }
        let samples = self.sample_override.unwrap_or(samples);
        let times = sample(samples, f);
        println!(
            "{name:<48} median {:>12}   (min {}, max {}, n={})",
            fmt_duration(median(&times)),
            fmt_duration(times[0]),
            fmt_duration(*times.last().unwrap()),
            times.len(),
        );
        self.ran += 1;
    }

    /// Prints a trailing summary; call last in `main`.
    pub fn finish(self) {
        if self.ran == 0 {
            println!(
                "no benchmarks matched filter {:?}",
                self.filter.as_deref().unwrap_or("")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_sorted() {
        let d = |ms| Duration::from_millis(ms);
        assert_eq!(median(&[d(1), d(2), d(30)]), d(2));
        assert_eq!(median(&[d(1), d(3)]), d(2));
        assert_eq!(median(&[]), Duration::ZERO);
    }

    #[test]
    fn sample_counts_and_sorts() {
        let times = sample(5, || 1 + 1);
        assert_eq!(times.len(), 5);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn percentiles_come_from_the_histogram_estimator() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let (p50, p99) = percentiles_ms(&samples);
        // Log2-bucket upper bounds, clamped to the tracked max.
        assert!(p50 > 0.0 && p50 <= p99, "{p50} {p99}");
        assert!(p99 <= 0.1, "{p99}");
        assert_eq!(percentiles_ms(&[]), (0.0, 0.0));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
