//! Fresh-weave vs delta-reweave comparison under edit bursts: the
//! machine-readable `BENCH_evolve.json` artifact written by
//! `repro bench-json --suite evolve`.
//!
//! Each row applies one level-stable edit burst (shortcut cooperation
//! inserts/deletes, see `dscweaver_workloads::evolve`) to a layered
//! process, then times (a) a from-scratch `Weaver::run` of the edited
//! revision and (b) a `WeaveSession::weave` of the same revision on a
//! session that already holds the previous revision's state. The session
//! output is asserted identical to the fresh weave — and the re-weave
//! asserted to actually take the delta path — before anything is timed.
//! The headline claim the artifact backs: delta cost is proportional to
//! the burst size, not the process size.

use crate::harness::{black_box, median, percentiles_ms, phases_json, sample, BenchOpts};
use dscweaver_core::{DependencySet, ReweavePath, ReweaveReport, Weaver, WeaverOutput};
use dscweaver_obs as obs;
use dscweaver_prng::Rng;
use dscweaver_workloads::{edit_burst, layered, EditProfile, LayeredParams};
use std::time::{Duration, Instant};

/// One evolve-benchmark input: a base process plus the burst sizes to
/// sweep.
pub struct EvolveCase {
    /// Stable case name (used in the JSON artifact).
    pub name: String,
    /// Base-process generator parameters.
    pub params: LayeredParams,
    /// Edit-burst sizes to sweep.
    pub bursts: Vec<usize>,
}

/// The evolve suite. Smoke keeps one small case with two burst sizes so
/// the tier-1 tests can exercise the whole path in seconds; the full
/// suite sweeps burst sizes on the mid and scaling cases (the same
/// layered parameters the minimize suite uses).
pub fn evolve_cases(smoke: bool) -> Vec<EvolveCase> {
    if smoke {
        return vec![EvolveCase {
            name: "evolve_n62".into(),
            params: LayeredParams {
                width: 4,
                depth: 15,
                density: 0.3,
                redundant: 60,
                guards: 2,
                seed: 17,
            },
            bursts: vec![1, 2],
        }];
    }
    vec![
        EvolveCase {
            name: "evolve_n403".into(),
            params: LayeredParams {
                width: 8,
                depth: 50,
                density: 0.25,
                redundant: 400,
                guards: 3,
                seed: 23,
            },
            bursts: vec![1, 2, 4, 8, 16],
        },
        EvolveCase {
            name: "evolve_n2003".into(),
            params: LayeredParams {
                width: 20,
                depth: 100,
                density: 0.25,
                redundant: 12_000,
                guards: 3,
                seed: 29,
            },
            bursts: vec![1, 2, 4, 8, 16],
        },
    ]
}

struct BurstReport {
    case: String,
    burst: usize,
    n_activities: usize,
    asc_constraints: usize,
    edits: Vec<String>,
    fresh_ms: f64,
    delta_ms: f64,
    delta_p50_ms: f64,
    delta_p99_ms: f64,
    speedup: f64,
    rep: ReweaveReport,
    phases: String,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn json_f(v: f64) -> String {
    format!("{v:.3}")
}

fn rendered(out: &WeaverOutput) -> (Vec<String>, Vec<String>) {
    let mut kept: Vec<String> = out.minimal.happen_befores().map(|r| r.to_string()).collect();
    kept.sort();
    (kept, out.removed.iter().map(|r| r.to_string()).collect())
}

/// Runs the evolve suite and renders `BENCH_evolve.json` plus the merged
/// trace of one instrumented delta re-weave per burst (the timed samples
/// stay untraced so the recorder cannot skew them).
pub fn bench_evolve_json(opts: &BenchOpts) -> (String, obs::TraceSnapshot) {
    let (smoke, threads) = (opts.smoke, opts.threads);
    let samples_fresh = if smoke { 1 } else { 5 };
    let samples_delta = if smoke { 1 } else { 7 };
    let mut reports: Vec<BurstReport> = Vec::new();
    let mut suite_trace = obs::TraceSnapshot::default();
    for case in evolve_cases(smoke) {
        let base = layered(&case.params);
        let weaver = Weaver {
            threads,
            ..Weaver::default()
        };
        // One session holding the base revision, re-cloned per timed
        // sample so every measurement starts from identical state.
        let mut warm = weaver.session();
        warm.weave(&base).expect("base revision weaves");

        for &burst in &case.bursts {
            // Deterministic revision for this (case, burst) pair.
            let mut rev: DependencySet = base.clone();
            let mut rng = Rng::seed_from_u64(case.params.seed.wrapping_mul(1000) + burst as u64);
            let edits = edit_burst(&mut rev, &mut rng, burst, EditProfile::LevelStable);

            // Correctness gate before any timing: the delta path must
            // engage and agree with a from-scratch weave.
            let fresh_out = weaver.run(&rev).expect("edited revision weaves");
            let mut probe = warm.clone();
            let rep = probe.weave(&rev).expect("delta weave");
            assert_eq!(
                rep.path,
                ReweavePath::Delta,
                "{}/burst {burst}: level-stable burst left the delta path: {:?}",
                case.name,
                rep.diff
            );
            assert_eq!(
                rendered(probe.output().expect("session output")),
                rendered(&fresh_out),
                "{}/burst {burst}: delta output differs from fresh",
                case.name
            );

            // Interleave fresh and delta samples so background machine
            // load hits both sides alike and the reported ratio stays
            // honest even when absolute timings drift between runs. The
            // session is cloned outside the timer: the measurement is the
            // re-weave, not the state snapshot.
            let mut fresh_samples = Vec::with_capacity(samples_fresh);
            let mut delta_samples = Vec::with_capacity(samples_delta);
            for i in 0..samples_fresh.max(samples_delta) {
                if i < samples_fresh {
                    fresh_samples.push(sample(1, || {
                        black_box(weaver.run(&rev).expect("fresh weave"))
                    })[0]);
                }
                if i < samples_delta {
                    let mut s = warm.clone();
                    let t0 = Instant::now();
                    black_box(s.weave(&rev).expect("delta weave"));
                    delta_samples.push(t0.elapsed());
                }
            }
            fresh_samples.sort();
            let t_fresh = median(&fresh_samples);
            delta_samples.sort();
            let t_delta = median(&delta_samples);
            let (delta_p50_ms, delta_p99_ms) = percentiles_ms(&delta_samples);

            // One traced delta re-weave for the phase breakdown.
            let (_, case_trace) = obs::record_with(|| {
                let mut s = warm.clone();
                black_box(s.weave(&rev).expect("delta weave"))
            });

            let asc_constraints = fresh_out.asc.constraint_count();
            reports.push(BurstReport {
                case: case.name.clone(),
                burst,
                n_activities: fresh_out.asc.activities.len(),
                asc_constraints,
                edits,
                fresh_ms: ms(t_fresh),
                delta_ms: ms(t_delta),
                delta_p50_ms,
                delta_p99_ms,
                speedup: t_fresh.as_secs_f64() / t_delta.as_secs_f64().max(1e-12),
                rep,
                phases: phases_json(&case_trace, "      "),
            });
            suite_trace.merge(case_trace);
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"artifact\": \"BENCH_evolve\",\n");
    out.push_str("  \"description\": \"fresh Weaver::run vs WeaveSession delta re-weave per edit-burst size; outputs verified identical and the delta path verified engaged before timing\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"case\": \"{}\",\n", r.case));
        out.push_str(&format!("      \"burst\": {},\n", r.burst));
        out.push_str(&format!("      \"n_activities\": {},\n", r.n_activities));
        out.push_str(&format!(
            "      \"asc_constraints\": {},\n",
            r.asc_constraints
        ));
        out.push_str(&format!("      \"edits\": {},\n", r.edits.len()));
        out.push_str(&format!("      \"fresh_ms\": {},\n", json_f(r.fresh_ms)));
        out.push_str(&format!("      \"delta_ms\": {},\n", json_f(r.delta_ms)));
        out.push_str(&format!(
            "      \"delta_p50_ms\": {},\n",
            json_f(r.delta_p50_ms)
        ));
        out.push_str(&format!(
            "      \"delta_p99_ms\": {},\n",
            json_f(r.delta_p99_ms)
        ));
        out.push_str(&format!("      \"speedup\": {},\n", json_f(r.speedup)));
        out.push_str("      \"path\": \"delta\",\n");
        out.push_str(&format!(
            "      \"rows_recomputed\": {},\n",
            r.rep.rows_recomputed
        ));
        out.push_str(&format!("      \"rows_changed\": {},\n", r.rep.rows_changed));
        out.push_str(&format!("      \"delta_levels\": {},\n", r.rep.delta_levels));
        out.push_str(&format!(
            "      \"candidates_total\": {},\n",
            r.rep.candidates_total
        ));
        out.push_str(&format!(
            "      \"candidates_rescreened\": {},\n",
            r.rep.candidates_rescreened
        ));
        out.push_str(&format!(
            "      \"candidates_reused\": {},\n",
            r.rep.candidates_reused
        ));
        out.push_str(&format!("      \"phases\": {}\n", r.phases));
        out.push_str(if i + 1 == reports.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    (out, suite_trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_is_small() {
        let cases = evolve_cases(true);
        assert_eq!(cases.len(), 1);
        assert!(cases[0].bursts.iter().all(|&b| b <= 2));
        let full = evolve_cases(false);
        assert!(full.iter().any(|c| c.name.contains("2003")));
    }
}
