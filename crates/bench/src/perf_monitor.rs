//! Fleet-scale streaming-monitor throughput: the machine-readable
//! `BENCH_monitor.json` artifact written by `repro bench-json --suite
//! monitor`.
//!
//! Each fleet generates one deterministic interleaved event log
//! (`dscweaver_workloads::eventlog`, whole fleet live from the first
//! round to the last, injected violation rates scaled so every fleet
//! carries a few dozen dirty instances), computes the post-hoc oracle
//! verdicts once, and then sweeps `(batch, threads)` ingest
//! configurations. Every configuration is gated before timing: its
//! sorted verdict stream must equal the oracle and the whole fleet must
//! retire. Timed samples then measure pure ingest (pre-sized monitor
//! state built outside the timer) and report events/sec, ns/event and
//! resident bytes per live instance.

use crate::harness::{black_box, median, percentiles_ms, phases_json, BenchOpts};
use dscweaver_obs as obs;
use dscweaver_scheduler::{oracle_verdicts, MonitorConfig, MonitorState, MonitorStats, Verdict};
use dscweaver_workloads::eventlog::{
    event_log, monitor_fixture, EventLogParams, MonitorFixture, MonitorScenarioParams,
};
use std::time::{Duration, Instant};

/// One monitor-benchmark sweep: a fleet size plus the batch sizes and
/// thread counts to cross.
pub struct MonitorCase {
    /// Fleet size (concurrent live instances — the generator keeps every
    /// instance live for the whole stream).
    pub fleet: u32,
    /// Ingest batch sizes to sweep.
    pub batches: Vec<usize>,
    /// Worker thread counts to sweep.
    pub threads: Vec<usize>,
}

/// The monitor suite. Smoke keeps one small fleet so tier-1 tests can
/// exercise the full path (generation, oracle gate, timing, rendering)
/// in seconds; the full suite scales to a million concurrent instances.
pub fn monitor_cases(smoke: bool) -> Vec<MonitorCase> {
    if smoke {
        return vec![MonitorCase {
            fleet: 500,
            batches: vec![64, 512],
            threads: vec![1, 2],
        }];
    }
    [10_000u32, 100_000, 1_000_000]
        .into_iter()
        .map(|fleet| MonitorCase {
            fleet,
            batches: vec![1024, 16_384, 65_536],
            threads: vec![1, 2, 4],
        })
        .collect()
}

/// The shared workload shape: small per-instance program (10 activities,
/// 20 events per instance) so fleet size, not program size, dominates.
fn scenario() -> MonitorScenarioParams {
    MonitorScenarioParams {
        width: 2,
        depth: 3,
        redundant: 4,
        exclusive_pairs: 1,
        conversations: 1,
        seed: 41,
    }
}

/// Per-kind injection rate targeting ~20 dirty instances per kind
/// regardless of fleet size (capped for tiny smoke fleets).
fn rate_for(fleet: u32) -> f64 {
    (20.0 / fleet as f64).min(0.04)
}

struct CaseReport {
    fleet: u32,
    batch: usize,
    threads: usize,
    events: usize,
    ingest_ms: f64,
    ingest_p50_ms: f64,
    ingest_p99_ms: f64,
    events_per_sec: f64,
    ns_per_event: f64,
    bytes_per_instance: f64,
    stats: MonitorStats,
}

struct FleetReport {
    fleet: u32,
    events: usize,
    injected_ordering: usize,
    injected_exclusive: usize,
    injected_conversation: usize,
    oracle_verdicts: usize,
    phases: String,
}

fn json_f(v: f64) -> String {
    format!("{v:.3}")
}

fn run_chunked(
    f: &MonitorFixture,
    events: &[dscweaver_scheduler::MonitorEvent],
    fleet: u32,
    batch: usize,
    threads: usize,
    collect: bool,
) -> (Vec<Verdict>, MonitorStats, Duration) {
    let mut state = MonitorState::new(
        &f.program,
        &MonitorConfig {
            threads,
            shards: 0,
            capacity: fleet as usize,
        },
    );
    let mut verdicts = Vec::new();
    let t0 = Instant::now();
    for chunk in events.chunks(batch) {
        let v = state.ingest(chunk);
        if collect {
            verdicts.extend(v);
        } else {
            black_box(v.len());
        }
    }
    let elapsed = t0.elapsed();
    (verdicts, state.stats(), elapsed)
}

/// Runs the monitor suite and renders `BENCH_monitor.json` plus the
/// merged trace of one instrumented ingest pass per fleet (the timed
/// samples stay untraced so the recorder cannot skew them).
pub fn bench_monitor_json(opts: &BenchOpts) -> (String, obs::TraceSnapshot) {
    let smoke = opts.smoke;
    let samples = if smoke { 1 } else { 3 };
    let fixture = monitor_fixture(&scenario());
    let mut fleets: Vec<FleetReport> = Vec::new();
    let mut cases: Vec<CaseReport> = Vec::new();
    let mut suite_trace = obs::TraceSnapshot::default();

    for case in monitor_cases(smoke) {
        let rate = rate_for(case.fleet);
        let log = event_log(
            &fixture.program,
            &fixture.base,
            &EventLogParams {
                instances: case.fleet,
                seed: 97 + u64::from(case.fleet),
                ordering_rate: rate,
                exclusive_rate: rate,
                conversation_rate: rate,
                ..EventLogParams::default()
            },
        );
        assert!(log.injected_total() > 0, "fleet {} got no injections", case.fleet);
        // One oracle per fleet; every (batch, threads) configuration is
        // pinned to it before its timing samples run.
        let oracle = oracle_verdicts(
            &fixture.program,
            &fixture.cs,
            &fixture.conversations,
            &log.events,
        );
        assert!(!oracle.is_empty());

        for &threads in &case.threads {
            for &batch in &case.batches {
                // Correctness gate (also serves as the warm-up pass).
                let (mut got, stats, _) =
                    run_chunked(&fixture, &log.events, case.fleet, batch, threads, true);
                got.sort();
                assert_eq!(
                    got, oracle,
                    "fleet {} batch {batch} threads {threads}: verdicts diverge from oracle",
                    case.fleet
                );
                assert_eq!(stats.live, 0, "whole fleet must retire");
                assert_eq!(stats.retired, u64::from(case.fleet));
                assert_eq!(stats.peak_live, case.fleet as usize);

                let mut times: Vec<Duration> = (0..samples)
                    .map(|_| {
                        run_chunked(&fixture, &log.events, case.fleet, batch, threads, false).2
                    })
                    .collect();
                times.sort();
                let t = median(&times);
                let (ingest_p50_ms, ingest_p99_ms) = percentiles_ms(&times);
                let secs = t.as_secs_f64().max(1e-12);
                cases.push(CaseReport {
                    fleet: case.fleet,
                    batch,
                    threads,
                    events: log.events.len(),
                    ingest_ms: secs * 1e3,
                    ingest_p50_ms,
                    ingest_p99_ms,
                    events_per_sec: log.events.len() as f64 / secs,
                    ns_per_event: secs * 1e9 / log.events.len() as f64,
                    bytes_per_instance: stats.bytes as f64 / stats.peak_live.max(1) as f64,
                    stats,
                });
            }
        }

        // One traced pass per fleet for the phase breakdown.
        let (_, fleet_trace) = obs::record_with(|| {
            black_box(run_chunked(
                &fixture,
                &log.events,
                case.fleet,
                *case.batches.last().unwrap(),
                *case.threads.first().unwrap(),
                false,
            ))
        });
        fleets.push(FleetReport {
            fleet: case.fleet,
            events: log.events.len(),
            injected_ordering: log.injected_ordering.len(),
            injected_exclusive: log.injected_exclusive.len(),
            injected_conversation: log.injected_conversation.len(),
            oracle_verdicts: oracle.len(),
            phases: phases_json(&fleet_trace, "      "),
        });
        suite_trace.merge(fleet_trace);
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"artifact\": \"BENCH_monitor\",\n");
    out.push_str("  \"description\": \"streaming conformance monitor ingest throughput over generated multi-instance logs; per (fleet, batch, threads) configuration the sorted verdict stream is pinned to the post-hoc oracle before timing\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!(
        "  \"program_activities\": {},\n",
        fixture.program.n_activities()
    ));
    out.push_str(&format!(
        "  \"events_per_instance\": {},\n",
        fixture.program.events_per_instance()
    ));
    out.push_str("  \"fleets\": [\n");
    for (i, r) in fleets.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"fleet\": {},\n", r.fleet));
        out.push_str(&format!("      \"events\": {},\n", r.events));
        out.push_str(&format!(
            "      \"injected_ordering\": {},\n",
            r.injected_ordering
        ));
        out.push_str(&format!(
            "      \"injected_exclusive\": {},\n",
            r.injected_exclusive
        ));
        out.push_str(&format!(
            "      \"injected_conversation\": {},\n",
            r.injected_conversation
        ));
        out.push_str(&format!(
            "      \"oracle_verdicts\": {},\n",
            r.oracle_verdicts
        ));
        out.push_str(&format!("      \"phases\": {}\n", r.phases));
        out.push_str(if i + 1 == fleets.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"cases\": [\n");
    for (i, r) in cases.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"fleet\": {},\n", r.fleet));
        out.push_str(&format!("      \"batch\": {},\n", r.batch));
        out.push_str(&format!("      \"threads\": {},\n", r.threads));
        out.push_str(&format!("      \"events\": {},\n", r.events));
        out.push_str(&format!("      \"ingest_ms\": {},\n", json_f(r.ingest_ms)));
        out.push_str(&format!(
            "      \"ingest_p50_ms\": {},\n",
            json_f(r.ingest_p50_ms)
        ));
        out.push_str(&format!(
            "      \"ingest_p99_ms\": {},\n",
            json_f(r.ingest_p99_ms)
        ));
        out.push_str(&format!(
            "      \"events_per_sec\": {},\n",
            json_f(r.events_per_sec)
        ));
        out.push_str(&format!(
            "      \"ns_per_event\": {},\n",
            json_f(r.ns_per_event)
        ));
        out.push_str(&format!(
            "      \"bytes_per_instance\": {},\n",
            json_f(r.bytes_per_instance)
        ));
        out.push_str(&format!("      \"peak_live\": {},\n", r.stats.peak_live));
        out.push_str(&format!("      \"retired\": {},\n", r.stats.retired));
        out.push_str(&format!("      \"slab_rows\": {},\n", r.stats.slab_rows));
        out.push_str(&format!("      \"verdicts\": {}\n", r.stats.verdicts));
        out.push_str(if i + 1 == cases.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    (out, suite_trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_is_small_and_full_suite_hits_a_million() {
        let smoke = monitor_cases(true);
        assert_eq!(smoke.len(), 1);
        assert!(smoke[0].fleet <= 1000);
        let full = monitor_cases(false);
        assert!(full.iter().any(|c| c.fleet == 1_000_000));
    }

    #[test]
    fn injection_rate_keeps_absolute_counts_stable() {
        assert!(rate_for(500) <= 0.04 + f64::EPSILON);
        let big = rate_for(1_000_000);
        assert!((big * 1_000_000.0 - 20.0).abs() < 1e-9);
    }
}
