//! Old-vs-new Petri validation comparison: the legacy full-rescan
//! simulator versus the wavefront worklist (sequential and with the
//! assignment fan-out on the worker pool), rendered as the
//! machine-readable `BENCH_petri.json` artifact written by
//! `repro bench-json --suite petri`.
//!
//! Reports are canonicalized and asserted identical across all engines
//! and thread counts before any timing is taken.

use crate::harness::{black_box, median, sample};
use dscweaver_core::{ExecConditions, Weaver};
use dscweaver_dscl::ConstraintSet;
use dscweaver_petri::{validate, AssignmentFailure, ValidateOptions, ValidationReport};
use dscweaver_workloads::{dense_conditional, DenseConditionalParams};
use std::time::Duration;

/// One comparison input for the validation bench.
pub struct PetriCase {
    /// Stable case name (used in the JSON artifact).
    pub name: String,
    /// Generator parameters.
    pub params: DenseConditionalParams,
}

impl PetriCase {
    /// Materializes the workload and runs the optimizer front half,
    /// returning the minimal constraint set the validator takes.
    pub fn prepare(&self) -> (ConstraintSet, ExecConditions) {
        let ds = dense_conditional(&self.params);
        let out = Weaver::new().run(&ds).expect("acyclic workload");
        (out.minimal, out.exec)
    }
}

/// The comparison suite. `small_only` keeps the sub-second cases for the
/// tier-1 smoke run; the full suite adds the ≥512-assignment
/// dense-conditional core behind the committed `BENCH_petri.json`.
pub fn petri_cases(small_only: bool) -> Vec<PetriCase> {
    let mut cases = vec![
        PetriCase {
            name: "dense_g4_l3".into(),
            params: DenseConditionalParams {
                guards: 4,
                chain_len: 3,
                redundant: 12,
                seed: 11,
            },
        },
        PetriCase {
            name: "dense_g6_l6".into(),
            params: DenseConditionalParams {
                guards: 6,
                chain_len: 6,
                redundant: 32,
                seed: 11,
            },
        },
    ];
    if !small_only {
        // The acceptance case: 2^9 = 512 live branch assignments over
        // deep guarded slow paths.
        cases.push(PetriCase {
            name: "dense_g9_l12".into(),
            params: DenseConditionalParams {
                guards: 9,
                chain_len: 12,
                redundant: 96,
                seed: 11,
            },
        });
    }
    cases
}

struct CaseReport {
    name: String,
    n_activities: usize,
    assignments: usize,
    failures: usize,
    baseline_ms: f64,
    new_seq_ms: f64,
    new_par_ms: f64,
    speedup_seq: f64,
    speedup_par: f64,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn json_f(v: f64) -> String {
    format!("{v:.3}")
}

fn canon_failure(f: &AssignmentFailure) -> (Vec<(String, String)>, Vec<String>, String, bool) {
    let mut a: Vec<(String, String)> = f
        .assignment
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    a.sort();
    (a, f.stuck.clone(), f.marking.clone(), f.diverged)
}

#[allow(clippy::type_complexity)]
fn canon(r: &ValidationReport) -> (
    Option<Vec<String>>,
    usize,
    bool,
    Vec<(Vec<(String, String)>, Vec<String>, String, bool)>,
) {
    (
        r.conflict_cycle.clone(),
        r.assignments_checked,
        r.assignments_truncated,
        r.failures.iter().map(canon_failure).collect(),
    )
}

/// Runs the validation comparison suite and renders `BENCH_petri.json`.
///
/// `smoke` restricts to the small cases with one sample each so the
/// tier-1 test suite can exercise the full measurement path in seconds;
/// its timings are not meaningful.
pub fn bench_petri_json(smoke: bool, threads: usize) -> String {
    let samples_new = if smoke { 1 } else { 5 };
    let samples_base = if smoke { 1 } else { 3 };
    let mut reports: Vec<CaseReport> = Vec::new();
    for case in petri_cases(smoke) {
        let (cs, exec) = case.prepare();
        let base_opts = ValidateOptions {
            threads: 1,
            rescan_baseline: true,
            ..Default::default()
        };
        let seq_opts = ValidateOptions {
            threads: 1,
            ..Default::default()
        };
        let par_opts = ValidateOptions {
            threads,
            ..Default::default()
        };

        let r_base = validate(&cs, &exec, &base_opts);
        let r_seq = validate(&cs, &exec, &seq_opts);
        let r_par = validate(&cs, &exec, &par_opts);
        assert_eq!(canon(&r_base), canon(&r_seq), "case {}", case.name);
        assert_eq!(canon(&r_base), canon(&r_par), "case {}", case.name);

        let t_base = median(&sample(samples_base, || {
            black_box(validate(&cs, &exec, &base_opts))
        }));
        let t_seq = median(&sample(samples_new, || {
            black_box(validate(&cs, &exec, &seq_opts))
        }));
        let t_par = median(&sample(samples_new, || {
            black_box(validate(&cs, &exec, &par_opts))
        }));

        reports.push(CaseReport {
            name: case.name,
            n_activities: cs.activities.len(),
            assignments: r_base.assignments_checked,
            failures: r_base.failures.len(),
            baseline_ms: ms(t_base),
            new_seq_ms: ms(t_seq),
            new_par_ms: ms(t_par),
            speedup_seq: t_base.as_secs_f64() / t_seq.as_secs_f64().max(1e-12),
            speedup_par: t_base.as_secs_f64() / t_par.as_secs_f64().max(1e-12),
        });
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"artifact\": \"BENCH_petri\",\n");
    out.push_str("  \"description\": \"per-assignment validation: legacy full-rescan simulator vs the wavefront worklist (seq and with the assignment fan-out on the worker pool); reports canonicalized and asserted identical before timing\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"n_activities\": {},\n", r.n_activities));
        out.push_str(&format!("      \"assignments\": {},\n", r.assignments));
        out.push_str(&format!("      \"failures\": {},\n", r.failures));
        out.push_str(&format!(
            "      \"baseline_ms\": {},\n",
            json_f(r.baseline_ms)
        ));
        out.push_str(&format!("      \"new_seq_ms\": {},\n", json_f(r.new_seq_ms)));
        out.push_str(&format!("      \"new_par_ms\": {},\n", json_f(r.new_par_ms)));
        out.push_str(&format!(
            "      \"speedup_seq\": {},\n",
            json_f(r.speedup_seq)
        ));
        out.push_str(&format!(
            "      \"speedup_par\": {}\n",
            json_f(r.speedup_par)
        ));
        out.push_str(if i + 1 == reports.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_prepare_deterministically() {
        for case in petri_cases(true) {
            let (a, _) = case.prepare();
            let (b, _) = case.prepare();
            assert_eq!(a, b, "case {} not deterministic", case.name);
        }
    }

    #[test]
    fn full_suite_contains_the_512_assignment_case() {
        let full = petri_cases(false);
        let big = full.iter().find(|c| c.name == "dense_g9_l12").unwrap();
        assert!(1usize << big.params.guards >= 512);
    }
}
