//! Old-vs-new Petri validation comparison: the legacy full-rescan
//! simulator versus the wavefront worklist (sequential and with the
//! assignment fan-out on the worker pool), rendered as the
//! machine-readable `BENCH_petri.json` artifact written by
//! `repro bench-json --suite petri`.
//!
//! Two further sections measure the prepared engine: the amortized
//! per-run constant of replaying assignments through one reused
//! [`PreparedNet`] session versus a fresh wavefront build per run, and
//! the factored enumeration on guard-independent workloads (per-group
//! additive assignment counts versus the full multiplicative product).
//!
//! Reports are canonicalized and asserted identical across all engines
//! and thread counts before any timing is taken.

use crate::harness::{black_box, median, percentiles_ms, phases_json, sample, BenchOpts};
use dscweaver_core::{ExecConditions, Weaver};
use dscweaver_obs as obs;
use dscweaver_dscl::ConstraintSet;
use dscweaver_petri::{
    assignment_chooser, lower, run_to_quiescence_wavefront, validate, AssignmentFailure,
    FactorPolicy, PreparedNet, ValidateOptions, ValidationReport,
};
use dscweaver_workloads::{
    dense_conditional, disjoint_conditional, DenseConditionalParams, DisjointConditionalParams,
};
use std::collections::HashMap;
use std::time::Duration;

/// One comparison input for the validation bench.
pub struct PetriCase {
    /// Stable case name (used in the JSON artifact).
    pub name: String,
    /// Generator parameters.
    pub params: DenseConditionalParams,
}

impl PetriCase {
    /// Materializes the workload and runs the optimizer front half,
    /// returning the minimal constraint set the validator takes.
    pub fn prepare(&self) -> (ConstraintSet, ExecConditions) {
        let ds = dense_conditional(&self.params);
        let out = Weaver::new().run(&ds).expect("acyclic workload");
        (out.minimal, out.exec)
    }
}

/// The comparison suite. `small_only` keeps the sub-second cases for the
/// tier-1 smoke run; the full suite adds the ≥512-assignment
/// dense-conditional core behind the committed `BENCH_petri.json`.
pub fn petri_cases(small_only: bool) -> Vec<PetriCase> {
    let mut cases = vec![
        PetriCase {
            name: "dense_g4_l3".into(),
            params: DenseConditionalParams {
                guards: 4,
                chain_len: 3,
                redundant: 12,
                seed: 11,
            },
        },
        PetriCase {
            name: "dense_g6_l6".into(),
            params: DenseConditionalParams {
                guards: 6,
                chain_len: 6,
                redundant: 32,
                seed: 11,
            },
        },
    ];
    if !small_only {
        // The acceptance case: 2^9 = 512 live branch assignments over
        // deep guarded slow paths.
        cases.push(PetriCase {
            name: "dense_g9_l12".into(),
            params: DenseConditionalParams {
                guards: 9,
                chain_len: 12,
                redundant: 96,
                seed: 11,
            },
        });
    }
    cases
}

/// One guard-independent workload for the factored-enumeration section.
pub struct FactoredCase {
    /// Stable workload name (used in the JSON artifact).
    pub name: String,
    /// Generator parameters.
    pub params: DisjointConditionalParams,
}

/// Guard-independent workloads: islands of guards with provably disjoint
/// downstream place-footprints, so factored validation enumerates each
/// group separately (additive) instead of their cross product
/// (multiplicative).
pub fn factored_cases(small_only: bool) -> Vec<FactoredCase> {
    let mut cases = vec![FactoredCase {
        name: "disjoint_2x3_l2".into(),
        params: DisjointConditionalParams {
            groups: 2,
            guards_per_group: 3,
            chain_len: 2,
            redundant: 6,
            seed: 5,
        },
    }];
    if !small_only {
        // 2^10 = 1024 full assignments vs 2 · 2^5 = 64 factored.
        cases.push(FactoredCase {
            name: "disjoint_2x5_l4".into(),
            params: DisjointConditionalParams {
                groups: 2,
                guards_per_group: 5,
                chain_len: 4,
                redundant: 16,
                seed: 5,
            },
        });
        // 2^9 = 512 full assignments vs 3 · 2^3 = 24 factored.
        cases.push(FactoredCase {
            name: "disjoint_3x3_l4".into(),
            params: DisjointConditionalParams {
                groups: 3,
                guards_per_group: 3,
                chain_len: 4,
                redundant: 12,
                seed: 5,
            },
        });
    }
    cases
}

struct CaseReport {
    name: String,
    n_activities: usize,
    assignments: usize,
    failures: usize,
    baseline_ms: f64,
    new_seq_ms: f64,
    new_par_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    speedup_seq: f64,
    speedup_par: f64,
    prepared_runs: usize,
    fresh_run_ms: f64,
    prepared_run_ms: f64,
    prepared_speedup: f64,
    phases: String,
}

struct FactoredReport {
    name: String,
    guards: usize,
    guard_groups: usize,
    assignment_space: usize,
    full_assignments: usize,
    factored_assignments: usize,
    full_ms: f64,
    factored_ms: f64,
    factored_speedup: f64,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn json_f(v: f64) -> String {
    format!("{v:.3}")
}

fn canon_failure(f: &AssignmentFailure) -> (Vec<(String, String)>, Vec<String>, String, bool) {
    let mut a: Vec<(String, String)> = f
        .assignment
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    a.sort();
    (a, f.stuck.clone(), f.marking.clone(), f.diverged)
}

#[allow(clippy::type_complexity)]
fn canon(r: &ValidationReport) -> (
    Option<Vec<String>>,
    usize,
    bool,
    Vec<(Vec<(String, String)>, Vec<String>, String, bool)>,
) {
    (
        r.conflict_cycle.clone(),
        r.assignments_checked,
        r.assignments_truncated,
        r.failures.iter().map(canon_failure).collect(),
    )
}

/// Runs the validation comparison suite and renders `BENCH_petri.json`
/// plus the merged trace of the per-case instrumented runs (one parallel
/// `validate` per case recorded through `dscweaver-obs`; the timed
/// samples stay untraced so the recorder cannot skew them).
///
/// `opts.smoke` restricts to the small cases with one sample each so the
/// tier-1 test suite can exercise the full measurement path in seconds;
/// its timings are not meaningful.
pub fn bench_petri_json(opts: &BenchOpts) -> (String, obs::TraceSnapshot) {
    let (smoke, threads) = (opts.smoke, opts.threads);
    let samples_new = if smoke { 1 } else { 5 };
    let samples_base = if smoke { 1 } else { 3 };
    let mut reports: Vec<CaseReport> = Vec::new();
    let mut suite_trace = obs::TraceSnapshot::default();
    for case in petri_cases(smoke) {
        let (cs, exec) = case.prepare();
        let base_opts = ValidateOptions {
            threads: 1,
            rescan_baseline: true,
            ..Default::default()
        };
        let seq_opts = ValidateOptions {
            threads: 1,
            ..Default::default()
        };
        let par_opts = ValidateOptions {
            threads,
            ..Default::default()
        };

        let r_base = validate(&cs, &exec, &base_opts);
        let r_seq = validate(&cs, &exec, &seq_opts);
        let r_par = validate(&cs, &exec, &par_opts);
        assert_eq!(canon(&r_base), canon(&r_seq), "case {}", case.name);
        assert_eq!(canon(&r_base), canon(&r_par), "case {}", case.name);

        let t_base = median(&sample(samples_base, || {
            black_box(validate(&cs, &exec, &base_opts))
        }));
        let t_seq = median(&sample(samples_new, || {
            black_box(validate(&cs, &exec, &seq_opts))
        }));
        let par_samples = sample(samples_new, || black_box(validate(&cs, &exec, &par_opts)));
        let t_par = median(&par_samples);
        let (p50_ms, p99_ms) = percentiles_ms(&par_samples);

        // One traced run of the parallel validator, outside the timed
        // samples, for the per-phase breakdown and the suite trace.
        let (_, case_trace) = obs::record_with(|| black_box(validate(&cs, &exec, &par_opts)));

        // Amortized prepared-engine constant: the first K assignments
        // replayed through one reused `NetSession` versus a fresh
        // wavefront build (consumer/distinct tables + scratch marking)
        // per run. Results are asserted identical before timing.
        let lowered = lower(&cs, &exec);
        let guards: Vec<(&String, &Vec<String>)> = cs
            .domains
            .iter()
            .filter(|(_, dom)| !dom.is_empty())
            .collect();
        let space = guards
            .iter()
            .fold(1usize, |acc, (_, dom)| acc.saturating_mul(dom.len()));
        let k = space.min(16);
        let assignments: Vec<HashMap<String, String>> = (0..k)
            .map(|i| {
                let mut rest = i;
                guards
                    .iter()
                    .map(|(g, dom)| {
                        let d = rest % dom.len();
                        rest /= dom.len();
                        (format!("finish({g})"), dom[d].clone())
                    })
                    .collect()
            })
            .collect();
        let prep = PreparedNet::new(&lowered.net);
        {
            let mut session = prep.session();
            for a in &assignments {
                let fresh =
                    run_to_quiescence_wavefront(&lowered.net, assignment_chooser(a), 1_000_000);
                let reused = session.run(assignment_chooser(a), 1_000_000);
                assert_eq!(fresh.trace, reused.trace, "case {}", case.name);
                assert_eq!(fresh.final_marking, reused.final_marking, "case {}", case.name);
                assert_eq!(fresh.diverged, reused.diverged, "case {}", case.name);
            }
        }
        let t_fresh = median(&sample(samples_new, || {
            for a in &assignments {
                black_box(run_to_quiescence_wavefront(
                    &lowered.net,
                    assignment_chooser(a),
                    1_000_000,
                ));
            }
        }));
        let t_prep = median(&sample(samples_new, || {
            let prep = PreparedNet::new(&lowered.net);
            let mut session = prep.session();
            for a in &assignments {
                black_box(session.run(assignment_chooser(a), 1_000_000));
            }
        }));

        reports.push(CaseReport {
            name: case.name,
            n_activities: cs.activities.len(),
            assignments: r_base.assignments_checked,
            failures: r_base.failures.len(),
            baseline_ms: ms(t_base),
            new_seq_ms: ms(t_seq),
            new_par_ms: ms(t_par),
            p50_ms,
            p99_ms,
            speedup_seq: t_base.as_secs_f64() / t_seq.as_secs_f64().max(1e-12),
            speedup_par: t_base.as_secs_f64() / t_par.as_secs_f64().max(1e-12),
            prepared_runs: k,
            fresh_run_ms: ms(t_fresh) / k.max(1) as f64,
            prepared_run_ms: ms(t_prep) / k.max(1) as f64,
            prepared_speedup: t_fresh.as_secs_f64() / t_prep.as_secs_f64().max(1e-12),
            phases: phases_json(&case_trace, "      "),
        });
        suite_trace.merge(case_trace);
    }

    let mut factored: Vec<FactoredReport> = Vec::new();
    for case in factored_cases(smoke) {
        let ds = disjoint_conditional(&case.params);
        let out = Weaver::new().run(&ds).expect("acyclic workload");
        let full_opts = ValidateOptions {
            threads,
            factor: FactorPolicy::Off,
            ..Default::default()
        };
        let fact_opts = ValidateOptions {
            threads,
            factor: FactorPolicy::On,
            ..Default::default()
        };
        let r_full = validate(&out.minimal, &out.exec, &full_opts);
        let r_fact = validate(&out.minimal, &out.exec, &fact_opts);
        assert_eq!(r_full.ok(), r_fact.ok(), "case {}: verdicts disagree", case.name);
        assert!(
            r_fact.guard_groups >= 2,
            "case {}: islands did not factor",
            case.name
        );
        assert!(
            r_fact.assignments_checked < r_full.assignments_checked,
            "case {}: factoring did not shrink the enumeration",
            case.name
        );

        let t_full = median(&sample(samples_new, || {
            black_box(validate(&out.minimal, &out.exec, &full_opts))
        }));
        let t_fact = median(&sample(samples_new, || {
            black_box(validate(&out.minimal, &out.exec, &fact_opts))
        }));

        factored.push(FactoredReport {
            name: case.name,
            guards: out.minimal.domains.len(),
            guard_groups: r_fact.guard_groups,
            assignment_space: r_fact.assignment_space,
            full_assignments: r_full.assignments_checked,
            factored_assignments: r_fact.assignments_checked,
            full_ms: ms(t_full),
            factored_ms: ms(t_fact),
            factored_speedup: t_full.as_secs_f64() / t_fact.as_secs_f64().max(1e-12),
        });
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"artifact\": \"BENCH_petri\",\n");
    out.push_str("  \"description\": \"per-assignment validation: legacy full-rescan simulator vs the wavefront worklist (seq and with the assignment fan-out on the worker pool), plus the amortized prepared-session replay constant and the factored enumeration on guard-independent workloads; reports canonicalized and asserted identical before timing\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"n_activities\": {},\n", r.n_activities));
        out.push_str(&format!("      \"assignments\": {},\n", r.assignments));
        out.push_str(&format!("      \"failures\": {},\n", r.failures));
        out.push_str(&format!(
            "      \"baseline_ms\": {},\n",
            json_f(r.baseline_ms)
        ));
        out.push_str(&format!("      \"new_seq_ms\": {},\n", json_f(r.new_seq_ms)));
        out.push_str(&format!("      \"new_par_ms\": {},\n", json_f(r.new_par_ms)));
        out.push_str(&format!("      \"p50_ms\": {},\n", json_f(r.p50_ms)));
        out.push_str(&format!("      \"p99_ms\": {},\n", json_f(r.p99_ms)));
        out.push_str(&format!(
            "      \"speedup_seq\": {},\n",
            json_f(r.speedup_seq)
        ));
        out.push_str(&format!(
            "      \"speedup_par\": {},\n",
            json_f(r.speedup_par)
        ));
        out.push_str(&format!(
            "      \"prepared_runs\": {},\n",
            r.prepared_runs
        ));
        out.push_str(&format!(
            "      \"fresh_run_ms\": {},\n",
            json_f(r.fresh_run_ms)
        ));
        out.push_str(&format!(
            "      \"prepared_run_ms\": {},\n",
            json_f(r.prepared_run_ms)
        ));
        out.push_str(&format!(
            "      \"prepared_speedup\": {},\n",
            json_f(r.prepared_speedup)
        ));
        out.push_str(&format!("      \"phases\": {}\n", r.phases));
        out.push_str(if i + 1 == reports.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"factored\": [\n");
    for (i, r) in factored.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"workload\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"guards\": {},\n", r.guards));
        out.push_str(&format!("      \"guard_groups\": {},\n", r.guard_groups));
        out.push_str(&format!(
            "      \"assignment_space\": {},\n",
            r.assignment_space
        ));
        out.push_str(&format!(
            "      \"full_assignments\": {},\n",
            r.full_assignments
        ));
        out.push_str(&format!(
            "      \"factored_assignments\": {},\n",
            r.factored_assignments
        ));
        out.push_str(&format!("      \"full_ms\": {},\n", json_f(r.full_ms)));
        out.push_str(&format!(
            "      \"factored_ms\": {},\n",
            json_f(r.factored_ms)
        ));
        out.push_str(&format!(
            "      \"factored_speedup\": {}\n",
            json_f(r.factored_speedup)
        ));
        out.push_str(if i + 1 == factored.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    (out, suite_trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_prepare_deterministically() {
        for case in petri_cases(true) {
            let (a, _) = case.prepare();
            let (b, _) = case.prepare();
            assert_eq!(a, b, "case {} not deterministic", case.name);
        }
    }

    #[test]
    fn full_suite_contains_the_512_assignment_case() {
        let full = petri_cases(false);
        let big = full.iter().find(|c| c.name == "dense_g9_l12").unwrap();
        assert!(1usize << big.params.guards >= 512);
    }

    #[test]
    fn factored_full_suite_spans_a_1024_assignment_space() {
        let full = factored_cases(false);
        let big = full.iter().find(|c| c.name == "disjoint_2x5_l4").unwrap();
        let space = 1usize << (big.params.groups * big.params.guards_per_group);
        assert_eq!(space, 1024);
        let factored = big.params.groups * (1usize << big.params.guards_per_group);
        assert!(factored < space);
    }
}
