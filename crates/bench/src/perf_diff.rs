//! Regression differ for `BENCH_*.json` artifacts: `repro perf-diff
//! old.json new.json`.
//!
//! Compares two runs of the *same* suite (the top-level `"artifact"`
//! fields must match) field by field. Rows inside every top-level array
//! of objects (`cases`, `passes`, `fleets`, `factored`, ...) are keyed by
//! their workload-describing fields — strings, booleans and
//! integer-valued counts — so a row is matched to its counterpart even
//! when the arrays are reordered or grow. Within a matched row, every
//! numeric `*_ms` / `*_us` field plus every entry of a nested `"phases"`
//! object is compared as a new/old ratio. Timings below a configurable
//! noise floor are skipped (micro-cases jitter wildly and would drown
//! real regressions), and fields present on only one side (schema
//! evolution, e.g. newly added percentile columns) are reported but never
//! fail the diff.
//!
//! The CLI exit code is the contract: `0` when no compared field
//! regresses past the threshold, `1` when at least one does, `2` on
//! usage or parse errors — so CI can gate merges on
//! `repro perf-diff baseline.json fresh.json`.

use dscweaver_obs::json::{parse, Json};
use std::collections::BTreeMap;

/// Tuning knobs for a diff run.
#[derive(Clone, Copy, Debug)]
pub struct DiffOpts {
    /// A field regresses when `new / old` exceeds this ratio
    /// (default 1.25 — 25% slower).
    pub threshold: f64,
    /// Noise floor in milliseconds: a comparison is skipped unless at
    /// least one side is at or above this (default 0.05 ms). `*_us`
    /// fields are converted before the floor is applied.
    pub min_ms: f64,
}

impl Default for DiffOpts {
    fn default() -> Self {
        DiffOpts { threshold: 1.25, min_ms: 0.05 }
    }
}

/// One compared timing field in one matched row.
#[derive(Clone, Debug)]
pub struct FieldDiff {
    /// Top-level array the row lives in (`cases`, `passes`, ...).
    pub section: String,
    /// Human-readable row identity (the joined identity fields).
    pub row: String,
    /// Field name; nested phase entries render as `phases.<name>`.
    pub field: String,
    /// Old value in the field's native unit.
    pub old: f64,
    /// New value in the field's native unit.
    pub new: f64,
    /// `new / old` (old clamped away from zero).
    pub ratio: f64,
    /// True when `ratio` exceeds the threshold.
    pub regressed: bool,
}

/// The full outcome of one artifact-vs-artifact diff.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// The shared `"artifact"` name.
    pub artifact: String,
    /// Every compared field, in (section, row, field) order.
    pub fields: Vec<FieldDiff>,
    /// Comparisons skipped because both sides sat under the noise floor.
    pub skipped: usize,
    /// Rows present only in the old artifact (section, row identity).
    pub only_old: Vec<(String, String)>,
    /// Rows present only in the new artifact (section, row identity).
    pub only_new: Vec<(String, String)>,
    /// Timing fields present on only one side of a matched row
    /// (section, row, field, which side) — schema drift, never a failure.
    pub lopsided: Vec<(String, String, String, &'static str)>,
}

impl DiffReport {
    /// All fields that regressed past the threshold, worst first.
    pub fn regressions(&self) -> Vec<&FieldDiff> {
        let mut v: Vec<&FieldDiff> = self.fields.iter().filter(|f| f.regressed).collect();
        v.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
        v
    }
}

/// True for fields carrying wall-time in a known unit.
fn is_timing(name: &str) -> bool {
    name.ends_with("_ms") || name.ends_with("_us")
}

/// True for numeric fields derived from timing — excluded from row
/// identity because they differ run to run.
fn is_run_dependent(name: &str) -> bool {
    is_timing(name)
        || name.ends_with("_per_sec")
        || name.ends_with("per_event")
        || name.ends_with("_rate")
        || name.contains("speedup")
        || name.ends_with("bytes_per_instance")
}

/// Milliseconds-per-unit for a timing field (for the noise floor).
fn unit_to_ms(name: &str) -> f64 {
    if name.ends_with("_us") {
        1e-3
    } else {
        1.0
    }
}

/// The stable identity of one row: every string/bool field plus every
/// integer-valued number that is not run-dependent, in key order.
fn row_key(row: &Json) -> String {
    let Json::Obj(pairs) = row else {
        return String::new();
    };
    let mut parts: Vec<String> = Vec::new();
    for (k, v) in pairs {
        match v {
            Json::Str(s) => parts.push(format!("{k}={s}")),
            Json::Bool(b) => parts.push(format!("{k}={b}")),
            Json::Num(n) if n.fract() == 0.0 && !is_run_dependent(k) => {
                parts.push(format!("{k}={n}"));
            }
            _ => {}
        }
    }
    parts.join(" ")
}

/// Timing fields of one row, flattened: direct `*_ms`/`*_us` numbers
/// plus `phases.<name>` entries from a nested `"phases"` object (phase
/// breakdowns are milliseconds by construction).
fn timings(row: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Json::Obj(pairs) = row else {
        return out;
    };
    for (k, v) in pairs {
        match v {
            Json::Num(n) if is_timing(k) => {
                out.insert(k.clone(), *n);
            }
            Json::Obj(inner) if k == "phases" => {
                for (pk, pv) in inner {
                    if let Json::Num(n) = pv {
                        out.insert(format!("phases.{pk}_ms"), *n);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Every top-level section worth diffing: arrays of objects keep their
/// name; a top-level `"phases"` object becomes a one-row pseudo-section.
fn sections(doc: &Json) -> Vec<(String, Vec<&Json>)> {
    let Json::Obj(pairs) = doc else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (k, v) in pairs {
        match v {
            Json::Arr(items) if items.iter().any(|i| matches!(i, Json::Obj(_))) => {
                out.push((k.clone(), items.iter().collect()));
            }
            Json::Obj(_) if k == "phases" => {
                out.push(("(top)".to_string(), vec![v]));
            }
            _ => {}
        }
    }
    out
}

/// Diffs two artifact documents. Errors (as strings) on parse failures
/// or when the two files come from different suites.
pub fn diff(old_text: &str, new_text: &str, opts: &DiffOpts) -> Result<DiffReport, String> {
    let old = parse(old_text).map_err(|e| format!("old artifact: {e}"))?;
    let new = parse(new_text).map_err(|e| format!("new artifact: {e}"))?;
    let name_of = |doc: &Json, side: &str| -> Result<String, String> {
        doc.get("artifact")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{side} artifact: missing top-level \"artifact\" field"))
    };
    let old_name = name_of(&old, "old")?;
    let new_name = name_of(&new, "new")?;
    if old_name != new_name {
        return Err(format!(
            "artifact mismatch: old is \"{old_name}\", new is \"{new_name}\" — \
             perf-diff compares two runs of the same suite"
        ));
    }

    let mut report = DiffReport { artifact: old_name, ..DiffReport::default() };
    let old_sections = sections(&old);
    let mut new_sections: BTreeMap<String, Vec<&Json>> = sections(&new).into_iter().collect();

    for (section, old_rows) in old_sections {
        let Some(new_rows) = new_sections.remove(&section) else {
            for r in &old_rows {
                report.only_old.push((section.clone(), row_key(r)));
            }
            continue;
        };
        let mut new_by_key: BTreeMap<String, &Json> =
            new_rows.iter().map(|r| (row_key(r), *r)).collect();
        for old_row in old_rows {
            let key = row_key(old_row);
            let Some(new_row) = new_by_key.remove(&key) else {
                report.only_old.push((section.clone(), key));
                continue;
            };
            let old_t = timings(old_row);
            let mut new_t = timings(new_row);
            for (field, old_v) in old_t {
                let Some(new_v) = new_t.remove(&field) else {
                    report
                        .lopsided
                        .push((section.clone(), key.clone(), field, "old-only"));
                    continue;
                };
                let to_ms = unit_to_ms(&field);
                if old_v * to_ms < opts.min_ms && new_v * to_ms < opts.min_ms {
                    report.skipped += 1;
                    continue;
                }
                let ratio = new_v / old_v.max(1e-12);
                report.fields.push(FieldDiff {
                    section: section.clone(),
                    row: key.clone(),
                    field,
                    old: old_v,
                    new: new_v,
                    ratio,
                    regressed: ratio > opts.threshold,
                });
            }
            for field in new_t.into_keys() {
                report
                    .lopsided
                    .push((section.clone(), key.clone(), field, "new-only"));
            }
        }
        for key in new_by_key.into_keys() {
            report.only_new.push((section.clone(), key));
        }
    }
    for (section, rows) in new_sections {
        for r in rows {
            report.only_new.push((section.clone(), row_key(r)));
        }
    }
    Ok(report)
}

/// Renders the per-case ratio table plus the verdict line. The last line
/// always starts with `perf-diff:` and states pass/fail, the threshold
/// and the counts, so logs stay greppable.
pub fn render(report: &DiffReport, opts: &DiffOpts) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "artifact {}: {} fields compared, {} under the {:.3} ms noise floor\n",
        report.artifact,
        report.fields.len(),
        report.skipped,
        opts.min_ms
    ));
    let w_field = report
        .fields
        .iter()
        .map(|f| f.field.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let mut last_row = String::new();
    for f in &report.fields {
        let row_id = format!("[{}] {}", f.section, f.row);
        if row_id != last_row {
            out.push_str(&format!("\n{row_id}\n"));
            last_row = row_id;
        }
        let flag = if f.regressed {
            "  <-- REGRESSION"
        } else if f.ratio < 1.0 / opts.threshold {
            "  (improved)"
        } else {
            ""
        };
        out.push_str(&format!(
            "  {:<w_field$}  {:>12.3} -> {:>12.3}  x{:.3}{flag}\n",
            f.field, f.old, f.new, f.ratio
        ));
    }
    for (section, row) in &report.only_old {
        out.push_str(&format!("\nrow only in old [{section}]: {row}\n"));
    }
    for (section, row) in &report.only_new {
        out.push_str(&format!("\nrow only in new [{section}]: {row}\n"));
    }
    for (section, row, field, side) in &report.lopsided {
        out.push_str(&format!("\nfield {field} is {side} in [{section}] {row}\n"));
    }
    let regressions = report.regressions();
    if let Some(worst) = regressions.first() {
        out.push_str(&format!(
            "\nperf-diff: FAIL — {} field(s) regressed past x{:.2} \
             (worst: [{}] {} {} x{:.3})\n",
            regressions.len(),
            opts.threshold,
            worst.section,
            worst.row,
            worst.field,
            worst.ratio
        ));
    } else {
        out.push_str(&format!(
            "\nperf-diff: OK — no field regressed past x{:.2}\n",
            opts.threshold
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(name: &str, cases: &str) -> String {
        format!("{{\n  \"artifact\": \"{name}\",\n  \"cases\": [\n{cases}\n  ]\n}}\n")
    }

    #[test]
    fn mismatched_artifacts_are_an_error() {
        let a = artifact("BENCH_a", r#"{"name": "x", "run_ms": 1.0}"#);
        let b = artifact("BENCH_b", r#"{"name": "x", "run_ms": 1.0}"#);
        let err = diff(&a, &b, &DiffOpts::default()).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
        assert!(diff("{nope", &b, &DiffOpts::default()).is_err());
    }

    #[test]
    fn detects_a_regression_and_an_identical_run_is_clean() {
        let old = artifact("BENCH_t", r#"{"name": "x", "n": 5, "run_ms": 10.0}"#);
        let new = artifact("BENCH_t", r#"{"name": "x", "n": 5, "run_ms": 20.0}"#);
        let opts = DiffOpts::default();
        let r = diff(&old, &new, &opts).unwrap();
        assert_eq!(r.regressions().len(), 1);
        assert!((r.regressions()[0].ratio - 2.0).abs() < 1e-9);
        assert!(render(&r, &opts).contains("FAIL"));

        let clean = diff(&old, &old, &opts).unwrap();
        assert!(clean.regressions().is_empty());
        assert_eq!(clean.fields.len(), 1);
        assert!(render(&clean, &opts).contains("perf-diff: OK"));
    }

    #[test]
    fn noise_floor_skips_micro_timings_in_native_units() {
        // 20 us -> 40 us: a 2x blow-up, but both sides sit under the
        // 0.05 ms default floor once converted from their native unit.
        let old = artifact("BENCH_t", r#"{"name": "x", "lat_us": 20.0, "run_ms": 10.0}"#);
        let new = artifact("BENCH_t", r#"{"name": "x", "lat_us": 40.0, "run_ms": 10.0}"#);
        let r = diff(&old, &new, &DiffOpts::default()).unwrap();
        assert_eq!(r.skipped, 1);
        assert!(r.regressions().is_empty());
        // Dropping the floor exposes it.
        let r = diff(&old, &new, &DiffOpts { min_ms: 0.0, ..DiffOpts::default() }).unwrap();
        assert_eq!(r.regressions().len(), 1);
        assert_eq!(r.regressions()[0].field, "lat_us");
    }

    #[test]
    fn nested_phases_are_compared_and_schema_drift_is_not_a_failure() {
        let old = artifact(
            "BENCH_t",
            r#"{"name": "x", "run_ms": 10.0, "phases": {"weave.optimize": 4.0}}"#,
        );
        let new = artifact(
            "BENCH_t",
            r#"{"name": "x", "run_ms": 10.0, "p99_ms": 12.0, "phases": {"weave.optimize": 9.0}}"#,
        );
        let r = diff(&old, &new, &DiffOpts::default()).unwrap();
        let regs = r.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].field, "phases.weave.optimize_ms");
        // The p99_ms column added by the newer artifact is reported as
        // lopsided, never as a regression.
        assert_eq!(r.lopsided.len(), 1);
        assert_eq!(r.lopsided[0].3, "new-only");
    }

    #[test]
    fn rows_are_matched_by_identity_not_position() {
        let old = artifact(
            "BENCH_t",
            r#"{"name": "a", "run_ms": 10.0},
{"name": "b", "run_ms": 10.0}"#,
        );
        let new = artifact(
            "BENCH_t",
            r#"{"name": "b", "run_ms": 10.0},
{"name": "a", "run_ms": 50.0},
{"name": "c", "run_ms": 1.0}"#,
        );
        let r = diff(&old, &new, &DiffOpts::default()).unwrap();
        let regs = r.regressions();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].row.contains("name=a"));
        assert_eq!(r.only_new, vec![("cases".to_string(), "name=c".to_string())]);
        assert!(r.only_old.is_empty());
    }

    #[test]
    fn committed_artifacts_self_diff_clean() {
        // The real committed artifacts must parse, self-match on every
        // row and report zero regressions against themselves.
        for name in ["minimize", "petri", "scheduler", "evolve", "monitor", "serve"] {
            let path = format!("{}/../../BENCH_{name}.json", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("cannot read {path}: {e}");
            });
            let r = diff(&text, &text, &DiffOpts::default())
                .unwrap_or_else(|e| panic!("BENCH_{name}: {e}"));
            assert!(r.regressions().is_empty(), "BENCH_{name} self-diff regressed");
            assert!(!r.fields.is_empty(), "BENCH_{name} produced no comparisons");
            assert!(r.only_old.is_empty() && r.only_new.is_empty(),
                "BENCH_{name} rows failed to self-match: {:?} {:?}", r.only_old, r.only_new);
        }
    }
}
