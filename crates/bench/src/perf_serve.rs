//! Weaver-daemon serving throughput: the machine-readable
//! `BENCH_serve.json` artifact written by `repro bench-json --suite
//! serve`.
//!
//! Three workloads per (population, threads) configuration:
//!
//! 1. **Cold / warm passes** over a population of *structurally* distinct
//!    processes (10k+ in the full suite) through the daemon's request
//!    path (`service::handle` over a shared `Registry`), reporting
//!    sustained req/s and per-request p50/p99 latency for each.
//! 2. **Connection modes** over real TCP against a started `Server`:
//!    one-request-per-connection (`per_conn`), serial keep-alive on one
//!    reused connection (`keepalive`) and pipelined batches at a sweep of
//!    depths (`pipelined`). The registry is pre-warmed so these numbers
//!    isolate the transport; `keepalive_speedup` reports reuse over
//!    reconnect and is gated at >= 2x in the full suite.
//! 3. **Variant workload**: textual alpha-variants of a base population
//!    (renamed identifiers, extra comments) that must collapse onto the
//!    canonical artifact cache, reporting `canonical_hit_rate` (gated at
//!    >= 0.9).
//!
//! Correctness is gated before timing in every mode: response bodies must
//! be bit-identical to the one-shot reference (sampled) and to the warm
//! in-process pass (exhaustive for the TCP modes), and the cache counters
//! must account for every request.

use crate::harness::{black_box, percentiles_ms, phases_json, BenchOpts};
use dscweaver_graph::par_map;
use dscweaver_obs as obs;
use dscweaver_serve::registry::Registry;
use dscweaver_serve::server::{ServeConfig, Server};
use dscweaver_serve::service::{handle, oneshot, Request};
use dscweaver_serve::{client, Client, PipelinedRequest};
use std::time::{Duration, Instant};

/// One serving sweep: a process-population size plus the server thread
/// counts to cross.
pub struct ServeCase {
    /// Number of distinct processes in the population.
    pub processes: usize,
    /// Server worker-thread counts to sweep.
    pub threads: Vec<usize>,
}

/// The serve suite. Smoke keeps the population small so tier-1 tests can
/// exercise the full path in seconds; the full suite serves 10k distinct
/// processes per thread configuration.
pub fn serve_cases(smoke: bool) -> Vec<ServeCase> {
    if smoke {
        return vec![ServeCase {
            processes: 150,
            threads: vec![1, 2],
        }];
    }
    vec![ServeCase {
        processes: 10_000,
        threads: vec![1, 4],
    }]
}

/// Pipelining depths swept by the `pipelined` connection mode.
pub const PIPELINE_DEPTHS: [usize; 3] = [4, 16, 64];

/// Bits of the index encoded structurally into each process (as
/// read-vs-write direction of the tail activities), so the population
/// stays distinct **after canonicalization** for up to 2^14 processes.
const STRUCT_BITS: usize = 14;

fn render_proc(i: usize, tag: &str) -> String {
    assert!(i < 1 << STRUCT_BITS, "population exceeds structural encoding");
    // The tail encodes `i` in binary: tail activity `b` reads the joined
    // variable when bit `b` of `i` is 0 and writes it when the bit is 1.
    // Renaming cannot erase that distinction, so no two indexes share a
    // canonical form.
    let tail: String = (0..STRUCT_BITS)
        .map(|b| {
            let verb = if i >> b & 1 == 1 { "writes" } else { "reads" };
            format!("  assign b{b}{tag} {verb} v{i}{tag};\n")
        })
        .collect();
    format!(
        "process p{i}{tag} {{\n var s{i}{tag}; var v{i}{tag};\n sequence {{\n  assign init{i}{tag} writes s{i}{tag};\n  switch g{i}{tag} reads s{i}{tag} {{\n   case T {{ assign x{i}{tag} writes v{i}{tag}; }}\n   case F {{ assign y{i}{tag} writes v{i}{tag}; }}\n  }}\n  assign j{i}{tag} reads v{i}{tag};\n{tail} }}\n}}"
    )
}

/// The i-th distinct process: a guarded diamond (switch on a written
/// variable, two cases, a join) plus a tail of activities whose
/// read/write directions encode the index in binary — names are unique to
/// the index *and* the structure survives canonicalization, so every
/// request compiles its own artifact.
pub fn proc_text(i: usize) -> String {
    render_proc(i, "")
}

/// The v-th textual variant of base process `i`: identifiers renamed with
/// a tenant tag and a comment injected, leaving the structure — and hence
/// the canonical form — identical to `proc_text(i)`. Variant 0 is the
/// base text itself.
pub fn variant_text(i: usize, v: usize) -> String {
    if v == 0 {
        return proc_text(i);
    }
    render_proc(i, &format!("_t{v}")).replace("sequence {", &format!("sequence {{ # tenant {v}"))
}

struct PassReport {
    processes: usize,
    threads: usize,
    phase: &'static str,
    requests: usize,
    wall_ms: f64,
    req_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    cache_hits: u64,
    cache_misses: u64,
}

struct ConnReport {
    processes: usize,
    threads: usize,
    mode: &'static str,
    depth: usize,
    requests: usize,
    wall_ms: f64,
    req_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

struct SpeedupReport {
    processes: usize,
    threads: usize,
    keepalive_speedup: f64,
    best_speedup: f64,
}

struct VariantReport {
    bases: usize,
    variants_per_base: usize,
    requests: usize,
    compiles: u64,
    canonical_hits: u64,
    canonical_hit_rate: f64,
    wall_ms: f64,
    req_per_sec: f64,
}

fn json_f(v: f64) -> String {
    format!("{v:.3}")
}

/// Serves every request once, in parallel across `threads` workers, and
/// returns (wall time, sorted per-request latencies, response bodies).
fn run_pass(
    reg: &Registry,
    requests: &[Request],
    threads: usize,
) -> (Duration, Vec<Duration>, Vec<String>) {
    let t0 = Instant::now();
    let results: Vec<(Duration, String)> = par_map(threads, requests, &|req| {
        let t = Instant::now();
        let response = handle(reg, req);
        (t.elapsed(), response.body)
    });
    let wall = t0.elapsed();
    let mut lats: Vec<Duration> = results.iter().map(|(d, _)| *d).collect();
    lats.sort();
    let bodies = results.into_iter().map(|(_, b)| b).collect();
    (wall, lats, bodies)
}

fn conn_report(
    processes: usize,
    threads: usize,
    mode: &'static str,
    depth: usize,
    requests: usize,
    wall: Duration,
    lats: &mut Vec<Duration>,
) -> ConnReport {
    lats.sort();
    let secs = wall.as_secs_f64().max(1e-12);
    let (p50_ms, p99_ms) = percentiles_ms(lats);
    ConnReport {
        processes,
        threads,
        mode,
        depth,
        requests,
        wall_ms: secs * 1e3,
        req_per_sec: requests as f64 / secs,
        p50_us: p50_ms * 1e3,
        p99_us: p99_ms * 1e3,
    }
}

/// TCP connection-mode sweep against a live `Server` whose registry is
/// pre-warmed in-process, so the three modes differ only in transport:
/// reconnect-per-request vs one reused keep-alive connection vs pipelined
/// batches on that connection. Every response body is checked against the
/// warm in-process body for the same process.
fn run_conn_modes(
    texts: &[String],
    warm_bodies: &[String],
    threads: usize,
) -> (Vec<ConnReport>, SpeedupReport) {
    let processes = texts.len();
    let server = Server::start(&ServeConfig {
        threads,
        cache_capacity: processes.max(16),
        idle_timeout_ms: 60_000,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    // Pre-warm through the server's own registry: the timed passes below
    // measure warm transport, not compilation.
    for t in texts {
        let r = handle(server.registry(), &Request::Weave { text: t.clone() });
        assert_eq!(r.status, 200, "pre-warm failed: {}", r.body);
    }

    let mut reports = Vec::new();

    // Mode 1: one connection per request (the pre-overhaul baseline).
    let mut lats = Vec::with_capacity(processes);
    let t0 = Instant::now();
    for (i, t) in texts.iter().enumerate() {
        let tr = Instant::now();
        let reply = client::post(addr, "/v1/weave", t).expect("per-conn request");
        lats.push(tr.elapsed());
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert_eq!(reply.body, warm_bodies[i], "per-conn body {i} diverged");
    }
    reports.push(conn_report(
        processes,
        threads,
        "per_conn",
        1,
        processes,
        t0.elapsed(),
        &mut lats,
    ));

    // Mode 2: serial requests over one reused keep-alive connection.
    let mut c = Client::connect(addr);
    let mut lats = Vec::with_capacity(processes);
    let t0 = Instant::now();
    for (i, t) in texts.iter().enumerate() {
        let tr = Instant::now();
        let reply = c.post("/v1/weave", t).expect("keep-alive request");
        lats.push(tr.elapsed());
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert_eq!(reply.body, warm_bodies[i], "keep-alive body {i} diverged");
    }
    reports.push(conn_report(
        processes,
        threads,
        "keepalive",
        1,
        processes,
        t0.elapsed(),
        &mut lats,
    ));

    // Mode 3: pipelined batches at each swept depth (batch latency is
    // attributed evenly across its requests for the percentiles).
    for &depth in &PIPELINE_DEPTHS {
        let mut c = Client::connect(addr);
        let mut lats = Vec::with_capacity(processes);
        let t0 = Instant::now();
        for (ci, chunk) in texts.chunks(depth).enumerate() {
            let batch: Vec<PipelinedRequest> = chunk
                .iter()
                .map(|t| PipelinedRequest::post("/v1/weave", t.clone()))
                .collect();
            let tb = Instant::now();
            let replies = c.pipeline(&batch).expect("pipelined batch");
            let per = tb.elapsed() / chunk.len() as u32;
            assert_eq!(replies.len(), chunk.len());
            for (j, reply) in replies.iter().enumerate() {
                let i = ci * depth + j;
                assert_eq!(reply.status, 200, "{}", reply.body);
                assert_eq!(reply.body, warm_bodies[i], "pipelined body {i} diverged");
            }
            lats.extend(std::iter::repeat(per).take(chunk.len()));
        }
        reports.push(conn_report(
            processes,
            threads,
            "pipelined",
            depth,
            processes,
            t0.elapsed(),
            &mut lats,
        ));
    }
    server.shutdown();

    let rps = |mode: &str, depth: usize| {
        reports
            .iter()
            .find(|r| r.mode == mode && r.depth == depth)
            .map(|r| r.req_per_sec)
            .unwrap_or(0.0)
    };
    let base = rps("per_conn", 1).max(1e-12);
    let keepalive_speedup = rps("keepalive", 1) / base;
    let best_pipelined = PIPELINE_DEPTHS
        .iter()
        .map(|&d| rps("pipelined", d))
        .fold(0.0f64, f64::max);
    let speedup = SpeedupReport {
        processes,
        threads,
        keepalive_speedup,
        best_speedup: keepalive_speedup.max(best_pipelined / base),
    };
    (reports, speedup)
}

/// Variant workload: `bases` structurally distinct processes, each
/// submitted as `variants_per_base` textual variants. The first variant
/// of each base compiles; every later variant must land a canonical hit.
/// Requests run serially so the counter accounting is deterministic.
fn run_variant_workload(smoke: bool) -> VariantReport {
    let (bases, variants) = if smoke { (10, 10) } else { (100, 20) };
    let reg = Registry::new(bases, 2);
    let requests = bases * variants;
    let mut bodies: Vec<Vec<String>> = vec![Vec::new(); bases];
    let t0 = Instant::now();
    for v in 0..variants {
        for b in 0..bases {
            let text = variant_text(b, v);
            let r = handle(&reg, &Request::Weave { text });
            assert_eq!(r.status, 200, "variant ({b},{v}) failed: {}", r.body);
            bodies[b].push(r.body);
        }
    }
    let wall = t0.elapsed();
    // Correctness gate: each gated variant's body is bit-identical to its
    // own one-shot (rendered in its own identifier names).
    for b in 0..bases {
        for v in [0, 1, variants - 1] {
            let reference = oneshot(
                &Request::Weave {
                    text: variant_text(b, v),
                },
                1,
            );
            assert_eq!(
                bodies[b][v], reference.body,
                "variant ({b},{v}) diverged from its one-shot"
            );
        }
    }
    let stats = reg.stats();
    assert_eq!(
        stats.misses as usize, bases,
        "exactly one compile per base process"
    );
    assert_eq!(
        stats.canonical_hits as usize,
        bases * (variants - 1),
        "every later variant must share the canonical artifact"
    );
    let rate = stats.canonical_hits as f64 / requests as f64;
    assert!(
        rate + 1e-9 >= 0.9,
        "canonical hit rate {rate:.3} below the 0.9 gate"
    );
    let secs = wall.as_secs_f64().max(1e-12);
    VariantReport {
        bases,
        variants_per_base: variants,
        requests,
        compiles: stats.misses,
        canonical_hits: stats.canonical_hits,
        canonical_hit_rate: rate,
        wall_ms: secs * 1e3,
        req_per_sec: requests as f64 / secs,
    }
}

/// Runs the serve suite and renders `BENCH_serve.json` plus the merged
/// trace of one small instrumented pass (the timed passes stay untraced
/// so the recorder cannot skew them).
pub fn bench_serve_json(opts: &BenchOpts) -> (String, obs::TraceSnapshot) {
    let smoke = opts.smoke;
    let mut passes: Vec<PassReport> = Vec::new();
    let mut speedups: Vec<(usize, usize, f64)> = Vec::new();
    let mut conn_modes: Vec<ConnReport> = Vec::new();
    let mut conn_speedups: Vec<SpeedupReport> = Vec::new();

    for case in serve_cases(smoke) {
        let texts: Vec<String> = (0..case.processes).map(proc_text).collect();
        let requests: Vec<Request> = texts
            .iter()
            .map(|t| Request::Weave { text: t.clone() })
            .collect();
        // One-shot reference bodies for the correctness gate (a spread of
        // the population, not just the head).
        let gate_ix: Vec<usize> = (0..case.processes.min(7))
            .map(|k| k * case.processes / case.processes.min(7).max(1))
            .map(|i| i.min(case.processes - 1))
            .collect();
        let references: Vec<(usize, String)> = gate_ix
            .iter()
            .map(|&i| (i, oneshot(&requests[i], 1).body))
            .collect();

        let thread_list = if opts.threads > 0 {
            vec![opts.threads]
        } else {
            case.threads.clone()
        };
        for &threads in &thread_list {
            let reg = Registry::new(case.processes, threads);
            let (cold_wall, cold_lats, cold_bodies) = run_pass(&reg, &requests, threads);
            let stats = reg.stats();
            assert_eq!(
                stats.misses as usize, case.processes,
                "cold pass must miss once per distinct process"
            );
            let (warm_wall, warm_lats, warm_bodies) = run_pass(&reg, &requests, threads);
            let stats = reg.stats();
            assert_eq!(
                stats.hits as usize, case.processes,
                "warm pass must hit once per distinct process"
            );
            // Correctness gate: cold, warm and one-shot bodies are
            // bit-identical for the sampled processes.
            for (i, reference) in &references {
                assert_eq!(&cold_bodies[*i], reference, "cold body {i} diverged");
                assert_eq!(&warm_bodies[*i], reference, "warm body {i} diverged");
            }

            let mut push = |phase: &'static str, wall: Duration, lats: &[Duration], hits, misses| {
                let secs = wall.as_secs_f64().max(1e-12);
                // Same log2-histogram estimator the daemon's /metrics
                // endpoint uses, so artifact and scraped percentiles are
                // directly comparable.
                let (p50_ms, p99_ms) = percentiles_ms(lats);
                passes.push(PassReport {
                    processes: case.processes,
                    threads,
                    phase,
                    requests: requests.len(),
                    wall_ms: secs * 1e3,
                    req_per_sec: requests.len() as f64 / secs,
                    p50_us: p50_ms * 1e3,
                    p99_us: p99_ms * 1e3,
                    cache_hits: hits,
                    cache_misses: misses,
                });
            };
            push("cold", cold_wall, &cold_lats, 0, case.processes as u64);
            push("warm", warm_wall, &warm_lats, case.processes as u64, 0);

            let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-12);
            assert!(
                speedup >= 5.0,
                "warm serving must be at least 5x faster than cold \
                 ({} processes, {threads} threads: {speedup:.1}x)",
                case.processes
            );
            speedups.push((case.processes, threads, speedup));

            // TCP connection modes over the same (warm) population. The
            // warm in-process bodies double as the exhaustive reference.
            let (reports, conn_speedup) = run_conn_modes(&texts, &warm_bodies, threads);
            assert!(
                smoke || conn_speedup.best_speedup >= 2.0,
                "connection reuse must be at least 2x over per-request \
                 connections ({} processes, {threads} threads: {:.1}x)",
                case.processes,
                conn_speedup.best_speedup
            );
            conn_modes.extend(reports);
            conn_speedups.push(conn_speedup);
        }
    }

    let variant = run_variant_workload(smoke);

    // One small traced pass for the serve.* phase breakdown.
    let (_, trace) = obs::record_with(|| {
        let reg = Registry::new(64, 1);
        for i in 0..50 {
            black_box(handle(
                &reg,
                &Request::Weave {
                    text: proc_text(i % 25),
                },
            ));
        }
        black_box(reg.stats())
    });

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"artifact\": \"BENCH_serve\",\n");
    out.push_str("  \"description\": \"weaver-daemon serving throughput: in-process cold/warm passes over a structurally distinct population, TCP connection modes (per-connection vs keep-alive vs pipelined) against a pre-warmed server, and a textual-variant workload exercising the canonical artifact cache; all response bodies gated bit-identical to one-shot/warm references before timing\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"passes\": [\n");
    for (i, r) in passes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"processes\": {},\n", r.processes));
        out.push_str(&format!("      \"threads\": {},\n", r.threads));
        out.push_str(&format!("      \"phase\": \"{}\",\n", r.phase));
        out.push_str(&format!("      \"requests\": {},\n", r.requests));
        out.push_str(&format!("      \"wall_ms\": {},\n", json_f(r.wall_ms)));
        out.push_str(&format!(
            "      \"req_per_sec\": {},\n",
            json_f(r.req_per_sec)
        ));
        out.push_str(&format!("      \"p50_us\": {},\n", json_f(r.p50_us)));
        out.push_str(&format!("      \"p99_us\": {},\n", json_f(r.p99_us)));
        out.push_str(&format!("      \"cache_hits\": {},\n", r.cache_hits));
        out.push_str(&format!("      \"cache_misses\": {}\n", r.cache_misses));
        out.push_str(if i + 1 == passes.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"warm_over_cold\": [\n");
    for (i, (processes, threads, speedup)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"processes\": {processes}, \"threads\": {threads}, \"speedup\": {} }}{}\n",
            json_f(*speedup),
            if i + 1 == speedups.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"connection_modes\": [\n");
    for (i, r) in conn_modes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"processes\": {},\n", r.processes));
        out.push_str(&format!("      \"threads\": {},\n", r.threads));
        out.push_str(&format!("      \"mode\": \"{}\",\n", r.mode));
        out.push_str(&format!("      \"depth\": {},\n", r.depth));
        out.push_str(&format!("      \"requests\": {},\n", r.requests));
        out.push_str(&format!("      \"wall_ms\": {},\n", json_f(r.wall_ms)));
        out.push_str(&format!(
            "      \"req_per_sec\": {},\n",
            json_f(r.req_per_sec)
        ));
        out.push_str(&format!("      \"p50_us\": {},\n", json_f(r.p50_us)));
        out.push_str(&format!("      \"p99_us\": {}\n", json_f(r.p99_us)));
        out.push_str(if i + 1 == conn_modes.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"keepalive_speedup\": [\n");
    for (i, s) in conn_speedups.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"processes\": {}, \"threads\": {}, \"keepalive_speedup\": {}, \"best_speedup\": {} }}{}\n",
            s.processes,
            s.threads,
            json_f(s.keepalive_speedup),
            json_f(s.best_speedup),
            if i + 1 == conn_speedups.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"variant_workload\": [\n");
    out.push_str("    {\n");
    out.push_str(&format!("      \"bases\": {},\n", variant.bases));
    out.push_str(&format!(
        "      \"variants_per_base\": {},\n",
        variant.variants_per_base
    ));
    out.push_str(&format!("      \"requests\": {},\n", variant.requests));
    out.push_str(&format!("      \"compiles\": {},\n", variant.compiles));
    out.push_str(&format!(
        "      \"canonical_hits\": {},\n",
        variant.canonical_hits
    ));
    out.push_str(&format!(
        "      \"canonical_hit_rate\": {},\n",
        json_f(variant.canonical_hit_rate)
    ));
    out.push_str(&format!("      \"wall_ms\": {},\n", json_f(variant.wall_ms)));
    out.push_str(&format!(
        "      \"req_per_sec\": {}\n",
        json_f(variant.req_per_sec)
    ));
    out.push_str("    }\n");
    out.push_str("  ],\n");
    out.push_str(&format!("  \"phases\": {}\n", phases_json(&trace, "  ")));
    out.push_str("}\n");
    (out, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_is_small_and_full_suite_hits_ten_thousand() {
        let smoke = serve_cases(true);
        assert_eq!(smoke.len(), 1);
        assert!(smoke[0].processes <= 1000);
        assert!(serve_cases(false).iter().any(|c| c.processes >= 10_000));
    }

    #[test]
    fn process_population_is_distinct() {
        use dscweaver_serve::content_hash;
        let hashes: std::collections::HashSet<u64> =
            (0..100).map(|i| content_hash(&proc_text(i))).collect();
        assert_eq!(hashes.len(), 100);
    }

    #[test]
    fn process_population_is_distinct_after_canonicalization() {
        use dscweaver_serve::canonicalize;
        let hashes: std::collections::HashSet<u64> = (0..100)
            .map(|i| canonicalize(&proc_text(i)).unwrap().hash)
            .collect();
        assert_eq!(hashes.len(), 100);
    }

    #[test]
    fn variants_differ_textually_but_share_a_canonical_form() {
        use dscweaver_serve::{canonicalize, content_hash};
        let base_hash = canonicalize(&proc_text(3)).unwrap().hash;
        let raw: std::collections::HashSet<u64> =
            (0..5).map(|v| content_hash(&variant_text(3, v))).collect();
        assert_eq!(raw.len(), 5, "variants must have distinct raw hashes");
        for v in 0..5 {
            assert_eq!(
                canonicalize(&variant_text(3, v)).unwrap().hash,
                base_hash,
                "variant {v} must canonicalize onto the base"
            );
        }
    }
}
