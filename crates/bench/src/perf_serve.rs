//! Weaver-daemon serving throughput: the machine-readable
//! `BENCH_serve.json` artifact written by `repro bench-json --suite
//! serve`.
//!
//! The workload is a population of distinct processes (10k+ in the full
//! suite), each a small guarded diamond with unique activity names, served
//! through the daemon's request path (`service::handle` over a shared
//! `Registry` — the transport framing is exercised by the serve crate's
//! TCP tests and excluded here so the numbers measure serving, not socket
//! juggling). Every (population, threads) configuration runs one **cold**
//! pass (every request compiles and caches) and one **warm** pass (every
//! request hits the prepared-artifact cache), reporting sustained req/s
//! and per-request p50/p99 latency for each. Correctness is gated before
//! timing: a sample of cold, warm and one-shot response bodies must be
//! bit-identical, and the cache counters must account for every request.

use crate::harness::{black_box, percentiles_ms, phases_json, BenchOpts};
use dscweaver_graph::par_map;
use dscweaver_obs as obs;
use dscweaver_serve::registry::Registry;
use dscweaver_serve::service::{handle, oneshot, Request};
use std::time::{Duration, Instant};

/// One serving sweep: a process-population size plus the server thread
/// counts to cross.
pub struct ServeCase {
    /// Number of distinct processes in the population.
    pub processes: usize,
    /// Server worker-thread counts to sweep.
    pub threads: Vec<usize>,
}

/// The serve suite. Smoke keeps the population small so tier-1 tests can
/// exercise the full path in seconds; the full suite serves 10k distinct
/// processes per thread configuration.
pub fn serve_cases(smoke: bool) -> Vec<ServeCase> {
    if smoke {
        return vec![ServeCase {
            processes: 150,
            threads: vec![1, 2],
        }];
    }
    vec![ServeCase {
        processes: 10_000,
        threads: vec![1, 4],
    }]
}

/// The i-th distinct process: a guarded diamond (switch on a written
/// variable, two cases, a join) with names unique to the index, so every
/// request carries a different content hash.
pub fn proc_text(i: usize) -> String {
    format!(
        "process p{i} {{\n var s{i}; var v{i};\n sequence {{\n  assign init{i} writes s{i};\n  switch g{i} reads s{i} {{\n   case T {{ assign x{i} writes v{i}; }}\n   case F {{ assign y{i} writes v{i}; }}\n  }}\n  assign j{i} reads v{i};\n }}\n}}"
    )
}

struct PassReport {
    processes: usize,
    threads: usize,
    phase: &'static str,
    requests: usize,
    wall_ms: f64,
    req_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    cache_hits: u64,
    cache_misses: u64,
}

fn json_f(v: f64) -> String {
    format!("{v:.3}")
}

/// Serves every request once, in parallel across `threads` workers, and
/// returns (wall time, sorted per-request latencies, response bodies).
fn run_pass(
    reg: &Registry,
    requests: &[Request],
    threads: usize,
) -> (Duration, Vec<Duration>, Vec<String>) {
    let t0 = Instant::now();
    let results: Vec<(Duration, String)> = par_map(threads, requests, &|req| {
        let t = Instant::now();
        let response = handle(reg, req);
        (t.elapsed(), response.body)
    });
    let wall = t0.elapsed();
    let mut lats: Vec<Duration> = results.iter().map(|(d, _)| *d).collect();
    lats.sort();
    let bodies = results.into_iter().map(|(_, b)| b).collect();
    (wall, lats, bodies)
}

/// Runs the serve suite and renders `BENCH_serve.json` plus the merged
/// trace of one small instrumented pass (the timed passes stay untraced
/// so the recorder cannot skew them).
pub fn bench_serve_json(opts: &BenchOpts) -> (String, obs::TraceSnapshot) {
    let smoke = opts.smoke;
    let mut passes: Vec<PassReport> = Vec::new();
    let mut speedups: Vec<(usize, usize, f64)> = Vec::new();

    for case in serve_cases(smoke) {
        let texts: Vec<String> = (0..case.processes).map(proc_text).collect();
        let requests: Vec<Request> = texts
            .iter()
            .map(|t| Request::Weave { text: t.clone() })
            .collect();
        // One-shot reference bodies for the correctness gate (a spread of
        // the population, not just the head).
        let gate_ix: Vec<usize> = (0..case.processes.min(7))
            .map(|k| k * case.processes / case.processes.min(7).max(1))
            .map(|i| i.min(case.processes - 1))
            .collect();
        let references: Vec<(usize, String)> = gate_ix
            .iter()
            .map(|&i| (i, oneshot(&requests[i], 1).body))
            .collect();

        let thread_list = if opts.threads > 0 {
            vec![opts.threads]
        } else {
            case.threads.clone()
        };
        for &threads in &thread_list {
            let reg = Registry::new(case.processes, threads);
            let (cold_wall, cold_lats, cold_bodies) = run_pass(&reg, &requests, threads);
            let stats = reg.stats();
            assert_eq!(
                stats.misses as usize, case.processes,
                "cold pass must miss once per distinct process"
            );
            let (warm_wall, warm_lats, warm_bodies) = run_pass(&reg, &requests, threads);
            let stats = reg.stats();
            assert_eq!(
                stats.hits as usize, case.processes,
                "warm pass must hit once per distinct process"
            );
            // Correctness gate: cold, warm and one-shot bodies are
            // bit-identical for the sampled processes.
            for (i, reference) in &references {
                assert_eq!(&cold_bodies[*i], reference, "cold body {i} diverged");
                assert_eq!(&warm_bodies[*i], reference, "warm body {i} diverged");
            }

            let mut push = |phase: &'static str, wall: Duration, lats: &[Duration], hits, misses| {
                let secs = wall.as_secs_f64().max(1e-12);
                // Same log2-histogram estimator the daemon's /metrics
                // endpoint uses, so artifact and scraped percentiles are
                // directly comparable.
                let (p50_ms, p99_ms) = percentiles_ms(lats);
                passes.push(PassReport {
                    processes: case.processes,
                    threads,
                    phase,
                    requests: requests.len(),
                    wall_ms: secs * 1e3,
                    req_per_sec: requests.len() as f64 / secs,
                    p50_us: p50_ms * 1e3,
                    p99_us: p99_ms * 1e3,
                    cache_hits: hits,
                    cache_misses: misses,
                });
            };
            push("cold", cold_wall, &cold_lats, 0, case.processes as u64);
            push("warm", warm_wall, &warm_lats, case.processes as u64, 0);

            let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-12);
            assert!(
                speedup >= 5.0,
                "warm serving must be at least 5x faster than cold \
                 ({} processes, {threads} threads: {speedup:.1}x)",
                case.processes
            );
            speedups.push((case.processes, threads, speedup));
        }
    }

    // One small traced pass for the serve.* phase breakdown.
    let (_, trace) = obs::record_with(|| {
        let reg = Registry::new(64, 1);
        for i in 0..50 {
            black_box(handle(
                &reg,
                &Request::Weave {
                    text: proc_text(i % 25),
                },
            ));
        }
        black_box(reg.stats())
    });

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"artifact\": \"BENCH_serve\",\n");
    out.push_str("  \"description\": \"weaver-daemon serving throughput over a population of distinct processes; per (processes, threads) configuration one cold pass (every request compiles and caches) and one warm pass (every request hits the prepared-artifact cache), with cold/warm/one-shot response bodies gated bit-identical before timing\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"passes\": [\n");
    for (i, r) in passes.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"processes\": {},\n", r.processes));
        out.push_str(&format!("      \"threads\": {},\n", r.threads));
        out.push_str(&format!("      \"phase\": \"{}\",\n", r.phase));
        out.push_str(&format!("      \"requests\": {},\n", r.requests));
        out.push_str(&format!("      \"wall_ms\": {},\n", json_f(r.wall_ms)));
        out.push_str(&format!(
            "      \"req_per_sec\": {},\n",
            json_f(r.req_per_sec)
        ));
        out.push_str(&format!("      \"p50_us\": {},\n", json_f(r.p50_us)));
        out.push_str(&format!("      \"p99_us\": {},\n", json_f(r.p99_us)));
        out.push_str(&format!("      \"cache_hits\": {},\n", r.cache_hits));
        out.push_str(&format!("      \"cache_misses\": {}\n", r.cache_misses));
        out.push_str(if i + 1 == passes.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"warm_over_cold\": [\n");
    for (i, (processes, threads, speedup)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"processes\": {processes}, \"threads\": {threads}, \"speedup\": {} }}{}\n",
            json_f(*speedup),
            if i + 1 == speedups.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"phases\": {}\n", phases_json(&trace, "  ")));
    out.push_str("}\n");
    (out, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_is_small_and_full_suite_hits_ten_thousand() {
        let smoke = serve_cases(true);
        assert_eq!(smoke.len(), 1);
        assert!(smoke[0].processes <= 1000);
        assert!(serve_cases(false).iter().any(|c| c.processes >= 10_000));
    }

    #[test]
    fn process_population_is_distinct() {
        use dscweaver_serve::content_hash;
        let hashes: std::collections::HashSet<u64> =
            (0..100).map(|i| content_hash(&proc_text(i))).collect();
        assert_eq!(hashes.len(), 100);
    }
}
