//! `repro` — regenerates every table and figure of the paper, plus the
//! extended experiments, as text.
//!
//! ```sh
//! cargo run -p dscweaver-bench --bin repro            # everything
//! cargo run -p dscweaver-bench --bin repro table2     # one experiment
//! ```
//!
//! The `bench-json` subcommand instead runs the old-vs-new engine
//! comparisons and writes the machine-readable artifacts
//! (`BENCH_minimize.json`, `BENCH_petri.json`, `BENCH_scheduler.json`,
//! `BENCH_evolve.json`):
//!
//! ```sh
//! cargo run --release -p dscweaver-bench --bin repro -- bench-json                   # minimize
//! cargo run --release -p dscweaver-bench --bin repro -- bench-json --suite petri
//! cargo run --release -p dscweaver-bench --bin repro -- bench-json --suite all
//! cargo run -p dscweaver-bench --bin repro -- bench-json --smoke  # <30 s path check
//! ```
//!
//! The `perf-diff` subcommand compares two bench-json artifacts of the
//! same suite and exits nonzero when any timing regressed past the
//! threshold (see [`exp::perf_diff`]):
//!
//! ```sh
//! cargo run -p dscweaver-bench --bin repro -- perf-diff BENCH_minimize.json fresh.json
//! cargo run -p dscweaver-bench --bin repro -- perf-diff old.json new.json --threshold 1.5
//! ```

use dscweaver_bench as exp;
use dscweaver_obs as obs;
use exp::harness::BenchOpts;

fn bench_json(args: &[String]) {
    // Strict parsing: a typo'd flag must not silently drop `--smoke` and
    // turn a 2-second path check into the multi-minute full suite.
    let usage =
        "usage: repro bench-json [--suite minimize|petri|scheduler|evolve|monitor|serve|all] [--smoke] [--out PATH] [--threads N] [--trace PATH] [--profile]";
    let mut smoke = false;
    let mut suite = "minimize".to_string();
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut profile = false;
    let mut threads = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--profile" => profile = true,
            "--suite" => match it.next().map(String::as_str) {
                Some(
                    s @ ("minimize" | "petri" | "scheduler" | "evolve" | "monitor" | "serve"
                    | "all"),
                ) => suite = s.to_string(),
                _ => {
                    eprintln!("error: --suite requires minimize|petri|scheduler|evolve|monitor|serve|all\n{usage}");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("error: --out requires a path\n{usage}");
                    std::process::exit(2);
                }
            },
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => {
                    eprintln!("error: --trace requires a path\n{usage}");
                    std::process::exit(2);
                }
            },
            "--threads" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) => threads = n,
                _ => {
                    eprintln!("error: --threads requires a non-negative integer\n{usage}");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument '{other}'\n{usage}");
                std::process::exit(2);
            }
        }
    }
    type SuiteFn = fn(&BenchOpts) -> (String, obs::TraceSnapshot);
    let suites: Vec<(&str, &str, SuiteFn)> = match suite.as_str() {
        "minimize" => vec![("minimize", "BENCH_minimize.json", exp::perf::bench_minimize_json)],
        "petri" => vec![("petri", "BENCH_petri.json", exp::perf_petri::bench_petri_json)],
        "scheduler" => vec![(
            "scheduler",
            "BENCH_scheduler.json",
            exp::perf_scheduler::bench_scheduler_json,
        )],
        "evolve" => vec![("evolve", "BENCH_evolve.json", exp::perf_evolve::bench_evolve_json)],
        "monitor" => vec![(
            "monitor",
            "BENCH_monitor.json",
            exp::perf_monitor::bench_monitor_json,
        )],
        "serve" => vec![("serve", "BENCH_serve.json", exp::perf_serve::bench_serve_json)],
        _ => vec![
            ("minimize", "BENCH_minimize.json", exp::perf::bench_minimize_json),
            ("petri", "BENCH_petri.json", exp::perf_petri::bench_petri_json),
            (
                "scheduler",
                "BENCH_scheduler.json",
                exp::perf_scheduler::bench_scheduler_json,
            ),
            ("evolve", "BENCH_evolve.json", exp::perf_evolve::bench_evolve_json),
            (
                "monitor",
                "BENCH_monitor.json",
                exp::perf_monitor::bench_monitor_json,
            ),
            ("serve", "BENCH_serve.json", exp::perf_serve::bench_serve_json),
        ],
    };
    if out_path.is_some() && suites.len() > 1 {
        eprintln!("error: --out needs a single suite, not --suite all\n{usage}");
        std::process::exit(2);
    }
    if trace_path.is_some() && suites.len() > 1 {
        eprintln!("error: --trace needs a single suite, not --suite all\n{usage}");
        std::process::exit(2);
    }
    let opts = BenchOpts { smoke, threads };
    for (name, default_out, run) in suites {
        let (json, trace) = run(&opts);
        let path = out_path.clone().unwrap_or_else(|| default_out.to_string());
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path} (suite {name})");
        if let Some(tp) = &trace_path {
            if let Err(e) = std::fs::write(tp, trace.to_chrome_json()) {
                eprintln!("error: cannot write {tp}: {e}");
                std::process::exit(1);
            }
            eprintln!("trace written to {tp} (load in Perfetto or chrome://tracing)");
        }
        if profile {
            eprint!("{}", trace.summary());
        }
        // Ignore EPIPE so `repro bench-json | head` exits cleanly after
        // the artifact is already on disk.
        let _ = std::io::Write::write_all(&mut std::io::stdout(), json.as_bytes());
    }
}

fn perf_diff(args: &[String]) {
    let usage = "usage: repro perf-diff OLD.json NEW.json [--threshold RATIO] [--min-ms MS]";
    let mut opts = exp::perf_diff::DiffOpts::default();
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(r)) if r > 1.0 => opts.threshold = r,
                _ => {
                    eprintln!("error: --threshold requires a ratio > 1.0\n{usage}");
                    std::process::exit(2);
                }
            },
            "--min-ms" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(f)) if f >= 0.0 => opts.min_ms = f,
                _ => {
                    eprintln!("error: --min-ms requires a non-negative number\n{usage}");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown argument '{flag}'\n{usage}");
                std::process::exit(2);
            }
            p => paths.push(p.to_string()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("error: perf-diff takes exactly two artifact paths\n{usage}");
        std::process::exit(2);
    };
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("error: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let (old_text, new_text) = (read(old_path), read(new_path));
    match exp::perf_diff::diff(&old_text, &new_text, &opts) {
        Ok(report) => {
            print!("{}", exp::perf_diff::render(&report, &opts));
            if !report.regressions().is_empty() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench-json") {
        bench_json(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("perf-diff") {
        perf_diff(&args[1..]);
        return;
    }
    let all = [
        ("fig1", exp::fig1 as fn() -> String),
        ("fig2", exp::fig2),
        ("fig3_4", exp::fig3_4),
        ("fig5", exp::fig5),
        ("fig6", exp::fig6),
        ("table1", exp::table1),
        ("fig7", exp::fig7),
        ("fig8", exp::fig8),
        ("fig9", exp::fig9),
        ("table2", exp::table2),
        ("ext_a", exp::ext_a),
        ("ext_b", exp::ext_b),
        ("ext_c", exp::ext_c),
        ("ext_d", exp::ext_d),
    ];
    let selected: Vec<&str> = if args.is_empty() {
        all.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in selected {
        match all.iter().find(|(n, _)| *n == name) {
            Some((_, f)) => {
                println!("────────────────────────────────────────────────────────────");
                println!("{}", f());
            }
            None => {
                eprintln!(
                    "unknown experiment '{name}'; available: {}",
                    all.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
