//! `repro` — regenerates every table and figure of the paper, plus the
//! extended experiments, as text.
//!
//! ```sh
//! cargo run -p dscweaver-bench --bin repro            # everything
//! cargo run -p dscweaver-bench --bin repro table2     # one experiment
//! ```

use dscweaver_bench as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        ("fig1", exp::fig1 as fn() -> String),
        ("fig2", exp::fig2),
        ("fig3_4", exp::fig3_4),
        ("fig5", exp::fig5),
        ("fig6", exp::fig6),
        ("table1", exp::table1),
        ("fig7", exp::fig7),
        ("fig8", exp::fig8),
        ("fig9", exp::fig9),
        ("table2", exp::table2),
        ("ext_a", exp::ext_a),
        ("ext_b", exp::ext_b),
        ("ext_c", exp::ext_c),
        ("ext_d", exp::ext_d),
    ];
    let selected: Vec<&str> = if args.is_empty() {
        all.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in selected {
        match all.iter().find(|(n, _)| *n == name) {
            Some((_, f)) => {
                println!("────────────────────────────────────────────────────────────");
                println!("{}", f());
            }
            None => {
                eprintln!(
                    "unknown experiment '{name}'; available: {}",
                    all.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
