//! Old-vs-new DES scheduler comparison: the legacy per-tick linear rescan
//! versus the dependency-counting wavefront (sequential and with the
//! guard-evaluation batches on the worker pool), rendered as the
//! machine-readable `BENCH_scheduler.json` artifact written by
//! `repro bench-json --suite scheduler`.
//!
//! Traces are asserted byte-identical across engines and thread counts
//! before any timing is taken; the constraint-check counters of both
//! engines are reported (the wavefront's are strictly lower — that is the
//! optimization).
//!
//! A further section measures the prepared session: K oracle variants
//! replayed through one [`PreparedSchedule`] (indexes derived once)
//! versus a fresh `simulate` — which rebuilds the prereq/dependency
//! indexes — per run.

use crate::harness::{black_box, median, percentiles_ms, phases_json, sample, BenchOpts};
use dscweaver_core::{merge, translate_services, ExecConditions};
use dscweaver_dscl::ConstraintSet;
use dscweaver_obs as obs;
use dscweaver_scheduler::{simulate, simulate_rescan_baseline, PreparedSchedule, SimConfig};
use dscweaver_workloads::{
    dense_conditional, fork_join, layered, DenseConditionalParams, LayeredParams,
};
use std::time::Duration;

/// One comparison input for the scheduler bench.
pub struct SchedulerCase {
    /// Stable case name (used in the JSON artifact).
    pub name: String,
    kind: CaseKind,
}

enum CaseKind {
    Dense(DenseConditionalParams),
    Layered(LayeredParams),
    ForkJoin {
        width: usize,
        chain_len: usize,
        redundant: usize,
        seed: u64,
    },
}

impl SchedulerCase {
    /// Materializes the workload and runs the pipeline front half,
    /// returning the executable ASC (pre-minimization, so the engine sees
    /// the full redundant constraint load the rescan pays for).
    pub fn prepare(&self) -> (ConstraintSet, ExecConditions) {
        let ds = match &self.kind {
            CaseKind::Dense(p) => dense_conditional(p),
            CaseKind::Layered(p) => layered(p),
            CaseKind::ForkJoin {
                width,
                chain_len,
                redundant,
                seed,
            } => fork_join(*width, *chain_len, *redundant, *seed),
        };
        let mut sc = merge(&ds);
        sc.desugar_happen_together();
        let exec = ExecConditions::derive(&sc);
        let (asc, _) = translate_services(&sc);
        (asc, exec)
    }
}

/// The comparison suite. `small_only` keeps the sub-second cases for the
/// tier-1 smoke run; the full suite adds the large layered process behind
/// the committed `BENCH_scheduler.json`.
pub fn scheduler_cases(small_only: bool) -> Vec<SchedulerCase> {
    let mut cases = vec![
        SchedulerCase {
            name: "dense_g4_l3".into(),
            kind: CaseKind::Dense(DenseConditionalParams {
                guards: 4,
                chain_len: 3,
                redundant: 12,
                seed: 11,
            }),
        },
        SchedulerCase {
            name: "fork_join_n122".into(),
            kind: CaseKind::ForkJoin {
                width: 12,
                chain_len: 10,
                redundant: 120,
                seed: 13,
            },
        },
    ];
    if !small_only {
        cases.push(SchedulerCase {
            name: "dense_g9_l12".into(),
            kind: CaseKind::Dense(DenseConditionalParams {
                guards: 9,
                chain_len: 12,
                redundant: 96,
                seed: 11,
            }),
        });
        cases.push(SchedulerCase {
            name: "layered_n1003".into(),
            kind: CaseKind::Layered(LayeredParams {
                width: 10,
                depth: 100,
                density: 0.25,
                redundant: 3_000,
                guards: 3,
                seed: 19,
            }),
        });
    }
    cases
}

struct CaseReport {
    name: String,
    n_activities: usize,
    constraints: usize,
    checks_rescan: u64,
    checks_wavefront: u64,
    baseline_ms: f64,
    new_seq_ms: f64,
    new_par_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    speedup_seq: f64,
    speedup_par: f64,
    replay_runs: usize,
    fresh_replays_ms: f64,
    session_replays_ms: f64,
    session_speedup: f64,
    phases: String,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn json_f(v: f64) -> String {
    format!("{v:.3}")
}

/// Runs the scheduler comparison suite and renders `BENCH_scheduler.json`
/// plus the merged trace of the per-case instrumented runs (one parallel
/// `simulate` per case recorded through `dscweaver-obs`; the timed
/// samples stay untraced so the recorder cannot skew them).
///
/// `opts.smoke` restricts to the small cases with one sample each so the
/// tier-1 test suite can exercise the full measurement path in seconds;
/// its timings are not meaningful.
pub fn bench_scheduler_json(opts: &BenchOpts) -> (String, obs::TraceSnapshot) {
    let (smoke, threads) = (opts.smoke, opts.threads);
    let samples_new = if smoke { 1 } else { 5 };
    let samples_base = if smoke { 1 } else { 3 };
    let mut reports: Vec<CaseReport> = Vec::new();
    let mut suite_trace = obs::TraceSnapshot::default();
    for case in scheduler_cases(smoke) {
        let (asc, exec) = case.prepare();
        let config = SimConfig::default();
        let seq_cfg = SimConfig {
            threads: 1,
            ..Default::default()
        };
        let par_cfg = SimConfig {
            threads,
            ..Default::default()
        };

        let s_base = simulate_rescan_baseline(&asc, &exec, &config);
        let s_seq = simulate(&asc, &exec, &seq_cfg);
        let s_par = simulate(&asc, &exec, &par_cfg);
        assert!(s_base.completed(), "case {}: stuck", case.name);
        let key = |s: &dscweaver_scheduler::Schedule| format!("{:?} {:?}", s.trace, s.stuck);
        assert_eq!(key(&s_base), key(&s_seq), "case {}", case.name);
        assert_eq!(key(&s_base), key(&s_par), "case {}", case.name);
        assert_eq!(
            s_seq.constraint_checks, s_par.constraint_checks,
            "case {}: checks not thread-invariant",
            case.name
        );
        assert!(
            s_seq.constraint_checks <= s_base.constraint_checks,
            "case {}: agenda spent more checks",
            case.name
        );

        let t_base = median(&sample(samples_base, || {
            black_box(simulate_rescan_baseline(&asc, &exec, &config))
        }));
        let t_seq = median(&sample(samples_new, || {
            black_box(simulate(&asc, &exec, &seq_cfg))
        }));
        let par_samples = sample(samples_new, || black_box(simulate(&asc, &exec, &par_cfg)));
        let t_par = median(&par_samples);
        let (p50_ms, p99_ms) = percentiles_ms(&par_samples);

        // One traced run of the parallel engine, outside the timed
        // samples, for the per-phase breakdown and the suite trace.
        let (_, case_trace) = obs::record_with(|| black_box(simulate(&asc, &exec, &par_cfg)));

        // Amortized prepared-session constant: K oracle variants (bit
        // patterns over up to three guard domains; identical configs on
        // guard-free workloads) replayed through one `PreparedSchedule`
        // versus a fresh `simulate` — which re-derives the
        // prereq/dependency indexes — per run. Traces are asserted
        // identical before timing.
        let doms: Vec<(&String, &Vec<String>)> = asc
            .domains
            .iter()
            .filter(|(_, dom)| !dom.is_empty())
            .take(3)
            .collect();
        let oracles: Vec<SimConfig> = (0..8u32)
            .map(|bits| {
                let mut cfg = SimConfig {
                    threads: 1,
                    ..Default::default()
                };
                for (k, (g, dom)) in doms.iter().enumerate() {
                    let d = if bits & (1 << k) != 0 { 1 % dom.len() } else { 0 };
                    cfg.oracle.insert((*g).clone(), dom[d].clone());
                }
                cfg
            })
            .collect();
        let session = PreparedSchedule::new(&asc, &exec);
        for cfg in &oracles {
            let fresh = simulate(&asc, &exec, cfg);
            let replay = session.run(cfg);
            assert_eq!(key(&fresh), key(&replay), "case {}: replay diverged", case.name);
            assert_eq!(
                fresh.constraint_checks, replay.constraint_checks,
                "case {}: replay checks diverged",
                case.name
            );
        }
        let t_fresh_runs = median(&sample(samples_new, || {
            for cfg in &oracles {
                black_box(simulate(&asc, &exec, cfg));
            }
        }));
        let t_session_runs = median(&sample(samples_new, || {
            let session = PreparedSchedule::new(&asc, &exec);
            for cfg in &oracles {
                black_box(session.run(cfg));
            }
        }));

        reports.push(CaseReport {
            name: case.name,
            n_activities: asc.activities.len(),
            constraints: asc.constraint_count(),
            checks_rescan: s_base.constraint_checks,
            checks_wavefront: s_seq.constraint_checks,
            baseline_ms: ms(t_base),
            new_seq_ms: ms(t_seq),
            new_par_ms: ms(t_par),
            p50_ms,
            p99_ms,
            speedup_seq: t_base.as_secs_f64() / t_seq.as_secs_f64().max(1e-12),
            speedup_par: t_base.as_secs_f64() / t_par.as_secs_f64().max(1e-12),
            replay_runs: oracles.len(),
            fresh_replays_ms: ms(t_fresh_runs),
            session_replays_ms: ms(t_session_runs),
            session_speedup: t_fresh_runs.as_secs_f64() / t_session_runs.as_secs_f64().max(1e-12),
            phases: phases_json(&case_trace, "      "),
        });
        suite_trace.merge(case_trace);
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"artifact\": \"BENCH_scheduler\",\n");
    out.push_str("  \"description\": \"DES execution of the full ASC: legacy per-tick linear rescan vs the dependency-counting wavefront (seq and with guard-evaluation batches on the worker pool), plus the amortized prepared-session replay constant across oracle variants; traces asserted byte-identical before timing\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"n_activities\": {},\n", r.n_activities));
        out.push_str(&format!("      \"constraints\": {},\n", r.constraints));
        out.push_str(&format!(
            "      \"checks_rescan\": {},\n",
            r.checks_rescan
        ));
        out.push_str(&format!(
            "      \"checks_wavefront\": {},\n",
            r.checks_wavefront
        ));
        out.push_str(&format!(
            "      \"baseline_ms\": {},\n",
            json_f(r.baseline_ms)
        ));
        out.push_str(&format!("      \"new_seq_ms\": {},\n", json_f(r.new_seq_ms)));
        out.push_str(&format!("      \"new_par_ms\": {},\n", json_f(r.new_par_ms)));
        out.push_str(&format!("      \"p50_ms\": {},\n", json_f(r.p50_ms)));
        out.push_str(&format!("      \"p99_ms\": {},\n", json_f(r.p99_ms)));
        out.push_str(&format!(
            "      \"speedup_seq\": {},\n",
            json_f(r.speedup_seq)
        ));
        out.push_str(&format!(
            "      \"speedup_par\": {},\n",
            json_f(r.speedup_par)
        ));
        out.push_str(&format!("      \"replay_runs\": {},\n", r.replay_runs));
        out.push_str(&format!(
            "      \"fresh_replays_ms\": {},\n",
            json_f(r.fresh_replays_ms)
        ));
        out.push_str(&format!(
            "      \"session_replays_ms\": {},\n",
            json_f(r.session_replays_ms)
        ));
        out.push_str(&format!(
            "      \"session_speedup\": {},\n",
            json_f(r.session_speedup)
        ));
        out.push_str(&format!("      \"phases\": {}\n", r.phases));
        out.push_str(if i + 1 == reports.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    (out, suite_trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_prepare_deterministically() {
        for case in scheduler_cases(true) {
            let (a, _) = case.prepare();
            let (b, _) = case.prepare();
            assert_eq!(a, b, "case {} not deterministic", case.name);
            assert!(a.constraint_count() > 0);
        }
    }

    #[test]
    fn full_suite_scales_past_a_thousand_activities() {
        let full = scheduler_cases(false);
        let big = full.iter().find(|c| c.name == "layered_n1003").unwrap();
        let (asc, _) = big.prepare();
        assert!(asc.activities.len() >= 1000);
    }
}
