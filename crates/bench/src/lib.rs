//! # dscweaver-bench
//!
//! Experiment harness: structured regeneration of every table and figure
//! in the paper plus the extended (Ext-A..D) evaluations, shared between
//! the `repro` binary and the wall-time benches (see [`harness`]).

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod perf;
pub mod perf_diff;
pub mod perf_evolve;
pub mod perf_monitor;
pub mod perf_petri;
pub mod perf_scheduler;
pub mod perf_serve;

pub use experiments::*;
