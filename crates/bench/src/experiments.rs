//! The experiment implementations, one function per paper table/figure
//! plus the extended sweeps. Each returns its report as a `String` so the
//! `repro` binary can print and EXPERIMENTS.md can quote them.

use dscweaver_core::{EdgeOrder, EquivalenceMode, Weaver};
use dscweaver_dscl::SyncGraph;
use dscweaver_model::{parse_process, render_constructs, render_flowchart};
use dscweaver_scheduler::{simulate, structural_constraints, DurationModel, SimConfig};
use dscweaver_workloads::{
    fork_join, layered, purchasing_dependencies, purchasing_process, service_mesh,
    LayeredParams,
};
use std::collections::BTreeMap;
use std::time::Instant;

/// The Figure-3 toy process of §3.1 (a1 branches on `flag`; a7 joins).
pub const FIGURE3_DSL: &str = "process Figure3 { var flag, x, y, z;
  sequence {
    assign a0 writes flag, x;
    switch a1 reads flag {
      case T { sequence { assign a2 reads x writes y; assign a3 reads y writes z; } }
      case F { sequence { assign a4 reads x writes y; assign a5 reads y; assign a6 writes z; } }
    }
    assign a7 reads z;
  }
}";

/// Figure 1: the Purchasing process flowchart.
pub fn fig1() -> String {
    format!(
        "Figure 1. The Purchasing process flowchart\n\n{}",
        render_flowchart(&purchasing_process())
    )
}

/// Figure 2: the sequencing-construct implementation.
pub fn fig2() -> String {
    format!(
        "Figure 2. The Purchasing process implemented in sequencing constructs\n\n{}",
        render_constructs(&purchasing_process())
    )
}

/// Figures 3–4: the toy spec and its extracted data/control dependency
/// graph.
pub fn fig3_4() -> String {
    let p = parse_process(FIGURE3_DSL).expect("built-in");
    let mut out = format!("Figure 3. A process specification\n\n{}", render_constructs(&p));
    out.push_str("\nFigure 4. Data and control dependency graph\n");
    for d in dscweaver_pdg::data_dependencies(&p) {
        out.push_str(&format!("  {d}   (dotted: data)\n"));
    }
    for d in dscweaver_pdg::control_dependencies(&p) {
        out.push_str(&format!("  {d}   (solid: control)\n"));
    }
    out
}

/// Figure 5: the data+control dependency graph of the Purchasing process,
/// extracted from the Figure-2 implementation.
pub fn fig5() -> String {
    let p = purchasing_process();
    let mut out = String::from(
        "Figure 5. Data and control dependency graph for the Purchasing process\n",
    );
    for d in dscweaver_pdg::data_dependencies(&p) {
        out.push_str(&format!("  {d}\n"));
    }
    for d in dscweaver_pdg::control_dependencies(&p) {
        out.push_str(&format!("  {d}\n"));
    }
    out
}

/// Figure 6: the Deployment process.
pub fn fig6() -> String {
    let p = dscweaver_workloads::deployment_process();
    let mut out = format!(
        "Figure 6. Deployment process\n\n{}",
        render_flowchart(&p)
    );
    out.push_str("\ncooperation dependencies (analyst-supplied):\n");
    for d in dscweaver_workloads::deployment::deployment_cooperation() {
        out.push_str(&format!("  {d}\n"));
    }
    out
}

/// Table 1: the full four-dimension dependency listing.
pub fn table1() -> String {
    purchasing_dependencies().render_table1()
}

/// Figure 7: the merged synchronization constraint set SC.
pub fn fig7() -> String {
    let out = Weaver::new().run(&purchasing_dependencies()).expect("sound");
    format!(
        "Figure 7. Synchronization constraints for the Purchasing process ({} edges)\n\n{}\n",
        out.sc.constraint_count(),
        SyncGraph::build(&out.sc).render()
    )
}

/// Figure 8: service dependency translation (ASC; bridges listed first).
pub fn fig8() -> String {
    let out = Weaver::new().run(&purchasing_dependencies()).expect("sound");
    let mut s = format!(
        "Figure 8. Dependency translation on service dependencies ({} edges)\n\nbold (translated) edges:\n",
        out.asc.constraint_count()
    );
    for b in &out.translation.bridges {
        s.push_str(&format!("  {b}\n"));
    }
    s.push_str(&format!(
        "dead-end service chains removed: {:?}\n\nfull ASC:\n{}\n",
        out.translation.dead_ends,
        SyncGraph::build(&out.asc).render()
    ));
    s
}

/// Figure 9: the minimal synchronization constraint set.
pub fn fig9() -> String {
    let out = Weaver::new().run(&purchasing_dependencies()).expect("sound");
    format!(
        "Figure 9. Minimal synchronization constraints ({} edges)\n\n{}\n",
        out.minimal.constraint_count(),
        SyncGraph::build(&out.minimal).render()
    )
}

/// Table 2: constraint counts before/after optimization.
pub fn table2() -> String {
    let out = Weaver::new().run(&purchasing_dependencies()).expect("sound");
    out.render_table2()
}

/// Ext-A: reduction ratio and optimization wall time vs process size.
pub fn ext_a() -> String {
    let mut out = String::from(
        "Ext-A. Minimization scaling (layered processes, redundancy = 50% of edges)\n",
    );
    out.push_str(&format!(
        "{:<10}{:>10}{:>10}{:>10}{:>12}{:>12}\n",
        "acts", "deps", "minimal", "removed", "reduction%", "time_ms"
    ));
    for (width, depth) in [(4, 5), (6, 10), (8, 15), (10, 25), (12, 40)] {
        let ds = layered(&LayeredParams {
            width,
            depth,
            density: 0.25,
            redundant: width * depth / 2,
            guards: 2,
            seed: 7,
        });
        let t0 = Instant::now();
        let res = Weaver::new().run(&ds).expect("sound");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let before = res.sc.constraint_count();
        let after = res.minimal.constraint_count();
        out.push_str(&format!(
            "{:<10}{:>10}{:>10}{:>10}{:>11.1}%{:>12.1}\n",
            ds.activities.len(),
            before,
            after,
            before - after,
            100.0 * (before - after) as f64 / before as f64,
            ms
        ));
    }
    out
}

/// Ext-B: minimal-set ablation — equivalence modes × removal orders on the
/// Purchasing process and a guarded synthetic workload.
pub fn ext_b() -> String {
    let mut out =
        String::from("Ext-B. Ablation: equivalence mode x removal order (minimal-set size)\n");
    let workloads: Vec<(&str, dscweaver_core::DependencySet)> = vec![
        ("purchasing", purchasing_dependencies()),
        (
            "layered+guards",
            layered(&LayeredParams {
                width: 5,
                depth: 8,
                density: 0.35,
                redundant: 20,
                guards: 3,
                seed: 11,
            }),
        ),
    ];
    out.push_str(&format!(
        "{:<16}{:>14}{:>16}{:>14}{:>12}\n",
        "workload", "mode", "order", "minimal", "time_us"
    ));
    for (name, ds) in &workloads {
        for mode in [
            EquivalenceMode::Strict,
            EquivalenceMode::ExecutionAware,
            EquivalenceMode::Reachability,
        ] {
            for (oname, order) in [
                ("given", EdgeOrder::Given),
                ("reverse", EdgeOrder::ReverseGiven),
                ("coop-first", EdgeOrder::default()),
            ] {
                let weaver = Weaver {
                    mode,
                    order: order.clone(),
                    ..Weaver::default()
                };
                let t0 = Instant::now();
                let res = weaver.run(ds).expect("sound");
                let us = t0.elapsed().as_secs_f64() * 1e6;
                out.push_str(&format!(
                    "{:<16}{:>14}{:>16}{:>14}{:>12.0}\n",
                    name,
                    format!("{mode:?}"),
                    oname,
                    res.minimal.constraint_count(),
                    us
                ));
            }
        }
    }

    // Fast path vs generic greedy on an unconditional workload.
    out.push_str("\nUnconditional fast path (transitive reduction) vs generic greedy:\n");
    let ds = fork_join(8, 8, 60, 17);
    let sc = dscweaver_core::merge(&ds);
    let exec = dscweaver_core::ExecConditions::derive(&sc);
    let (asc, _) = dscweaver_core::translate_services(&sc);
    let t0 = Instant::now();
    let fast = dscweaver_core::minimize_unconditional_fast(&asc, &EdgeOrder::default()).unwrap();
    let fast_us = t0.elapsed().as_secs_f64() * 1e6;
    let t0 = Instant::now();
    let generic = dscweaver_core::minimize_generic(
        &asc,
        &exec,
        EquivalenceMode::Strict,
        &EdgeOrder::default(),
    )
    .unwrap();
    let generic_us = t0.elapsed().as_secs_f64() * 1e6;
    assert_eq!(fast.kept(), generic.kept(), "fast path parity");
    out.push_str(&format!(
        "  fork-join 8x8 +60 redundant ({} deps): fast {:.0}us, generic {:.0}us ({:.1}x)\n",
        asc.constraint_count(),
        fast_us,
        generic_us,
        generic_us / fast_us.max(1.0)
    ));
    out
}

/// Ext-C: Petri-net validation cost and verdicts.
pub fn ext_c() -> String {
    let mut out = String::from("Ext-C. Petri-net validation (per-branch-assignment simulation)\n");
    out.push_str(&format!(
        "{:<22}{:>8}{:>12}{:>10}{:>10}{:>12}\n",
        "workload", "acts", "assignments", "verdict", "failures", "time_ms"
    ));
    let mut cases: Vec<(String, dscweaver_core::DependencySet)> = vec![
        ("purchasing".into(), purchasing_dependencies()),
        ("mesh-20".into(), service_mesh(20, 5)),
    ];
    for guards in [1usize, 4, 8] {
        cases.push((
            format!("layered-g{guards}"),
            layered(&LayeredParams {
                width: 4,
                depth: 6,
                density: 0.3,
                redundant: 8,
                guards,
                seed: 3,
            }),
        ));
    }
    for (name, ds) in &cases {
        let res = Weaver::new().run(ds).expect("sound");
        let t0 = Instant::now();
        let report = dscweaver_petri::validate_default(&res.minimal, &res.exec);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        out.push_str(&format!(
            "{:<22}{:>8}{:>12}{:>10}{:>10}{:>12.1}\n",
            name,
            ds.activities.len(),
            report.assignments_checked,
            if report.ok() { "OK" } else { "FAIL" },
            report.failures.len(),
            ms
        ));
    }
    // Seeded-conflict verdicts.
    let mut broken = purchasing_dependencies();
    broken.push(dscweaver_core::Dependency::cooperation(
        "replyClient_oi",
        "recClient_po",
    ));
    let verdict = match Weaver::new().run(&broken) {
        Err(e) => format!("rejected: {e}"),
        Ok(_) => "MISSED".into(),
    };
    out.push_str(&format!("\nseeded cycle in purchasing: {verdict}\n"));
    out
}

/// The simulation configuration used throughout Ext-D.
pub fn ext_d_sim(branch: &str) -> SimConfig {
    let mut durations: BTreeMap<String, u64> = BTreeMap::new();
    for (a, d) in [
        ("recCredit_au", 40u64),
        ("recPurchase_oi", 60),
        ("recShip_si", 50),
        ("recShip_ss", 20),
    ] {
        durations.insert(a.into(), d);
    }
    SimConfig {
        durations: DurationModel::with_overrides(2, durations),
        oracle: [("if_au".to_string(), branch.to_string())].into(),
        workers: None,
        threads: 0,
    }
}

/// Ext-D: execution comparison — Figure-2 constructs vs full ASC vs
/// minimal set on the same engine.
pub fn ext_d() -> String {
    let process = purchasing_process();
    let ds = purchasing_dependencies();
    let res = Weaver::new().run(&ds).expect("sound");
    let sim = ext_d_sim("T");

    let mut out = String::from(
        "Ext-D. Execution on the dataflow engine (Purchasing, authorized branch)\n",
    );
    out.push_str(&format!(
        "{:<26}{:>12}{:>10}{:>14}{:>14}\n",
        "scheme", "constraints", "makespan", "concurrency", "checks"
    ));

    let structural = structural_constraints(&process).expect("no loops");
    let exec_structural = dscweaver_core::ExecConditions::derive(&structural);
    let rows: Vec<(&str, &dscweaver_dscl::ConstraintSet, &dscweaver_core::ExecConditions)> = vec![
        ("Figure-2 constructs", &structural, &exec_structural),
        ("full ASC (unoptimized)", &res.asc, &res.exec),
        ("minimal P*", &res.minimal, &res.exec),
    ];
    for (name, cs, exec) in rows {
        let schedule = simulate(cs, exec, &sim);
        assert!(schedule.completed(), "{name} stuck: {:?}", schedule.stuck);
        let violations = schedule.trace.verify(&res.asc);
        assert!(violations.is_empty(), "{name}: {violations:?}");
        out.push_str(&format!(
            "{:<26}{:>12}{:>10}{:>14}{:>14}\n",
            name,
            cs.constraint_count(),
            schedule.trace.makespan(),
            schedule.trace.max_concurrency(),
            schedule.constraint_checks
        ));
    }

    // Potential concurrency: the exact maximum antichain of each
    // activity-level precedence graph — the "opportunities for concurrent
    // execution" the paper claims the minimal set preserves and the
    // constructs baseline narrows. (On the Purchasing process the
    // *measured* makespans coincide because the Purchase-service chain is
    // the critical path either way; the structural difference is in the
    // schedulable width.)
    out.push_str("\nPotential concurrency (max antichain of the T-branch precedence DAG):\n");
    for (name, cs) in [
        ("Figure-2 constructs", &structural),
        ("minimal P*", &res.minimal),
    ] {
        let sg = dscweaver_dscl::SyncGraph::build(cs);
        let (width, _) =
            dscweaver_graph::max_antichain(&sg.graph).expect("constraint DAGs are acyclic");
        out.push_str(&format!("  {name:<26}{width:>4} states-wide\n"));
    }

    // Makespan sweep on the naive quote-aggregation process (three
    // independent service calls written as a sequence): here the
    // over-specification sits squarely on the critical path and the
    // dependency approach recovers the parallelism.
    out.push_str("\nService-latency sweep on QuoteAggregation (makespan):\n");
    out.push_str(&format!(
        "{:<12}{:>14}{:>12}{:>10}\n",
        "latency", "constructs", "minimal", "speedup"
    ));
    let quotes = dscweaver_workloads::quotes_process();
    let quotes_deps = dscweaver_workloads::quotes_dependencies();
    let qres = Weaver::new().run(&quotes_deps).expect("sound");
    let qstructural = structural_constraints(&quotes).expect("no loops");
    let qexec = dscweaver_core::ExecConditions::derive(&qstructural);
    for latency in [5u64, 20, 50, 100, 200] {
        let mut durations: BTreeMap<String, u64> = BTreeMap::new();
        for a in ["recA", "recB", "recC"] {
            durations.insert(a.into(), latency);
        }
        let sim = SimConfig {
            durations: DurationModel::with_overrides(2, durations),
            oracle: BTreeMap::new(),
            workers: None,
            threads: 0,
        };
        let s_base = simulate(&qstructural, &qexec, &sim);
        let s_min = simulate(&qres.minimal, &qres.exec, &sim);
        out.push_str(&format!(
            "{:<12}{:>14}{:>12}{:>9.2}x\n",
            latency,
            s_base.trace.makespan(),
            s_min.trace.makespan(),
            s_base.trace.makespan() as f64 / s_min.trace.makespan() as f64
        ));
    }

    // Synthetic fork-join: monitoring-cost scaling with redundancy.
    out.push_str("\nMonitoring cost vs injected redundancy (fork-join 6x6):\n");
    out.push_str(&format!(
        "{:<12}{:>10}{:>10}{:>16}{:>16}\n",
        "redundant", "full", "minimal", "checks(full)", "checks(min)"
    ));
    for redundant in [0usize, 10, 25, 50, 100] {
        let ds = fork_join(6, 6, redundant, 13);
        let res = Weaver::new().run(&ds).expect("sound");
        let sim = SimConfig::default();
        let full = simulate(&res.asc, &res.exec, &sim);
        let min = simulate(&res.minimal, &res.exec, &sim);
        assert_eq!(full.trace.makespan(), min.trace.makespan());
        out.push_str(&format!(
            "{:<12}{:>10}{:>10}{:>16}{:>16}\n",
            redundant,
            res.asc.constraint_count(),
            res.minimal.constraint_count(),
            full.constraint_checks,
            min.constraint_checks
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figures_regenerate() {
        assert!(fig1().contains("◇ if_au"));
        assert!(fig2().contains("switch if_au"));
        let f34 = fig3_4();
        assert!(f34.contains("a1 ->T a2"));
        assert!(!f34.contains("a7 ->"), "a7 is not a source of control deps");
        let f5 = fig5();
        assert!(f5.contains("recShip_si ->d invPurchase_si"));
        assert!(f5.contains("if_au ->T invShip_po"));
        assert!(fig6().contains("invDeploy_midConfig ->o invDeploy_appConfig"));
    }

    #[test]
    fn paper_tables_regenerate() {
        let t1 = table1();
        assert!(t1.contains("total: 40"));
        let t2 = table2();
        assert!(t2.contains("(23 removed)"), "{t2}");
        assert!(fig7().contains("40 edges"));
        assert!(fig8().contains("31 edges"));
        assert!(fig9().contains("17 edges"));
    }

    #[test]
    fn extended_experiments_run() {
        let a = ext_a();
        assert!(a.lines().count() >= 7, "{a}");
        let b = ext_b();
        assert!(b.contains("purchasing"));
        let c = ext_c();
        assert!(c.contains("rejected"));
        let d = ext_d();
        assert!(d.contains("minimal P*"));
    }
}
