//! Old-vs-new minimizer comparison: shared case definitions for the
//! `scaling_minimize` / `ablation_minimize` benches and the
//! machine-readable `BENCH_minimize.json` artifact written by
//! `repro bench-json`.
//!
//! The comparison pits [`dscweaver_core::minimize_generic_with`] (interned
//! annotations, bitset prefilters, scoped worker threads — this repo's
//! optimized engine) against [`dscweaver_core::minimize_generic_baseline`]
//! (the sequential structural reference) on identical prepared inputs, and
//! asserts the minimal sets agree before reporting any timing.

use crate::harness::{black_box, median, percentiles_ms, phases_json, sample, BenchOpts};
use dscweaver_core::{
    merge, minimize_generic_baseline, minimize_generic_with, translate_services, EdgeOrder,
    EquivalenceMode, ExecConditions, MinimizeOptions,
};
use dscweaver_dscl::ConstraintSet;
use dscweaver_obs as obs;
use dscweaver_workloads::{fork_join, layered, purchasing_dependencies, LayeredParams};
use std::time::Duration;

/// One comparison input: a workload plus the minimizer configuration to
/// run it under.
pub struct MinimizeCase {
    /// Stable case name (used in bench ids and the JSON artifact).
    pub name: String,
    /// Closure-comparison mode.
    pub mode: EquivalenceMode,
    /// Removal-candidate order.
    pub order: EdgeOrder,
    kind: CaseKind,
}

enum CaseKind {
    Purchasing,
    Layered(LayeredParams),
    ForkJoin {
        width: usize,
        chain_len: usize,
        redundant: usize,
        seed: u64,
    },
}

impl MinimizeCase {
    /// Materializes the workload and runs the pipeline front half
    /// (merge → execution conditions → service translation), returning the
    /// ASC the minimizer takes. Deterministic per case.
    pub fn prepare(&self) -> (ConstraintSet, ExecConditions) {
        let ds = match &self.kind {
            CaseKind::Purchasing => purchasing_dependencies(),
            CaseKind::Layered(p) => layered(p),
            CaseKind::ForkJoin {
                width,
                chain_len,
                redundant,
                seed,
            } => fork_join(*width, *chain_len, *redundant, *seed),
        };
        let mut sc = merge(&ds);
        sc.desugar_happen_together();
        let exec = ExecConditions::derive(&sc);
        let (asc, _) = translate_services(&sc);
        (asc, exec)
    }
}

/// The comparison suite. `small_only` drops the n=2000 scaling case —
/// use it for iterating benches and for the tier-1 smoke run; the full
/// suite backs the committed `BENCH_minimize.json`.
pub fn minimize_cases(small_only: bool) -> Vec<MinimizeCase> {
    let mut cases = vec![
        MinimizeCase {
            name: "purchasing_n14".into(),
            mode: EquivalenceMode::ExecutionAware,
            order: EdgeOrder::default(),
            kind: CaseKind::Purchasing,
        },
        MinimizeCase {
            name: "layered_n62".into(),
            mode: EquivalenceMode::ExecutionAware,
            order: EdgeOrder::default(),
            kind: CaseKind::Layered(LayeredParams {
                width: 6,
                depth: 10,
                density: 0.3,
                redundant: 60,
                guards: 2,
                seed: 17,
            }),
        },
        MinimizeCase {
            name: "fork_join_n82".into(),
            mode: EquivalenceMode::Strict,
            order: EdgeOrder::default(),
            kind: CaseKind::ForkJoin {
                width: 8,
                chain_len: 10,
                redundant: 80,
                seed: 5,
            },
        },
        MinimizeCase {
            name: "layered_n403".into(),
            mode: EquivalenceMode::ExecutionAware,
            order: EdgeOrder::default(),
            kind: CaseKind::Layered(LayeredParams {
                width: 8,
                depth: 50,
                density: 0.25,
                redundant: 400,
                guards: 3,
                seed: 23,
            }),
        },
    ];
    if !small_only {
        // The acceptance-criterion case: 2000 activities, injected
        // redundancy sized so the input holds at least twice the
        // constraints the minimal set keeps.
        cases.push(MinimizeCase {
            name: "layered_n2003".into(),
            mode: EquivalenceMode::ExecutionAware,
            order: EdgeOrder::default(),
            kind: CaseKind::Layered(LayeredParams {
                width: 20,
                depth: 100,
                density: 0.25,
                redundant: 12_000,
                guards: 3,
                seed: 29,
            }),
        });
    }
    cases
}

/// One row of the JSON artifact.
struct CaseReport {
    name: String,
    n_activities: usize,
    constraints_in: usize,
    constraints_kept: usize,
    removed: usize,
    redundancy: f64,
    mode: String,
    order: String,
    baseline_ms: f64,
    new_seq_ms: f64,
    new_par_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    speedup_seq: f64,
    speedup_par: f64,
    closure_seq_ms: f64,
    closure_par_ms: f64,
    closure_speedup: f64,
    pool_dnfs: usize,
    pool_terms: usize,
    implies_hit_rate: f64,
    implies_evictions: u64,
    phases: String,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Total milliseconds recorded under phase `name` in a trace (0 when the
/// phase never ran).
fn phase_ms(snapshot: &obs::TraceSnapshot, name: &str) -> f64 {
    snapshot.phase_totals_ms().get(name).copied().unwrap_or(0.0)
}

fn json_f(v: f64) -> String {
    // Stable short float rendering for the artifact.
    format!("{v:.3}")
}

/// Runs the comparison suite and renders `BENCH_minimize.json` plus the
/// merged trace of the per-case instrumented runs (one optimized-engine
/// run per case recorded through `dscweaver-obs`; the timed samples stay
/// untraced so the recorder cannot skew them).
///
/// `opts.smoke` restricts to the small cases with one sample each — it
/// exists so the tier-1 test suite can exercise the whole measurement
/// path (prepare → both engines → agreement check → JSON rendering) in
/// seconds; its timings are not meaningful.
pub fn bench_minimize_json(opts: &BenchOpts) -> (String, obs::TraceSnapshot) {
    let (smoke, threads) = (opts.smoke, opts.threads);
    let samples_new = if smoke { 1 } else { 5 };
    let samples_base = if smoke { 1 } else { 3 };
    let mut reports: Vec<CaseReport> = Vec::new();
    let mut suite_trace = obs::TraceSnapshot::default();
    for case in minimize_cases(smoke) {
        let (asc, exec) = case.prepare();
        if smoke && asc.constraint_count() > 500 {
            // Smoke mode exists to run inside the (unoptimized) test
            // suite in seconds — the path check doesn't need mid-size
            // inputs.
            continue;
        }
        let big = asc.constraint_count() > 2_000;
        // The baseline is minutes-slow on the n=2000 case — one sample.
        let sb = if big { 1 } else { samples_base };

        let seq = MinimizeOptions {
            threads: 1,
            ..Default::default()
        };
        let par = MinimizeOptions {
            threads,
            ..Default::default()
        };
        let res_base =
            minimize_generic_baseline(&asc, &exec, case.mode, &case.order).expect("acyclic");
        let res_new =
            minimize_generic_with(&asc, &exec, case.mode, &case.order, &par).expect("acyclic");
        let kept = |r: &dscweaver_core::MinimizeResult| {
            let mut v: Vec<String> = r.minimal.happen_befores().map(|x| x.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(
            kept(&res_base),
            kept(&res_new),
            "engines disagree on case {}",
            case.name
        );

        let t_base = median(&sample(sb, || {
            black_box(minimize_generic_baseline(&asc, &exec, case.mode, &case.order).unwrap())
        }));
        let t_seq = median(&sample(samples_new, || {
            black_box(
                minimize_generic_with(&asc, &exec, case.mode, &case.order, &seq).unwrap(),
            )
        }));
        let par_samples = sample(samples_new, || {
            black_box(
                minimize_generic_with(&asc, &exec, case.mode, &case.order, &par).unwrap(),
            )
        });
        let t_par = median(&par_samples);
        let (p50_ms, p99_ms) = percentiles_ms(&par_samples);

        // Traced runs of the optimized engine, outside the timed samples:
        // one at threads=1 (the sequential interned-closure path) and one
        // at the suite thread count (the level-parallel path). The phase
        // totals give the closure-build comparison; the parallel trace
        // also backs the per-case phase breakdown and the suite trace.
        let (_, seq_trace) = obs::record_with(|| {
            black_box(minimize_generic_with(&asc, &exec, case.mode, &case.order, &seq).unwrap())
        });
        let (_, case_trace) = obs::record_with(|| {
            black_box(minimize_generic_with(&asc, &exec, case.mode, &case.order, &par).unwrap())
        });
        let closure_seq_ms = phase_ms(&seq_trace, "minimize.closure");
        let closure_par_ms = phase_ms(&case_trace, "minimize.closure");

        let kept_n = res_new.kept();
        reports.push(CaseReport {
            name: case.name,
            n_activities: asc.activities.len(),
            constraints_in: asc.constraint_count(),
            constraints_kept: kept_n,
            removed: res_new.removed.len(),
            redundancy: asc.constraint_count() as f64 / kept_n.max(1) as f64,
            mode: format!("{:?}", case.mode),
            order: match &case.order {
                EdgeOrder::Given => "given".into(),
                EdgeOrder::ReverseGiven => "reverse_given".into(),
                EdgeOrder::ByDimension(_) => "by_dimension".into(),
            },
            baseline_ms: ms(t_base),
            new_seq_ms: ms(t_seq),
            new_par_ms: ms(t_par),
            p50_ms,
            p99_ms,
            speedup_seq: t_base.as_secs_f64() / t_seq.as_secs_f64().max(1e-12),
            speedup_par: t_base.as_secs_f64() / t_par.as_secs_f64().max(1e-12),
            closure_seq_ms,
            closure_par_ms,
            closure_speedup: closure_seq_ms / closure_par_ms.max(1e-9),
            pool_dnfs: res_new.stats.pool_dnfs,
            pool_terms: res_new.stats.pool_terms,
            implies_hit_rate: res_new.stats.implies_hit_rate(),
            implies_evictions: res_new.stats.implies_evictions,
            phases: phases_json(&case_trace, "      "),
        });
        suite_trace.merge(case_trace);
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"artifact\": \"BENCH_minimize\",\n");
    out.push_str("  \"description\": \"minimize_generic (interned + bitset-prefiltered + parallel) vs the sequential structural baseline on identical inputs; minimal sets verified equal before timing\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"n_activities\": {},\n", r.n_activities));
        out.push_str(&format!("      \"constraints_in\": {},\n", r.constraints_in));
        out.push_str(&format!(
            "      \"constraints_kept\": {},\n",
            r.constraints_kept
        ));
        out.push_str(&format!("      \"removed\": {},\n", r.removed));
        out.push_str(&format!(
            "      \"redundancy\": {},\n",
            json_f(r.redundancy)
        ));
        out.push_str(&format!("      \"mode\": \"{}\",\n", r.mode));
        out.push_str(&format!("      \"order\": \"{}\",\n", r.order));
        out.push_str(&format!(
            "      \"baseline_ms\": {},\n",
            json_f(r.baseline_ms)
        ));
        out.push_str(&format!("      \"new_seq_ms\": {},\n", json_f(r.new_seq_ms)));
        out.push_str(&format!("      \"new_par_ms\": {},\n", json_f(r.new_par_ms)));
        out.push_str(&format!("      \"p50_ms\": {},\n", json_f(r.p50_ms)));
        out.push_str(&format!("      \"p99_ms\": {},\n", json_f(r.p99_ms)));
        out.push_str(&format!(
            "      \"speedup_seq\": {},\n",
            json_f(r.speedup_seq)
        ));
        out.push_str(&format!(
            "      \"speedup_par\": {},\n",
            json_f(r.speedup_par)
        ));
        out.push_str(&format!(
            "      \"closure_seq_ms\": {},\n",
            json_f(r.closure_seq_ms)
        ));
        out.push_str(&format!(
            "      \"closure_par_ms\": {},\n",
            json_f(r.closure_par_ms)
        ));
        out.push_str(&format!(
            "      \"closure_speedup\": {},\n",
            json_f(r.closure_speedup)
        ));
        out.push_str(&format!("      \"pool_dnfs\": {},\n", r.pool_dnfs));
        out.push_str(&format!("      \"pool_terms\": {},\n", r.pool_terms));
        out.push_str(&format!(
            "      \"implies_hit_rate\": {},\n",
            json_f(r.implies_hit_rate)
        ));
        out.push_str(&format!(
            "      \"implies_evictions\": {},\n",
            r.implies_evictions
        ));
        out.push_str(&format!("      \"phases\": {}\n", r.phases));
        out.push_str(if i + 1 == reports.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    (out, suite_trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_prepare_deterministically() {
        for case in minimize_cases(true) {
            let (a, _) = case.prepare();
            let (b, _) = case.prepare();
            assert_eq!(a, b, "case {} not deterministic", case.name);
            assert!(a.constraint_count() > 0);
        }
    }

    #[test]
    fn small_only_drops_the_scaling_case() {
        let small = minimize_cases(true);
        let full = minimize_cases(false);
        assert_eq!(full.len(), small.len() + 1);
        assert!(full.last().unwrap().name.contains("2003"));
    }
}
