//! WSCL 1.0-flavored XML serialization of conversations.

use crate::conversation::{Conversation, Interaction, InteractionKind};
use dscweaver_xml::{parse, Element, ParseError};

/// Emits the conversation as WSCL-style XML.
pub fn to_xml(conv: &Conversation) -> String {
    let mut interactions = Element::new("ConversationInteractions");
    for i in &conv.interactions {
        let kind = match i.kind {
            InteractionKind::Receive => "Receive",
            InteractionKind::Send => "Send",
        };
        let doc_tag = match i.kind {
            InteractionKind::Receive => "InboundXMLDocument",
            InteractionKind::Send => "OutboundXMLDocument",
        };
        interactions = interactions.child(
            Element::new("Interaction")
                .attr("interactionType", kind)
                .attr("id", i.id.clone())
                .child(Element::new(doc_tag).attr("id", i.document.clone())),
        );
    }
    let mut transitions = Element::new("ConversationTransitions");
    for (f, t) in &conv.transitions {
        transitions = transitions.child(
            Element::new("Transition")
                .child(Element::new("SourceInteraction").attr("href", f.clone()))
                .child(Element::new("DestinationInteraction").attr("href", t.clone())),
        );
    }
    let root = Element::new("Conversation")
        .attr("name", conv.name.clone())
        .attr("xmlns", "http://www.w3.org/2002/02/wscl10")
        .child(interactions)
        .child(transitions);
    dscweaver_xml::to_string_pretty(&root)
}

/// Errors from WSCL XML loading.
#[derive(Debug)]
pub enum WsclXmlError {
    /// The XML itself failed to parse.
    Xml(ParseError),
    /// Structurally valid XML but not a WSCL conversation.
    Shape(String),
}

impl std::fmt::Display for WsclXmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WsclXmlError::Xml(e) => write!(f, "{e}"),
            WsclXmlError::Shape(m) => write!(f, "malformed WSCL document: {m}"),
        }
    }
}

impl std::error::Error for WsclXmlError {}

/// Parses a WSCL-style conversation document.
pub fn from_xml(src: &str) -> Result<Conversation, WsclXmlError> {
    let root = parse(src).map_err(WsclXmlError::Xml)?;
    if root.name != "Conversation" {
        return Err(WsclXmlError::Shape(format!(
            "expected <Conversation>, got <{}>",
            root.name
        )));
    }
    let name = root
        .require_attr("name")
        .map_err(WsclXmlError::Shape)?
        .to_string();
    let mut conv = Conversation::new(name);
    if let Some(ints) = root.first_named("ConversationInteractions") {
        for i in ints.elements_named("Interaction") {
            let id = i.require_attr("id").map_err(WsclXmlError::Shape)?.to_string();
            let kind = match i.require_attr("interactionType").map_err(WsclXmlError::Shape)? {
                "Receive" | "ReceiveSend" => InteractionKind::Receive,
                "Send" | "SendReceive" => InteractionKind::Send,
                other => {
                    return Err(WsclXmlError::Shape(format!(
                        "unsupported interactionType '{other}'"
                    )))
                }
            };
            let document = i
                .elements()
                .find(|e| e.name.ends_with("XMLDocument"))
                .and_then(|e| e.get_attr("id"))
                .unwrap_or("")
                .to_string();
            conv.interactions.push(Interaction { id, kind, document });
        }
    }
    if let Some(trans) = root.first_named("ConversationTransitions") {
        for t in trans.elements_named("Transition") {
            let src = t
                .first_named("SourceInteraction")
                .and_then(|e| e.get_attr("href"))
                .ok_or_else(|| WsclXmlError::Shape("transition without source".into()))?;
            let dst = t
                .first_named("DestinationInteraction")
                .and_then(|e| e.get_attr("href"))
                .ok_or_else(|| WsclXmlError::Shape("transition without destination".into()))?;
            conv.transitions.push((src.to_string(), dst.to_string()));
        }
    }
    Ok(conv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Conversation {
        Conversation::new("Purchase")
            .receive("port1", "PurchaseOrder")
            .receive("port2", "ShippingInvoice")
            .send("callback", "OrderInvoice")
            .transition("port1", "port2")
            .transition("port2", "callback")
    }

    #[test]
    fn round_trip() {
        let conv = sample();
        let xml = to_xml(&conv);
        assert!(xml.contains("interactionType=\"Receive\""));
        assert!(xml.contains("OutboundXMLDocument"));
        let back = from_xml(&xml).unwrap();
        assert_eq!(back, conv);
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(matches!(
            from_xml("<NotAConversation/>"),
            Err(WsclXmlError::Shape(_))
        ));
    }

    #[test]
    fn rejects_missing_name() {
        assert!(from_xml("<Conversation/>").is_err());
    }

    #[test]
    fn rejects_bad_interaction_type() {
        let xml = r#"<Conversation name="X"><ConversationInteractions>
            <Interaction interactionType="Teleport" id="a"/>
        </ConversationInteractions></Conversation>"#;
        assert!(from_xml(xml).is_err());
    }

    #[test]
    fn parses_handwritten_wscl() {
        let xml = r#"<?xml version="1.0"?>
<Conversation name="Credit" xmlns="http://www.w3.org/2002/02/wscl10">
  <ConversationInteractions>
    <Interaction interactionType="Receive" id="auth">
      <InboundXMLDocument id="AuthRequest"/>
    </Interaction>
    <Interaction interactionType="Send" id="result">
      <OutboundXMLDocument id="AuthResult"/>
    </Interaction>
  </ConversationInteractions>
  <ConversationTransitions>
    <Transition>
      <SourceInteraction href="auth"/>
      <DestinationInteraction href="result"/>
    </Transition>
  </ConversationTransitions>
</Conversation>"#;
        let conv = from_xml(xml).unwrap();
        assert_eq!(conv.name, "Credit");
        assert_eq!(conv.interactions.len(), 2);
        assert_eq!(conv.transitions, vec![("auth".to_string(), "result".to_string())]);
        assert!(conv.validate().is_empty());
    }
}
