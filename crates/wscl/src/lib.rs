//! # dscweaver-wscl
//!
//! WSCL-style service conversation documents (§3.2) — the source of
//! *service dependencies*. A conversation names a service's interactions
//! (ports and callbacks) and the allowed sequencing between them; bound to
//! the invoking/receiving activities of a process, it yields the `→_s`
//! dependencies of Table 1, including port-ordering requirements like the
//! state-aware Purchase service's "sequential invocation on its two
//! ports".

#![warn(missing_docs)]

pub mod conversation;
pub mod xml;

pub use conversation::{
    derive_service_dependencies, Conversation, Interaction, InteractionKind, ServiceBinding,
    WsclError,
};
pub use xml::{from_xml, to_xml, WsclXmlError};
