//! WSCL-style conversation documents and the derivation of service
//! dependencies from them.
//!
//! §3.2: "Service dependency information is likely to be found in standard
//! description documents like WSCL that specifies the XML documents being
//! exchanged, and the allowed sequencing of these document exchanges."
//! A [`Conversation`] names the service's *interactions* (from the
//! service's perspective: `Receive` = an input port the process invokes,
//! `Send` = an asynchronous callback the process receives) and the allowed
//! *transitions* between them. Together with a [`ServiceBinding`] — which
//! process activity talks to which interaction — this yields exactly the
//! `→_s` rows of the paper's Table 1.

use dscweaver_core::Dependency;
use std::collections::BTreeMap;

/// Direction of an interaction, from the service's perspective.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InteractionKind {
    /// The service receives a document — an input port; the process side
    /// is an `invoke`.
    Receive,
    /// The service sends a document — an asynchronous callback; the
    /// process side is a `receive`.
    Send,
}

/// One interaction of a conversation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Interaction {
    /// Unique id within the conversation.
    pub id: String,
    /// Direction.
    pub kind: InteractionKind,
    /// The XML document type exchanged (informational).
    pub document: String,
}

/// A service conversation: interactions plus allowed sequencing.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Conversation {
    /// The service name.
    pub name: String,
    /// Interactions in declaration order (Receive interactions are
    /// numbered as ports 1..n in this order).
    pub interactions: Vec<Interaction>,
    /// Allowed orderings: `(source interaction id, destination id)`.
    pub transitions: Vec<(String, String)>,
}

/// Problems in a conversation document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WsclError {
    /// A transition endpoint names an unknown interaction.
    UnknownInteraction(String),
    /// Two interactions share an id.
    DuplicateInteraction(String),
    /// A binding references an unknown interaction.
    UnboundInteraction(String),
}

impl std::fmt::Display for WsclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WsclError::UnknownInteraction(i) => {
                write!(f, "transition references unknown interaction '{i}'")
            }
            WsclError::DuplicateInteraction(i) => write!(f, "duplicate interaction id '{i}'"),
            WsclError::UnboundInteraction(i) => {
                write!(f, "binding references unknown interaction '{i}'")
            }
        }
    }
}

impl std::error::Error for WsclError {}

impl Conversation {
    /// A new empty conversation.
    pub fn new(name: impl Into<String>) -> Self {
        Conversation {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Builder: adds a Receive interaction (input port).
    pub fn receive(mut self, id: &str, document: &str) -> Self {
        self.interactions.push(Interaction {
            id: id.into(),
            kind: InteractionKind::Receive,
            document: document.into(),
        });
        self
    }

    /// Builder: adds a Send interaction (callback).
    pub fn send(mut self, id: &str, document: &str) -> Self {
        self.interactions.push(Interaction {
            id: id.into(),
            kind: InteractionKind::Send,
            document: document.into(),
        });
        self
    }

    /// Builder: adds a transition.
    pub fn transition(mut self, from: &str, to: &str) -> Self {
        self.transitions.push((from.into(), to.into()));
        self
    }

    /// Looks up an interaction.
    pub fn interaction(&self, id: &str) -> Option<&Interaction> {
        self.interactions.iter().find(|i| i.id == id)
    }

    /// Structural validation.
    pub fn validate(&self) -> Vec<WsclError> {
        let mut errors = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for i in &self.interactions {
            if !seen.insert(i.id.as_str()) {
                errors.push(WsclError::DuplicateInteraction(i.id.clone()));
            }
        }
        for (f, t) in &self.transitions {
            for e in [f, t] {
                if self.interaction(e).is_none() {
                    errors.push(WsclError::UnknownInteraction(e.clone()));
                }
            }
        }
        errors
    }

    /// Receive interactions in port order.
    pub fn ports(&self) -> Vec<&Interaction> {
        self.interactions
            .iter()
            .filter(|i| i.kind == InteractionKind::Receive)
            .collect()
    }

    /// The §3.3 node name of an interaction: a Receive interaction gets
    /// the bare service name (single port) or `service_k` (multi-port,
    /// 1-based port order); every Send interaction maps to the single
    /// dummy callback port `service_d`.
    pub fn node_of(&self, id: &str) -> Option<String> {
        let interaction = self.interaction(id)?;
        match interaction.kind {
            InteractionKind::Send => Some(format!("{}_d", self.name)),
            InteractionKind::Receive => {
                let ports = self.ports();
                let pos = ports.iter().position(|i| i.id == id)? + 1;
                if ports.len() <= 1 {
                    Some(self.name.clone())
                } else {
                    Some(format!("{}_{}", self.name, pos))
                }
            }
        }
    }
}

/// Binds conversation interactions to process activities.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ServiceBinding {
    /// interaction id → the process activity that invokes it (Receive
    /// interactions).
    pub invokers: BTreeMap<String, String>,
    /// interaction id → the process activity that listens for it (Send
    /// interactions).
    pub receivers: BTreeMap<String, String>,
}

impl ServiceBinding {
    /// Empty binding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: binds an invoking activity to a Receive interaction.
    pub fn invoke(mut self, interaction: &str, activity: &str) -> Self {
        self.invokers.insert(interaction.into(), activity.into());
        self
    }

    /// Builder: binds a receiving activity to a Send interaction.
    pub fn receive(mut self, interaction: &str, activity: &str) -> Self {
        self.receivers.insert(interaction.into(), activity.into());
        self
    }
}

/// Derives the service dependencies (`→_s`) and the external service nodes
/// a conversation contributes, given the process binding.
///
/// * Each bound invoker: `inv →_s node(port)`.
/// * Each transition: `node(src) →_s node(dst)` (deduplicated — several
///   Send interactions share the dummy node).
/// * Each bound receiver: `node_d →_s rec`.
pub fn derive_service_dependencies(
    conv: &Conversation,
    binding: &ServiceBinding,
) -> Result<(Vec<Dependency>, Vec<String>), WsclError> {
    let errors = conv.validate();
    if let Some(e) = errors.into_iter().next() {
        return Err(e);
    }
    for id in binding.invokers.keys().chain(binding.receivers.keys()) {
        if conv.interaction(id).is_none() {
            return Err(WsclError::UnboundInteraction(id.clone()));
        }
    }

    let mut deps = Vec::new();
    let mut nodes = Vec::new();
    let mut seen_dep = std::collections::HashSet::new();
    let mut push = |deps: &mut Vec<Dependency>, d: Dependency| {
        if seen_dep.insert(d.to_string()) {
            deps.push(d);
        }
    };

    // Nodes, in interaction order (dummy appears once).
    let mut seen_node = std::collections::HashSet::new();
    for i in &conv.interactions {
        let n = conv.node_of(&i.id).expect("validated id");
        if seen_node.insert(n.clone()) {
            nodes.push(n);
        }
    }

    for (id, inv) in &binding.invokers {
        let node = conv.node_of(id).expect("validated id");
        push(&mut deps, Dependency::service(inv, &node));
    }
    for (f, t) in &conv.transitions {
        let fnode = conv.node_of(f).expect("validated id");
        let tnode = conv.node_of(t).expect("validated id");
        if fnode != tnode {
            push(&mut deps, Dependency::service(&fnode, &tnode));
        }
    }
    for (id, rec) in &binding.receivers {
        let node = conv.node_of(id).expect("validated id");
        push(&mut deps, Dependency::service(&node, rec));
    }
    Ok((deps, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's state-aware Purchase service: sequential invocation on
    /// its two ports, callback with the final invoice.
    fn purchase() -> Conversation {
        Conversation::new("Purchase")
            .receive("port1", "PurchaseOrder")
            .receive("port2", "ShippingInvoice")
            .send("callback", "OrderInvoice")
            .transition("port1", "port2")
            .transition("port1", "callback")
            .transition("port2", "callback")
    }

    #[test]
    fn purchase_conversation_derives_table1_rows() {
        let binding = ServiceBinding::new()
            .invoke("port1", "invPurchase_po")
            .invoke("port2", "invPurchase_si")
            .receive("callback", "recPurchase_oi");
        let (deps, nodes) = derive_service_dependencies(&purchase(), &binding).unwrap();
        let strs: Vec<String> = deps.iter().map(|d| d.to_string()).collect();
        for expected in [
            "invPurchase_po ->s Purchase_1",
            "invPurchase_si ->s Purchase_2",
            "Purchase_1 ->s Purchase_2",
            "Purchase_1 ->s Purchase_d",
            "Purchase_2 ->s Purchase_d",
            "Purchase_d ->s recPurchase_oi",
        ] {
            assert!(strs.contains(&expected.to_string()), "missing {expected} in {strs:?}");
        }
        assert_eq!(deps.len(), 6);
        assert_eq!(nodes, vec!["Purchase_1", "Purchase_2", "Purchase_d"]);
    }

    #[test]
    fn single_port_naming() {
        let conv = Conversation::new("Credit")
            .receive("auth", "AuthRequest")
            .send("result", "AuthResult")
            .transition("auth", "result");
        let binding = ServiceBinding::new()
            .invoke("auth", "invCredit_po")
            .receive("result", "recCredit_au");
        let (deps, nodes) = derive_service_dependencies(&conv, &binding).unwrap();
        let strs: Vec<String> = deps.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            strs,
            vec![
                "invCredit_po ->s Credit",
                "Credit ->s Credit_d",
                "Credit_d ->s recCredit_au"
            ]
        );
        assert_eq!(nodes, vec!["Credit", "Credit_d"]);
    }

    #[test]
    fn two_sends_share_one_dummy() {
        let conv = Conversation::new("Ship")
            .receive("port", "PurchaseOrder")
            .send("si", "ShippingInvoice")
            .send("ss", "ShippingSchedule")
            .transition("port", "si")
            .transition("port", "ss");
        let binding = ServiceBinding::new()
            .invoke("port", "invShip_po")
            .receive("si", "recShip_si")
            .receive("ss", "recShip_ss");
        let (deps, nodes) = derive_service_dependencies(&conv, &binding).unwrap();
        let strs: Vec<String> = deps.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            strs,
            vec![
                "invShip_po ->s Ship",
                "Ship ->s Ship_d",
                "Ship_d ->s recShip_si",
                "Ship_d ->s recShip_ss"
            ],
            "the Ship→Ship_d transition is deduplicated"
        );
        assert_eq!(nodes, vec!["Ship", "Ship_d"]);
    }

    #[test]
    fn no_transitions_no_ordering() {
        let conv = Conversation::new("Production")
            .receive("port1", "PurchaseOrder")
            .receive("port2", "ShippingSchedule");
        let binding = ServiceBinding::new()
            .invoke("port1", "invProduction_po")
            .invoke("port2", "invProduction_ss");
        let (deps, _) = derive_service_dependencies(&conv, &binding).unwrap();
        assert_eq!(deps.len(), 2, "only the invocation edges: {deps:?}");
    }

    #[test]
    fn validation_errors() {
        let bad = Conversation::new("X")
            .receive("a", "D")
            .receive("a", "D")
            .transition("a", "ghost");
        let errs = bad.validate();
        assert!(errs.iter().any(|e| matches!(e, WsclError::DuplicateInteraction(_))));
        assert!(errs.iter().any(|e| matches!(e, WsclError::UnknownInteraction(_))));
        let binding = ServiceBinding::new().invoke("nope", "x");
        let conv = Conversation::new("Y").receive("a", "D");
        assert!(matches!(
            derive_service_dependencies(&conv, &binding),
            Err(WsclError::UnboundInteraction(_))
        ));
    }
}
