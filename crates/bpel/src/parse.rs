//! Parsing the generated BPEL subset back into a constraint set — the
//! round-trip that proves the emitted code carries exactly the optimized
//! synchronization scheme.

use dscweaver_dscl::{ActivityState, Condition, ConstraintSet, Origin, Relation, StateRef};
use dscweaver_xml::{parse, ParseError};
use std::collections::HashMap;

/// Errors from BPEL loading.
#[derive(Debug)]
pub enum BpelError {
    /// XML-level failure.
    Xml(ParseError),
    /// Valid XML that is not a flow-style BPEL process.
    Shape(String),
}

impl std::fmt::Display for BpelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BpelError::Xml(e) => write!(f, "{e}"),
            BpelError::Shape(m) => write!(f, "malformed BPEL: {m}"),
        }
    }
}

impl std::error::Error for BpelError {}

/// Parses a `<process><flow><links>...` document produced by
/// [`crate::emit::emit`], reconstructing the constraint set (activities,
/// relations with conditions and state granularity; origins are lost in
/// BPEL and come back as [`Origin::Other`]).
pub fn parse_bpel(src: &str) -> Result<ConstraintSet, BpelError> {
    let root = parse(src).map_err(BpelError::Xml)?;
    if root.name != "process" {
        return Err(BpelError::Shape(format!(
            "expected <process>, got <{}>",
            root.name
        )));
    }
    let name = root.get_attr("name").unwrap_or("process").to_string();
    let flow = root
        .first_named("flow")
        .ok_or_else(|| BpelError::Shape("missing <flow>".into()))?;

    let mut cs = ConstraintSet::new(name);
    // Per link: (source activity+state+cond, target activity+state).
    struct LinkEnds {
        source: Option<(String, ActivityState, Option<Condition>)>,
        target: Option<(String, ActivityState)>,
    }
    let mut links: HashMap<String, LinkEnds> = HashMap::new();
    if let Some(decl) = flow.first_named("links") {
        for l in decl.elements_named("link") {
            let n = l
                .require_attr("name")
                .map_err(BpelError::Shape)?
                .to_string();
            links.insert(
                n,
                LinkEnds {
                    source: None,
                    target: None,
                },
            );
        }
    }

    for act in flow.elements() {
        if act.name == "links" {
            continue;
        }
        let aname = act
            .require_attr("name")
            .map_err(BpelError::Shape)?
            .to_string();
        cs.add_activity(aname.clone());
        for st in act.elements() {
            match st.name.as_str() {
                "source" => {
                    let link = st.require_attr("linkName").map_err(BpelError::Shape)?;
                    let state = st
                        .get_attr("dsc:sourceState")
                        .and_then(|s| s.chars().next())
                        .and_then(ActivityState::from_letter)
                        .unwrap_or(ActivityState::Finish);
                    let cond = st
                        .get_attr("transitionCondition")
                        .map(parse_condition)
                        .transpose()?;
                    let ends = links.get_mut(link).ok_or_else(|| {
                        BpelError::Shape(format!("source references undeclared link '{link}'"))
                    })?;
                    if ends.source.is_some() {
                        return Err(BpelError::Shape(format!("link '{link}' has two sources")));
                    }
                    ends.source = Some((aname.clone(), state, cond));
                }
                "target" => {
                    let link = st.require_attr("linkName").map_err(BpelError::Shape)?;
                    let state = st
                        .get_attr("dsc:targetState")
                        .and_then(|s| s.chars().next())
                        .and_then(ActivityState::from_letter)
                        .unwrap_or(ActivityState::Start);
                    let ends = links.get_mut(link).ok_or_else(|| {
                        BpelError::Shape(format!("target references undeclared link '{link}'"))
                    })?;
                    if ends.target.is_some() {
                        return Err(BpelError::Shape(format!("link '{link}' has two targets")));
                    }
                    ends.target = Some((aname.clone(), state));
                }
                _ => {}
            }
        }
    }

    // Links in name order for determinism (l0, l1, ... sort by numeric
    // suffix when possible).
    let mut named: Vec<(String, LinkEnds)> = links.into_iter().collect();
    named.sort_by_key(|(n, _)| {
        n.strip_prefix('l')
            .and_then(|s| s.parse::<u64>().ok())
            .map_or((1, n.clone()), |k| (0, format!("{k:020}")))
    });
    for (n, ends) in named {
        let (Some((sa, ss, cond)), Some((ta, ts))) = (ends.source, ends.target) else {
            return Err(BpelError::Shape(format!("link '{n}' is missing an endpoint")));
        };
        if let Some(c) = &cond {
            // Guard domains are not expressed in BPEL; register the value
            // so validation passes on round-trips.
            let dom = cs.domains.entry(c.on.clone()).or_default();
            if !dom.contains(&c.value) {
                dom.push(c.value.clone());
            }
        }
        cs.push(Relation::HappenBefore {
            from: StateRef {
                activity: sa,
                state: ss,
            },
            to: StateRef {
                activity: ta,
                state: ts,
            },
            cond,
            origin: Origin::Other,
        });
    }
    Ok(cs)
}

/// Parses `bpws:getVariableData('guard') = 'value'`.
fn parse_condition(expr: &str) -> Result<Condition, BpelError> {
    let inner = expr
        .strip_prefix("bpws:getVariableData('")
        .and_then(|s| s.split_once("')"))
        .ok_or_else(|| BpelError::Shape(format!("unsupported transitionCondition '{expr}'")))?;
    let guard = inner.0.to_string();
    let value = inner
        .1
        .trim()
        .strip_prefix("= '")
        .and_then(|s| s.strip_suffix('\''))
        .ok_or_else(|| BpelError::Shape(format!("unsupported transitionCondition '{expr}'")))?;
    Ok(Condition::new(guard, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::emit_string;
    use dscweaver_model::parse_process;

    #[test]
    fn round_trip_preserves_relations() {
        let p = parse_process(
            "process Demo { var po, au; service Credit { ports 1 async }
              sequence {
                receive recClient_po from Client writes po;
                invoke invCredit_po on Credit port 1 reads po;
                switch if_au reads au { case T { assign ok writes au; } case F { assign bad writes au; } }
              } }",
        )
        .unwrap();
        let mut cs = ConstraintSet::new("Demo");
        for a in ["recClient_po", "invCredit_po", "if_au", "ok", "bad"] {
            cs.add_activity(a);
        }
        cs.add_domain("if_au", vec!["T".into()]);
        cs.push(Relation::before(
            StateRef::finish("recClient_po"),
            StateRef::start("invCredit_po"),
            Origin::Data,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("if_au"),
            StateRef::start("ok"),
            Condition::new("if_au", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before(
            StateRef::start("recClient_po"),
            StateRef::finish("bad"),
            Origin::Cooperation,
        ));

        let xml = emit_string(&p, &cs);
        let back = parse_bpel(&xml).unwrap();
        assert_eq!(back.activities, cs.activities);
        assert_eq!(back.constraint_count(), cs.constraint_count());
        // Relations match modulo origin (BPEL does not carry provenance).
        let strip = |c: &ConstraintSet| -> Vec<String> {
            let mut v: Vec<String> = c.happen_befores().map(|r| r.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(strip(&back), strip(&cs));
        assert!(back.validate().is_empty(), "{:?}", back.validate());
    }

    #[test]
    fn condition_expression_parses() {
        let c = parse_condition("bpws:getVariableData('if_au') = 'T'").unwrap();
        assert_eq!(c, Condition::new("if_au", "T"));
        assert!(parse_condition("true()").is_err());
    }

    #[test]
    fn dangling_link_rejected() {
        let xml = r#"<process name="X"><flow><links/><empty name="a"><source linkName="ghost"/></empty></flow></process>"#;
        assert!(matches!(parse_bpel(xml), Err(BpelError::Shape(_))));
    }

    #[test]
    fn link_with_two_sources_rejected() {
        let xml = r#"<process name="X"><flow><links><link name="l0"/></links>
            <empty name="a"><source linkName="l0"/></empty>
            <empty name="b"><source linkName="l0"/></empty>
            <empty name="c"><target linkName="l0"/></empty>
        </flow></process>"#;
        assert!(matches!(parse_bpel(xml), Err(BpelError::Shape(_))));
    }

    #[test]
    fn missing_endpoint_rejected() {
        let xml = r#"<process name="X"><flow><links><link name="l0"/></links>
            <empty name="a"><source linkName="l0"/></empty>
        </flow></process>"#;
        assert!(matches!(parse_bpel(xml), Err(BpelError::Shape(_))));
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(parse_bpel("<flow/>"), Err(BpelError::Shape(_))));
    }
}
