//! Series-parallel structure recovery: turning a minimal constraint DAG
//! back into nested `sequence`/`flow` constructs where the shape allows,
//! with the irreducible remainder expressed as explicit links.
//!
//! This closes the loop between the two paradigms the paper relates (§5:
//! "our work can be regarded as an intermediate representation for both
//! paradigms"): dependencies → optimization → and, when the result happens
//! to be series-parallel, ordinary structured BPEL again.
//!
//! Algorithm: iterative reduction over a block graph —
//!
//! * **series**: `u → v` with `out(u) = {v}` and `in(v) = {u}` merges into
//!   a sequence block;
//! * **parallel**: two blocks with identical predecessor *and* successor
//!   sets merge into a flow block.
//!
//! A fully series-parallel DAG reduces to a single block; anything left
//! over (N-shapes, cross-branch synchronization like the Purchasing
//! process's `recShip_si → invPurchase_si`) is emitted as `flow` links.
//! Conditional constraints never participate in reduction — they remain
//! links with their transition conditions.

use dscweaver_dscl::{ActivityState, ConstraintSet, Relation};
use dscweaver_graph::{DiGraph, NodeId};
use dscweaver_model::{Activity, Construct, Link, Process};
use std::collections::BTreeSet;

/// The outcome of recovery.
#[derive(Clone, Debug)]
pub struct Recovered {
    /// The structured part (a single construct covering every activity).
    pub root: Construct,
    /// Constraints that did not fit the series-parallel skeleton, as
    /// links (to be attached to the enclosing flow).
    pub links: Vec<Link>,
    /// True if the whole constraint set reduced to pure structure (no
    /// links needed).
    pub fully_structured: bool,
}

#[derive(Clone, Debug)]
enum Block {
    Leaf(String),
    Seq(Vec<Block>),
    Par(Vec<Block>),
}

impl Block {
    fn into_construct(self, lookup: &dyn Fn(&str) -> Activity) -> Construct {
        match self {
            Block::Leaf(name) => Construct::Act(lookup(&name)),
            Block::Seq(items) => Construct::Sequence(
                items.into_iter().map(|b| b.into_construct(lookup)).collect(),
            ),
            Block::Par(items) => Construct::flow(
                items.into_iter().map(|b| b.into_construct(lookup)).collect(),
            ),
        }
    }

    fn first_activity(&self) -> &str {
        match self {
            Block::Leaf(n) => n,
            Block::Seq(v) | Block::Par(v) => v[0].first_activity(),
        }
    }
}

/// Recovers structure from a (desugared, service-free) constraint set.
/// Activity kinds are looked up in `process` when available.
pub fn recover_structure(cs: &ConstraintSet, process: Option<&Process>) -> Recovered {
    // Block graph: start with one leaf per activity; unconditional
    // F→S constraints are candidate structure edges, everything else is a
    // link from the outset.
    let mut g: DiGraph<Block, ()> = DiGraph::new();
    let mut node_of: std::collections::HashMap<&str, NodeId> = std::collections::HashMap::new();
    for a in &cs.activities {
        node_of.insert(a, g.add_node(Block::Leaf(a.clone())));
    }
    let mut links: Vec<Link> = Vec::new();
    let mut link_n = 0;
    for r in cs.happen_befores() {
        let Relation::HappenBefore { from, to, cond, .. } = r else {
            unreachable!("filtered")
        };
        let structural = cond.is_none()
            && from.state == ActivityState::Finish
            && to.state == ActivityState::Start;
        if structural {
            let (u, v) = (node_of[from.activity.as_str()], node_of[to.activity.as_str()]);
            if !g.has_edge(u, v) {
                g.add_edge(u, v, ());
            }
        } else {
            links.push(Link {
                name: format!("x{link_n}"),
                from: from.activity.clone(),
                to: to.activity.clone(),
                condition: cond.as_ref().map(|c| c.value.clone()),
            });
            link_n += 1;
        }
    }

    // Reduce to fixpoint.
    loop {
        let mut changed = false;

        // Series.
        let nodes: Vec<NodeId> = g.node_ids().collect();
        for &u in &nodes {
            if !g.contains_node(u) {
                continue;
            }
            let succs: Vec<NodeId> = {
                let mut s: Vec<NodeId> = g.successors(u).collect();
                s.sort();
                s.dedup();
                s
            };
            if succs.len() != 1 {
                continue;
            }
            let v = succs[0];
            if v == u {
                continue;
            }
            let preds_v: BTreeSet<NodeId> = g.predecessors(v).collect();
            if preds_v.len() != 1 {
                continue;
            }
            // Merge u;v.
            let bu = g.weight(u).clone();
            let bv = g.weight(v).clone();
            let merged = match (bu, bv) {
                (Block::Seq(mut a), Block::Seq(b)) => {
                    a.extend(b);
                    Block::Seq(a)
                }
                (Block::Seq(mut a), b) => {
                    a.push(b);
                    Block::Seq(a)
                }
                (a, Block::Seq(mut b)) => {
                    b.insert(0, a);
                    Block::Seq(b)
                }
                (a, b) => Block::Seq(vec![a, b]),
            };
            let preds_u: Vec<NodeId> = {
                let mut p: Vec<NodeId> = g.predecessors(u).collect();
                p.sort();
                p.dedup();
                p
            };
            let succs_v: Vec<NodeId> = {
                let mut s: Vec<NodeId> = g.successors(v).collect();
                s.sort();
                s.dedup();
                s
            };
            let m = g.add_node(merged);
            for p in preds_u {
                g.add_edge(p, m, ());
            }
            for s in succs_v {
                g.add_edge(m, s, ());
            }
            g.remove_node(u);
            g.remove_node(v);
            changed = true;
        }

        // Parallel: group live nodes by (preds, succs).
        let mut groups: std::collections::HashMap<(Vec<NodeId>, Vec<NodeId>), Vec<NodeId>> =
            std::collections::HashMap::new();
        for n in g.node_ids() {
            let mut p: Vec<NodeId> = g.predecessors(n).collect();
            p.sort();
            p.dedup();
            let mut s: Vec<NodeId> = g.successors(n).collect();
            s.sort();
            s.dedup();
            groups.entry((p, s)).or_default().push(n);
        }
        for ((preds, succs), members) in groups {
            if members.len() < 2 {
                continue;
            }
            if !members.iter().all(|&m| g.contains_node(m)) {
                continue;
            }
            let mut branches = Vec::new();
            for &m in &members {
                match g.weight(m).clone() {
                    Block::Par(inner) => branches.extend(inner),
                    b => branches.push(b),
                }
            }
            let merged = g.add_node(Block::Par(branches));
            for p in &preds {
                g.add_edge(*p, merged, ());
            }
            for s in &succs {
                g.add_edge(merged, *s, ());
            }
            for m in members {
                g.remove_node(m);
            }
            changed = true;
        }

        if !changed {
            break;
        }
    }

    let lookup: Box<dyn Fn(&str) -> Activity> = match process {
        Some(p) => Box::new(move |name: &str| {
            p.activity(name)
                .cloned()
                .unwrap_or_else(|| Activity::assign(name))
        }),
        None => Box::new(|name: &str| Activity::assign(name)),
    };

    let remaining: Vec<NodeId> = g.node_ids().collect();
    if remaining.len() == 1 && g.edge_count() == 0 {
        let root = g.weight(remaining[0]).clone().into_construct(&*lookup);
        let fully = links.is_empty();
        return Recovered {
            root,
            links: links.clone(),
            fully_structured: fully,
        };
    }

    // Irreducible remainder: every remaining block becomes a flow branch,
    // every remaining edge a link between block representatives. Links
    // must connect concrete activities, so use each block's boundary
    // activities. For precision we emit the remaining edges against the blocks'
    // first activities of source-exit/target-entry; a simpler sound choice
    // is to fall back to per-activity links for remaining edges.
    let mut branches = Vec::new();
    for n in &remaining {
        branches.push(g.weight(*n).clone());
    }
    for e in g.edge_ids().collect::<Vec<_>>() {
        let (u, v) = g.endpoints(e);
        links.push(Link {
            name: format!("x{link_n}"),
            from: exit_activity(g.weight(u)).to_string(),
            to: entry_activity(g.weight(v)).to_string(),
            condition: None,
        });
        link_n += 1;
    }
    let root = Construct::Flow {
        branches: branches
            .into_iter()
            .map(|b| b.into_construct(&*lookup))
            .collect(),
        links: links.clone(),
    };
    Recovered {
        root,
        links,
        fully_structured: false,
    }
}

fn entry_activity(b: &Block) -> &str {
    match b {
        Block::Leaf(n) => n,
        Block::Seq(v) => entry_activity(&v[0]),
        Block::Par(v) => v[0].first_activity(),
    }
}

fn exit_activity(b: &Block) -> &str {
    match b {
        Block::Leaf(n) => n,
        Block::Seq(v) => exit_activity(v.last().expect("non-empty seq")),
        Block::Par(v) => v[0].first_activity(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::{Origin, StateRef};

    fn cs_with(acts: &[&str], edges: &[(&str, &str)]) -> ConstraintSet {
        let mut cs = ConstraintSet::new("s");
        for a in acts {
            cs.add_activity(*a);
        }
        for (f, t) in edges {
            cs.push(Relation::before(
                StateRef::finish(*f),
                StateRef::start(*t),
                Origin::Data,
            ));
        }
        cs
    }

    fn names(c: &Construct) -> Vec<String> {
        c.activities().iter().map(|a| a.name.clone()).collect()
    }

    #[test]
    fn chain_recovers_to_sequence() {
        let cs = cs_with(&["a", "b", "c"], &[("a", "b"), ("b", "c")]);
        let r = recover_structure(&cs, None);
        assert!(r.fully_structured);
        assert!(matches!(r.root, Construct::Sequence(ref v) if v.len() == 3));
        assert_eq!(names(&r.root), vec!["a", "b", "c"]);
    }

    #[test]
    fn diamond_recovers_to_seq_flow_seq() {
        let cs = cs_with(
            &["a", "b", "c", "d"],
            &[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        );
        let r = recover_structure(&cs, None);
        assert!(r.fully_structured, "{:?}", r.root);
        let Construct::Sequence(items) = &r.root else {
            panic!("expected sequence, got {:?}", r.root);
        };
        assert_eq!(items.len(), 3);
        assert!(matches!(items[1], Construct::Flow { ref branches, .. } if branches.len() == 2));
    }

    #[test]
    fn independent_activities_become_flow() {
        let cs = cs_with(&["a", "b", "c"], &[]);
        let r = recover_structure(&cs, None);
        assert!(matches!(r.root, Construct::Flow { ref branches, .. } if branches.len() == 3));
    }

    #[test]
    fn n_shape_falls_back_to_links() {
        // a→c, a→d, b→d: not series-parallel.
        let cs = cs_with(&["a", "b", "c", "d"], &[("a", "c"), ("a", "d"), ("b", "d")]);
        let r = recover_structure(&cs, None);
        assert!(!r.fully_structured);
        assert!(!r.links.is_empty());
        // Every activity still present exactly once.
        let mut all = names(&r.root);
        all.sort();
        assert_eq!(all, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn conditional_edges_stay_links() {
        let mut cs = cs_with(&["g", "x"], &[]);
        cs.add_domain("g", vec!["T".into(), "F".into()]);
        cs.push(Relation::before_if(
            StateRef::finish("g"),
            StateRef::start("x"),
            dscweaver_dscl::Condition::new("g", "T"),
            Origin::Control,
        ));
        let r = recover_structure(&cs, None);
        assert!(!r.fully_structured);
        assert_eq!(r.links.len(), 1);
        assert_eq!(r.links[0].condition.as_deref(), Some("T"));
    }

    #[test]
    fn state_granular_constraints_stay_links() {
        let mut cs = cs_with(&["a", "b"], &[]);
        cs.push(Relation::before(
            StateRef::start("a"),
            StateRef::finish("b"),
            Origin::Cooperation,
        ));
        let r = recover_structure(&cs, None);
        assert_eq!(r.links.len(), 1);
    }

    #[test]
    fn nested_series_parallel() {
        // a → (b→c ∥ d) → e
        let cs = cs_with(
            &["a", "b", "c", "d", "e"],
            &[("a", "b"), ("b", "c"), ("c", "e"), ("a", "d"), ("d", "e")],
        );
        let r = recover_structure(&cs, None);
        assert!(r.fully_structured, "{:?}", r.root);
        let mut all = names(&r.root);
        all.sort();
        assert_eq!(all, vec!["a", "b", "c", "d", "e"]);
    }
}
