//! Structured BPEL emission: instead of one flat `flow` with a link per
//! constraint, recover the series-parallel skeleton
//! ([`crate::structure`]) and emit nested `sequence`/`flow` elements, with
//! only the irreducible constraints left as links — the shape a human
//! BPEL author would have written.

use crate::structure::recover_structure;
use dscweaver_dscl::ConstraintSet;
use dscweaver_model::{ActivityKind, Construct, Process};
use dscweaver_xml::Element;

fn activity_element(process: Option<&Process>, name: &str) -> Element {
    let kind = process
        .and_then(|p| p.activity(name))
        .map(|a| a.kind.clone())
        .unwrap_or(ActivityKind::Empty);
    match kind {
        ActivityKind::Receive { from } => Element::new("receive")
            .attr("name", name)
            .attr("partnerLink", from),
        ActivityKind::Invoke { service, port } => Element::new("invoke")
            .attr("name", name)
            .attr("partnerLink", service)
            .attr("operation", format!("port{port}")),
        ActivityKind::Reply { to } => Element::new("reply")
            .attr("name", name)
            .attr("partnerLink", to),
        ActivityKind::Assign | ActivityKind::Branch => {
            Element::new("assign").attr("name", name)
        }
        ActivityKind::Empty => Element::new("empty").attr("name", name),
    }
}

fn construct_element(
    c: &Construct,
    process: Option<&Process>,
    sources: &std::collections::HashMap<&str, Vec<(String, Option<String>)>>,
    targets: &std::collections::HashMap<&str, Vec<String>>,
) -> Element {
    match c {
        Construct::Act(a) => {
            let mut el = activity_element(process, &a.name);
            for (link, cond) in sources.get(a.name.as_str()).into_iter().flatten() {
                let mut src = Element::new("source").attr("linkName", link.clone());
                if let Some(v) = cond {
                    src = src.attr("transitionCondition", v.clone());
                }
                el = el.child(src);
            }
            for link in targets.get(a.name.as_str()).into_iter().flatten() {
                el = el.child(Element::new("target").attr("linkName", link.clone()));
            }
            el
        }
        Construct::Sequence(items) => {
            let mut el = Element::new("sequence");
            for i in items {
                el = el.child(construct_element(i, process, sources, targets));
            }
            el
        }
        Construct::Flow { branches, .. } => {
            let mut el = Element::new("flow");
            for b in branches {
                el = el.child(construct_element(b, process, sources, targets));
            }
            el
        }
        // Structure recovery never produces Switch/While; render their
        // activities flat if they ever appear.
        Construct::Switch { branch, cases } => {
            let mut el = Element::new("flow");
            el = el.child(activity_element(process, &branch.name));
            for case in cases {
                el = el.child(construct_element(&case.body, process, sources, targets));
            }
            el
        }
        Construct::While { cond, body } => {
            let mut el = Element::new("while");
            el = el.child(activity_element(process, &cond.name));
            el = el.child(construct_element(body, process, sources, targets));
            el
        }
    }
}

/// Emits structured BPEL for a (desugared, service-free) constraint set:
/// nested `sequence`/`flow` where the minimal DAG is series-parallel,
/// residual constraints as `flow` links.
pub fn emit_structured(process: &Process, cs: &ConstraintSet) -> Element {
    let recovered = recover_structure(cs, Some(process));
    // Index the residual links by endpoint.
    let mut sources: std::collections::HashMap<&str, Vec<(String, Option<String>)>> =
        std::collections::HashMap::new();
    let mut targets: std::collections::HashMap<&str, Vec<String>> =
        std::collections::HashMap::new();
    let mut links_el = Element::new("links");
    for l in &recovered.links {
        links_el = links_el.child(Element::new("link").attr("name", l.name.clone()));
        sources.entry(l.from.as_str()).or_default().push((
            l.name.clone(),
            l.condition
                .as_ref()
                .map(|v| format!("bpws:getVariableData('{}') = '{}'", l.from, v)),
        ));
        targets
            .entry(l.to.as_str())
            .or_default()
            .push(l.name.clone());
    }

    let body = construct_element(&recovered.root, Some(process), &sources, &targets);
    let inner = if recovered.links.is_empty() {
        body
    } else if body.name == "flow" {
        // Attach links to the existing top-level flow.
        let mut flow = Element::new("flow").child(links_el);
        for c in body.children {
            flow.children.push(c);
        }
        flow
    } else {
        Element::new("flow").child(links_el).child(body)
    };

    Element::new("process")
        .attr("name", cs.name.clone())
        .attr("xmlns", crate::emit::BPEL_NS)
        .child(inner)
}

/// Renders the structured document as pretty XML.
pub fn emit_structured_string(process: &Process, cs: &ConstraintSet) -> String {
    format!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n{}",
        dscweaver_xml::to_string_pretty(&emit_structured(process, cs))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::{Origin, Relation, StateRef};
    use dscweaver_model::parse_process;

    fn chain_cs() -> ConstraintSet {
        let mut cs = ConstraintSet::new("Chain");
        for a in ["a", "b", "c"] {
            cs.add_activity(a);
        }
        cs.push(Relation::before(
            StateRef::finish("a"),
            StateRef::start("b"),
            Origin::Data,
        ));
        cs.push(Relation::before(
            StateRef::finish("b"),
            StateRef::start("c"),
            Origin::Data,
        ));
        cs
    }

    #[test]
    fn pure_chain_emits_nested_sequence() {
        let p = parse_process(
            "process Chain { var x; sequence { assign a writes x; assign b writes x; assign c writes x; } }",
        )
        .unwrap();
        let doc = emit_structured(&p, &chain_cs());
        let seq = doc.first_named("sequence").expect("nested sequence");
        assert_eq!(seq.elements_named("assign").count(), 3);
        // No links at all.
        assert!(doc.first_named("flow").is_none());
    }

    #[test]
    fn n_shape_keeps_links() {
        let mut cs = ConstraintSet::new("N");
        for a in ["a", "b", "c", "d"] {
            cs.add_activity(a);
        }
        for (f, t) in [("a", "c"), ("a", "d"), ("b", "d")] {
            cs.push(Relation::before(
                StateRef::finish(f),
                StateRef::start(t),
                Origin::Data,
            ));
        }
        let p = parse_process(
            "process N { var x; flow { assign a writes x; assign b writes x; assign c writes x; assign d writes x; } }",
        )
        .unwrap();
        let s = emit_structured_string(&p, &cs);
        assert!(s.contains("<links>"));
        assert!(s.contains("linkName="));
        // The emitted subset still parses with the flat parser when the
        // top level is a flow with links.
        let back = crate::parse::parse_bpel(&s);
        assert!(back.is_ok(), "{s}");
    }

    #[test]
    fn diamond_emits_seq_flow_seq() {
        let mut cs = ConstraintSet::new("D");
        for a in ["a", "b", "c", "d"] {
            cs.add_activity(a);
        }
        for (f, t) in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")] {
            cs.push(Relation::before(
                StateRef::finish(f),
                StateRef::start(t),
                Origin::Data,
            ));
        }
        let p = parse_process(
            "process D { var x; sequence { assign a writes x; flow { assign b writes x; assign c writes x; } assign d writes x; } }",
        )
        .unwrap();
        let doc = emit_structured(&p, &cs);
        let seq = doc.first_named("sequence").expect("outer sequence");
        assert!(seq.first_named("flow").is_some(), "inner flow");
    }
}
