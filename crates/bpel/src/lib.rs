//! # dscweaver-bpel
//!
//! BPEL 1.0-style code generation from optimized constraint sets
//! (`flow` + `links` with transition conditions), a parser for the emitted
//! subset (round-trip verified), and series-parallel structure recovery
//! back into nested `sequence`/`flow` constructs.

#![warn(missing_docs)]

pub mod emit;
pub mod emit_structured;
pub mod parse;
pub mod structure;

pub use emit::{emit, emit_string, BPEL_NS};
pub use emit_structured::{emit_structured, emit_structured_string};
pub use parse::{parse_bpel, BpelError};
pub use structure::{recover_structure, Recovered};
