//! BPEL 1.0-style code generation — the execution end of the DSCWeaver
//! vertical (§1: "finally generates BPEL code for real process deployment
//! and execution", ref \[22\]).
//!
//! The minimal constraint set maps naturally onto BPEL's `flow` + `links`:
//! every activity becomes a basic activity inside one top-level `flow`,
//! and every HappenBefore constraint becomes a named `link` with the
//! producer as `source` and the consumer as `target`; conditional
//! constraints carry a `transitionCondition`. This is the dependency-
//! first style made executable: *only* the constraints that survived
//! optimization appear as links.

use dscweaver_dscl::{ActivityState, ConstraintSet, Relation};
use dscweaver_model::{ActivityKind, Process};
use dscweaver_xml::Element;

/// The BPEL 1.0 namespace we stamp on generated processes.
pub const BPEL_NS: &str = "http://schemas.xmlsoap.org/ws/2003/03/business-process/";

/// Generates a BPEL-style document for `cs`, taking activity kinds
/// (receive/invoke/reply/assign) from `process` where available;
/// activities unknown to the process (e.g. desugaring coordinators) are
/// emitted as `<empty>`.
pub fn emit(process: &Process, cs: &ConstraintSet) -> Element {
    let mut links = Element::new("links");
    // Stable link naming: l0, l1, ... in relation order.
    let mut link_of_relation: Vec<Option<String>> = vec![None; cs.relations.len()];
    let mut n = 0;
    for (i, r) in cs.relations.iter().enumerate() {
        if r.is_happen_before() {
            let name = format!("l{n}");
            n += 1;
            links = links.child(Element::new("link").attr("name", name.clone()));
            link_of_relation[i] = Some(name);
        }
    }

    let mut flow = Element::new("flow").child(links);
    for a in &cs.activities {
        let kind = process
            .activity(a)
            .map(|act| act.kind.clone())
            .unwrap_or(ActivityKind::Empty);
        let mut el = match &kind {
            ActivityKind::Receive { from } => Element::new("receive")
                .attr("name", a.clone())
                .attr("partnerLink", from.clone()),
            ActivityKind::Invoke { service, port } => Element::new("invoke")
                .attr("name", a.clone())
                .attr("partnerLink", service.clone())
                .attr("operation", format!("port{port}")),
            ActivityKind::Reply { to } => Element::new("reply")
                .attr("name", a.clone())
                .attr("partnerLink", to.clone()),
            ActivityKind::Assign => Element::new("assign").attr("name", a.clone()),
            ActivityKind::Branch => Element::new("assign")
                .attr("name", a.clone())
                .attr("dsc:branch", "true"),
            ActivityKind::Empty => Element::new("empty").attr("name", a.clone()),
        };
        // Sources and targets.
        for (i, r) in cs.relations.iter().enumerate() {
            let Relation::HappenBefore { from, to, cond, .. } = r else {
                continue;
            };
            let Some(link) = &link_of_relation[i] else {
                continue;
            };
            if from.activity == *a {
                let mut src = Element::new("source").attr("linkName", link.clone());
                if from.state != ActivityState::Finish {
                    src = src.attr("dsc:sourceState", from.state.to_string());
                }
                if let Some(c) = cond {
                    src = src.attr(
                        "transitionCondition",
                        format!("bpws:getVariableData('{}') = '{}'", c.on, c.value),
                    );
                }
                el = el.child(src);
            }
            if to.activity == *a {
                let mut tgt = Element::new("target").attr("linkName", link.clone());
                if to.state != ActivityState::Start {
                    tgt = tgt.attr("dsc:targetState", to.state.to_string());
                }
                el = el.child(tgt);
            }
        }
        flow = flow.child(el);
    }

    Element::new("process")
        .attr("name", cs.name.clone())
        .attr("xmlns", BPEL_NS)
        .attr("xmlns:dsc", "urn:dscweaver")
        .child(flow)
}

/// Renders the generated document as pretty XML.
pub fn emit_string(process: &Process, cs: &ConstraintSet) -> String {
    format!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n{}",
        dscweaver_xml::to_string_pretty(&emit(process, cs))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscweaver_dscl::{Condition, Origin, StateRef};
    use dscweaver_model::parse_process;

    fn sample() -> (Process, ConstraintSet) {
        let p = parse_process(
            "process Demo { var po, au; service Credit { ports 1 async }
              sequence {
                receive recClient_po from Client writes po;
                invoke invCredit_po on Credit port 1 reads po;
                switch if_au reads au { case T { assign ok writes au; } case F { assign bad writes au; } }
              } }",
        )
        .unwrap();
        let mut cs = ConstraintSet::new("Demo");
        for a in ["recClient_po", "invCredit_po", "if_au", "ok", "bad"] {
            cs.add_activity(a);
        }
        cs.add_domain("if_au", vec!["T".into(), "F".into()]);
        cs.push(Relation::before(
            StateRef::finish("recClient_po"),
            StateRef::start("invCredit_po"),
            Origin::Data,
        ));
        cs.push(Relation::before_if(
            StateRef::finish("if_au"),
            StateRef::start("ok"),
            Condition::new("if_au", "T"),
            Origin::Control,
        ));
        cs.push(Relation::before(
            StateRef::start("recClient_po"),
            StateRef::finish("bad"),
            Origin::Cooperation,
        ));
        (p, cs)
    }

    #[test]
    fn emits_flow_links_and_kinds() {
        let (p, cs) = sample();
        let doc = emit(&p, &cs);
        assert_eq!(doc.name, "process");
        let flow = doc.first_named("flow").unwrap();
        let links = flow.first_named("links").unwrap();
        assert_eq!(links.elements_named("link").count(), 3);
        assert!(flow.elements_named("receive").count() == 1);
        assert!(flow.elements_named("invoke").count() == 1);
        assert_eq!(flow.elements_named("assign").count(), 3); // ok, bad, if_au
    }

    #[test]
    fn conditional_link_gets_transition_condition() {
        let (p, cs) = sample();
        let s = emit_string(&p, &cs);
        assert!(s.contains("transitionCondition=\"bpws:getVariableData('if_au') = 'T'\""));
    }

    #[test]
    fn state_granular_endpoints_annotated() {
        let (p, cs) = sample();
        let s = emit_string(&p, &cs);
        assert!(s.contains("dsc:sourceState=\"S\""), "{s}");
        assert!(s.contains("dsc:targetState=\"F\""));
    }

    #[test]
    fn unknown_activity_becomes_empty() {
        let (p, mut cs) = sample();
        cs.add_activity("__sync1_a_b");
        let s = emit_string(&p, &cs);
        assert!(s.contains("<empty name=\"__sync1_a_b\"/>"));
    }

    #[test]
    fn sources_and_targets_reference_declared_links() {
        let (p, cs) = sample();
        let doc = emit(&p, &cs);
        let flow = doc.first_named("flow").unwrap();
        let declared: Vec<&str> = flow
            .first_named("links")
            .unwrap()
            .elements_named("link")
            .map(|l| l.get_attr("name").unwrap())
            .collect();
        for act in flow.elements() {
            if act.name == "links" {
                continue;
            }
            for st in act.elements() {
                if st.name == "source" || st.name == "target" {
                    let l = st.get_attr("linkName").unwrap();
                    assert!(declared.contains(&l), "undeclared link {l}");
                }
            }
        }
    }
}
