//! A small deterministic pseudo-random number generator for workload
//! generation and property tests.
//!
//! The build runs with **zero network access**, so external RNG crates are
//! off the table; every generator in the workspace seeds one of these
//! instead. The core is xoshiro256++ (public-domain construction by
//! Blackman & Vigna) seeded through SplitMix64 — deterministic in the seed,
//! fast, and with far better equidistribution than a bare xorshift, which
//! matters because the workload generators feed low bits into `% n`
//! index selection.
//!
//! Not cryptographic. Do not use for anything security-relevant.

#![warn(missing_docs)]

/// SplitMix64 step: turns an arbitrary (even all-zero) seed into
/// well-mixed state words.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `usize` in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift with a rejection step, so the result is
    /// exactly uniform.
    #[inline]
    pub fn random_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "random_range(0)");
        let n = n as u64;
        // Widening multiply; rejection zone is < 2^64 mod n.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn random_f64(&mut self) -> f64 {
        // 53 top bits → [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// A uniformly chosen element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_range(slice.len())])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(i + 1);
            slice.swap(i, j);
        }
    }

    /// An ASCII string of `len` characters drawn from `alphabet`.
    /// Panics if `alphabet` is empty and `len > 0`.
    pub fn ascii_string(&mut self, alphabet: &[u8], len: usize) -> String {
        (0..len)
            .map(|_| alphabet[self.random_range(alphabet.len())] as char)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Rng::seed_from_u64(0);
        // The state must not be all-zero (xoshiro's one forbidden state).
        assert!(r.s.iter().any(|&w| w != 0));
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.random_range(7);
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
        assert_eq!(r.random_range(1), 0);
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = Rng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items).unwrap()));
        }
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.random_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
