//! Serialization of the element tree with entity escaping.

use crate::doc::{Element, Node};

/// Escapes character data (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute values (adds `"` and newline escapes).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serializes compactly (no added whitespace) — canonical form for
/// round-trip tests.
pub fn to_string(e: &Element) -> String {
    let mut out = String::new();
    write_compact(e, &mut out);
    out
}

fn write_compact(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &e.children {
        match c {
            Node::Element(el) => write_compact(el, out),
            Node::Text(t) => out.push_str(&escape_text(t)),
            Node::Comment(t) => {
                out.push_str("<!--");
                out.push_str(t);
                out.push_str("-->");
            }
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

/// Serializes with two-space indentation — the form emitted for generated
/// BPEL so humans can read it. Text children inhibit indentation of their
/// parent (mixed content stays verbatim).
pub fn to_string_pretty(e: &Element) -> String {
    let mut out = String::new();
    write_pretty(e, 0, &mut out);
    out.push('\n');
    out
}

fn has_text(e: &Element) -> bool {
    e.children
        .iter()
        .any(|c| matches!(c, Node::Text(t) if !t.trim().is_empty()))
}

fn write_pretty(e: &Element, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    out.push_str(&pad);
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if has_text(e) {
        // Mixed/text content: keep on one line.
        for c in &e.children {
            match c {
                Node::Element(el) => write_compact(el, out),
                Node::Text(t) => out.push_str(&escape_text(t)),
                Node::Comment(t) => {
                    out.push_str("<!--");
                    out.push_str(t);
                    out.push_str("-->");
                }
            }
        }
    } else {
        for c in &e.children {
            out.push('\n');
            match c {
                Node::Element(el) => write_pretty(el, depth + 1, out),
                Node::Text(_) => {}
                Node::Comment(t) => {
                    out.push_str(&"  ".repeat(depth + 1));
                    out.push_str("<!--");
                    out.push_str(t);
                    out.push_str("-->");
                }
            }
        }
        out.push('\n');
        out.push_str(&pad);
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_empty_element() {
        assert_eq!(to_string(&Element::new("empty")), "<empty/>");
    }

    #[test]
    fn compact_with_attrs_and_children() {
        let e = Element::new("a")
            .attr("k", "v")
            .child(Element::new("b").text("t"));
        assert_eq!(to_string(&e), r#"<a k="v"><b>t</b></a>"#);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_attr("say \"hi\"\n"), "say &quot;hi&quot;&#10;");
        let e = Element::new("x").attr("q", "a\"b").text("1<2");
        assert_eq!(to_string(&e), r#"<x q="a&quot;b">1&lt;2</x>"#);
    }

    #[test]
    fn pretty_indents_nested_elements() {
        let e = Element::new("flow")
            .child(Element::new("links").child(Element::new("link").attr("name", "l1")))
            .child(Element::new("invoke").attr("name", "a"));
        let s = to_string_pretty(&e);
        assert!(s.contains("\n  <links>"));
        assert!(s.contains("\n    <link name=\"l1\"/>"));
        assert!(s.ends_with("</flow>\n"));
    }

    #[test]
    fn pretty_keeps_text_inline() {
        let e = Element::new("cond").text("au = true");
        assert_eq!(to_string_pretty(&e), "<cond>au = true</cond>\n");
    }
}
