//! # dscweaver-xml
//!
//! A minimal, dependency-free XML document model with a writer and a
//! recursive-descent parser. It exists so the WSCL crate can read service
//! conversation documents and the BPEL crate can emit and re-parse process
//! definitions without pulling an external XML stack into the workspace.
//!
//! Supported subset: elements, attributes (single- or double-quoted),
//! character data, comments, CDATA, the five predefined entities, numeric
//! character references and a skipped `<?xml ...?>` declaration. That is
//! exactly what WSCL 1.0 examples and BPEL 1.0 process definitions use.

#![warn(missing_docs)]

pub mod doc;
pub mod parse;
pub mod write;

pub use doc::{Element, Node};
pub use parse::{parse, ParseError};
pub use write::{to_string, to_string_pretty};
