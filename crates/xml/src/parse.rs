//! A recursive-descent parser for the XML subset used by WSCL documents and
//! generated BPEL: elements, attributes, character data, comments, CDATA,
//! XML declarations and the five predefined entities plus numeric character
//! references. No DTDs, namespaces-as-syntax, or processing instructions
//! beyond skipping `<?...?>`.

use crate::doc::{Element, Node};

/// Parse error with 1-based line/column of the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.src[..self.pos.min(self.src.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    /// Decodes `&...;` at the current position.
    fn entity(&mut self) -> Result<char, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.bump(1);
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                break;
            }
            if self.pos - start > 10 {
                return Err(self.err("unterminated entity"));
            }
            self.pos += 1;
        }
        let body = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("non-UTF8 entity"))?
            .to_string();
        self.expect(";")?;
        let c = match body.as_str() {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                let code = u32::from_str_radix(&body[2..], 16)
                    .map_err(|_| self.err(format!("bad char ref '&{body};'")))?;
                char::from_u32(code).ok_or_else(|| self.err("invalid char ref"))?
            }
            _ if body.starts_with('#') => {
                let code: u32 = body[1..]
                    .parse()
                    .map_err(|_| self.err(format!("bad char ref '&{body};'")))?;
                char::from_u32(code).ok_or_else(|| self.err("invalid char ref"))?
            }
            _ => return Err(self.err(format!("unknown entity '&{body};'"))),
        };
        Ok(c)
    }

    fn attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.bump(1);
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(b) if b == quote => {
                    self.bump(1);
                    return Ok(out);
                }
                Some(b'&') => out.push(self.entity()?),
                Some(b'<') => return Err(self.err("'<' in attribute value")),
                Some(_) => {
                    // Consume a full UTF-8 code point.
                    let s = &self.src[self.pos..];
                    let ch_len = utf8_len(s[0]);
                    let piece = std::str::from_utf8(&s[..ch_len.min(s.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(piece);
                    self.bump(ch_len);
                }
            }
        }
    }

    fn element(&mut self) -> Result<Element, ParseError> {
        self.expect("<")?;
        let name = self.name()?;
        let mut el = Element::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.bump(1);
                    break;
                }
                Some(_) => {
                    let k = self.name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let v = self.attr_value()?;
                    el.attrs.push((k, v));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Children until matching close tag.
        loop {
            if self.starts_with("</") {
                self.bump(2);
                let close = self.name()?;
                if close != el.name {
                    return Err(self.err(format!(
                        "mismatched close tag: expected </{}>, got </{close}>",
                        el.name
                    )));
                }
                self.skip_ws();
                self.expect(">")?;
                return Ok(el);
            } else if self.starts_with("<!--") {
                self.bump(4);
                let start = self.pos;
                while !self.starts_with("-->") {
                    if self.pos >= self.src.len() {
                        return Err(self.err("unterminated comment"));
                    }
                    self.pos += 1;
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.bump(3);
                el.children.push(Node::Comment(text));
            } else if self.starts_with("<![CDATA[") {
                self.bump(9);
                let start = self.pos;
                while !self.starts_with("]]>") {
                    if self.pos >= self.src.len() {
                        return Err(self.err("unterminated CDATA"));
                    }
                    self.pos += 1;
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.bump(3);
                el.children.push(Node::Text(text));
            } else if self.starts_with("<") {
                let child = self.element()?;
                el.children.push(Node::Element(child));
            } else if self.peek().is_none() {
                return Err(self.err(format!("unterminated element <{}>", el.name)));
            } else {
                // Character data.
                let mut text = String::new();
                loop {
                    match self.peek() {
                        None | Some(b'<') => break,
                        Some(b'&') => text.push(self.entity()?),
                        Some(_) => {
                            let s = &self.src[self.pos..];
                            let ch_len = utf8_len(s[0]);
                            let piece = std::str::from_utf8(&s[..ch_len.min(s.len())])
                                .map_err(|_| self.err("invalid UTF-8"))?;
                            text.push_str(piece);
                            self.bump(ch_len);
                        }
                    }
                }
                if !text.trim().is_empty() {
                    el.children.push(Node::Text(text));
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses a document: optional `<?xml ...?>` declaration, comments, then a
/// single root element.
pub fn parse(src: &str) -> Result<Element, ParseError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if p.starts_with("<?") {
        while !p.starts_with("?>") {
            if p.pos >= p.src.len() {
                return Err(p.err("unterminated XML declaration"));
            }
            p.pos += 1;
        }
        p.bump(2);
    }
    loop {
        p.skip_ws();
        if p.starts_with("<!--") {
            p.bump(4);
            while !p.starts_with("-->") {
                if p.pos >= p.src.len() {
                    return Err(p.err("unterminated comment"));
                }
                p.pos += 1;
            }
            p.bump(3);
        } else {
            break;
        }
    }
    let root = p.element()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::to_string;

    #[test]
    fn simple_document() {
        let e = parse(r#"<a k="v"><b>text</b><c/></a>"#).unwrap();
        assert_eq!(e.name, "a");
        assert_eq!(e.get_attr("k"), Some("v"));
        assert_eq!(e.elements().count(), 2);
        assert_eq!(e.first_named("b").unwrap().text_content(), "text");
    }

    #[test]
    fn declaration_and_comments() {
        let e = parse("<?xml version=\"1.0\"?>\n<!-- top -->\n<root><!-- in --></root>").unwrap();
        assert_eq!(e.name, "root");
        assert_eq!(e.children.len(), 1);
        assert!(matches!(&e.children[0], Node::Comment(c) if c.trim() == "in"));
    }

    #[test]
    fn entities_decoded() {
        let e = parse(r#"<x a="1 &lt; 2 &quot;q&quot;">&amp;&#65;&#x42;</x>"#).unwrap();
        assert_eq!(e.get_attr("a"), Some("1 < 2 \"q\""));
        assert_eq!(e.text_content(), "&AB");
    }

    #[test]
    fn cdata_passes_through() {
        let e = parse("<x><![CDATA[a < b && c]]></x>").unwrap();
        assert_eq!(e.text_content(), "a < b && c");
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn unterminated_rejected_with_position() {
        let err = parse("<a>\n  <b>").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn trailing_content_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&bogus;</a>").is_err());
    }

    #[test]
    fn single_quoted_attrs() {
        let e = parse("<a k='v w'/>").unwrap();
        assert_eq!(e.get_attr("k"), Some("v w"));
    }

    #[test]
    fn namespaced_names() {
        let e = parse(r#"<bpel:flow xmlns:bpel="uri"><bpel:link/></bpel:flow>"#).unwrap();
        assert_eq!(e.name, "bpel:flow");
        assert!(e.first_named("bpel:link").is_some());
    }

    #[test]
    fn roundtrip_compact() {
        let src = r#"<flow name="purchasing"><links><link name="l1"/></links><invoke name="invCredit_po">po &amp; au</invoke></flow>"#;
        let e = parse(src).unwrap();
        assert_eq!(to_string(&e), src);
        // And parse(write(parse(x))) is a fixpoint.
        let again = parse(&to_string(&e)).unwrap();
        assert_eq!(again, e);
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let e = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(e.children.len(), 1);
    }

    #[test]
    fn utf8_content() {
        let e = parse("<a k=\"héllo→\">wörld → done</a>").unwrap();
        assert_eq!(e.get_attr("k"), Some("héllo→"));
        assert_eq!(e.text_content(), "wörld → done");
    }
}
