//! Element-tree document model.

use std::fmt;

/// An XML element: name, ordered attributes, ordered children.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Element {
    /// Tag name (may contain a `ns:` prefix, kept verbatim).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// A node in the element tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (entity-decoded).
    Text(String),
    /// A comment (without the `<!--`/`-->` markers).
    Comment(String),
}

impl Element {
    /// A new element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: adds an attribute.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Builder: appends a child element.
    pub fn child(mut self, e: Element) -> Self {
        self.children.push(Node::Element(e));
        self
    }

    /// Builder: appends character data.
    pub fn text(mut self, t: impl Into<String>) -> Self {
        self.children.push(Node::Text(t.into()));
        self
    }

    /// The value of attribute `key`, if present.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of attribute `key`, or an error naming the element.
    pub fn require_attr(&self, key: &str) -> Result<&str, String> {
        self.get_attr(key)
            .ok_or_else(|| format!("<{}> is missing required attribute '{key}'", self.name))
    }

    /// Child elements (ignoring text/comments).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// Child elements with the given tag name.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.elements().filter(move |e| e.name == name)
    }

    /// First child element with the given tag name.
    pub fn first_named(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// Concatenated text content of direct text children, trimmed.
    pub fn text_content(&self) -> String {
        let mut s = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                s.push_str(t);
            }
        }
        s.trim().to_string()
    }

    /// Recursively counts elements (including self).
    pub fn element_count(&self) -> usize {
        1 + self.elements().map(Element::element_count).sum::<usize>()
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::write::to_string_pretty(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let e = Element::new("invoke")
            .attr("name", "invCredit_po")
            .attr("partner", "Credit")
            .child(Element::new("input").text("po"));
        assert_eq!(e.get_attr("name"), Some("invCredit_po"));
        assert_eq!(e.get_attr("missing"), None);
        assert!(e.require_attr("partner").is_ok());
        assert!(e.require_attr("nope").unwrap_err().contains("invoke"));
        assert_eq!(e.elements().count(), 1);
        assert_eq!(e.first_named("input").unwrap().text_content(), "po");
        assert_eq!(e.element_count(), 2);
    }

    #[test]
    fn elements_named_filters() {
        let e = Element::new("flow")
            .child(Element::new("link").attr("name", "l1"))
            .child(Element::new("invoke"))
            .child(Element::new("link").attr("name", "l2"));
        let names: Vec<_> = e
            .elements_named("link")
            .map(|l| l.get_attr("name").unwrap())
            .collect();
        assert_eq!(names, vec!["l1", "l2"]);
    }

    #[test]
    fn text_content_trims_and_concatenates() {
        let mut e = Element::new("doc");
        e.children.push(Node::Text("  hello ".into()));
        e.children.push(Node::Comment("ignored".into()));
        e.children.push(Node::Text("world  ".into()));
        assert_eq!(e.text_content(), "hello world");
    }
}
