//! Property test: write → parse is the identity on element trees.

use dscweaver_xml::{parse, to_string, to_string_pretty, Element, Node};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_.-]{0,8}"
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Printable text including characters that need escaping; avoid
    // whitespace-only strings (the parser drops those) by anchoring with a
    // letter.
    "[a-z][ -~&<>\"']{0,12}".prop_filter("no control chars", |s| {
        !s.contains(['\u{0}', '\r'])
    })
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
        proptest::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(name);
            // Deduplicate attribute names (XML forbids duplicates).
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    e.attrs.push((k, v));
                }
            }
            if let Some(t) = text {
                e.children.push(Node::Text(t));
            }
            e
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                let mut seen = std::collections::HashSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        e.attrs.push((k, v));
                    }
                }
                for c in children {
                    e.children.push(Node::Element(c));
                }
                e
            })
    })
}

proptest! {
    #[test]
    fn compact_roundtrip(e in element_strategy()) {
        let s = to_string(&e);
        let parsed = parse(&s).expect("generated XML must parse");
        prop_assert_eq!(parsed, e);
    }

    #[test]
    fn pretty_roundtrip_structure(e in element_strategy()) {
        // Pretty output inserts whitespace, which the parser drops when it
        // is whitespace-only; element structure and attributes must survive.
        let s = to_string_pretty(&e);
        let parsed = parse(&s).expect("pretty XML must parse");
        fn canon(e: &Element) -> Element {
            let mut out = Element::new(e.name.clone());
            out.attrs = e.attrs.clone();
            for c in &e.children {
                match c {
                    Node::Element(el) => out.children.push(Node::Element(canon(el))),
                    Node::Text(t) if !t.trim().is_empty() => {
                        out.children.push(Node::Text(t.trim().to_string()))
                    }
                    _ => {}
                }
            }
            out
        }
        prop_assert_eq!(canon(&parsed), canon(&e));
    }
}
