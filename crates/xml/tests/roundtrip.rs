//! Property test: write → parse is the identity on element trees.
//! Random trees are drawn with the in-repo deterministic PRNG.

use dscweaver_prng::Rng;
use dscweaver_xml::{parse, to_string, to_string_pretty, Element, Node};

const NAME_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
const NAME_REST: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
// Printable text including characters that need escaping; anchored with a
// letter so whitespace-only strings (dropped by the parser) cannot occur.
const TEXT_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const TEXT_REST: &[u8] = b" !#$%&'()*+,-./0123456789:;<=>?@ABCXYZ[\\]^_`abcxyz{|}~\"<>&";

fn random_name(rng: &mut Rng) -> String {
    let mut s = rng.ascii_string(NAME_FIRST, 1);
    let len = rng.random_range(9);
    s.push_str(&rng.ascii_string(NAME_REST, len));
    s
}

fn random_text(rng: &mut Rng) -> String {
    let mut s = rng.ascii_string(TEXT_FIRST, 1);
    let len = rng.random_range(13);
    s.push_str(&rng.ascii_string(TEXT_REST, len));
    s
}

fn random_attrs(rng: &mut Rng, e: &mut Element) {
    // Deduplicate attribute names (XML forbids duplicates).
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.random_range(3) {
        let k = random_name(rng);
        if seen.insert(k.clone()) {
            e.attrs.push((k, random_text(rng)));
        }
    }
}

fn random_element(rng: &mut Rng, depth: usize) -> Element {
    let mut e = Element::new(random_name(rng));
    random_attrs(rng, &mut e);
    if depth == 0 || rng.random_bool(0.35) {
        if rng.random_bool(0.5) {
            e.children.push(Node::Text(random_text(rng)));
        }
    } else {
        for _ in 0..rng.random_range(4) {
            e.children.push(Node::Element(random_element(rng, depth - 1)));
        }
    }
    e
}

#[test]
fn compact_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xD001);
    for case in 0..256 {
        let e = random_element(&mut rng, 3);
        let s = to_string(&e);
        let parsed = parse(&s).expect("generated XML must parse");
        assert_eq!(parsed, e, "case {case}: {s}");
    }
}

#[test]
fn pretty_roundtrip_structure() {
    let mut rng = Rng::seed_from_u64(0xD002);
    for case in 0..256 {
        let e = random_element(&mut rng, 3);
        // Pretty output inserts whitespace, which the parser drops when it
        // is whitespace-only; element structure and attributes must survive.
        let s = to_string_pretty(&e);
        let parsed = parse(&s).expect("pretty XML must parse");
        fn canon(e: &Element) -> Element {
            let mut out = Element::new(e.name.clone());
            out.attrs = e.attrs.clone();
            for c in &e.children {
                match c {
                    Node::Element(el) => out.children.push(Node::Element(canon(el))),
                    Node::Text(t) if !t.trim().is_empty() => {
                        out.children.push(Node::Text(t.trim().to_string()))
                    }
                    _ => {}
                }
            }
            out
        }
        assert_eq!(canon(&parsed), canon(&e), "case {case}");
    }
}
