//! Daemon ↔ one-shot equivalence: every response body the daemon produces
//! must be bit-identical to the one-shot reference for the same request —
//! across cold and warm cache states, concurrent clients, server thread
//! counts and LRU eviction.

use dscweaver_serve::client::{self, Client, PipelinedRequest};
use dscweaver_serve::registry::Registry;
use dscweaver_serve::server::{ServeConfig, Server};
use dscweaver_serve::service::{handle, oneshot, Request};

/// A small family of **structurally** distinct processes: a guarded
/// diamond plus an `i`-long tail of extra readers, so weave, validation
/// and simulation all have work — and so the family stays distinct under
/// canonicalization (alpha-variants of one process would share a single
/// canonical entry by design).
fn proc_text(i: usize) -> String {
    let tail: String = (0..i)
        .map(|k| format!("  assign tail{k} reads v{i};\n"))
        .collect();
    format!(
        "process p{i} {{\n var s{i}; var v{i};\n sequence {{\n  assign init{i} writes s{i};\n  switch g{i} reads s{i} {{\n   case T {{ assign x{i} writes v{i}; }}\n   case F {{ assign y{i} writes v{i}; }}\n  }}\n  assign j{i} reads v{i};\n{tail} }}\n}}"
    )
}

fn requests_for(text: &str) -> Vec<(&'static str, Request)> {
    vec![
        (
            "weave",
            Request::Weave {
                text: text.to_string(),
            },
        ),
        (
            "validate",
            Request::Validate {
                text: text.to_string(),
            },
        ),
        (
            "simulate",
            Request::Simulate {
                text: text.to_string(),
                branches: vec![("g0".into(), "T".into())],
            },
        ),
    ]
}

#[test]
fn daemon_matches_oneshot_cold_warm_and_threads() {
    let text = proc_text(0);
    for threads in [1usize, 2, 4, 8] {
        let reg = Registry::new(8, threads);
        for (name, req) in requests_for(&text) {
            let reference = oneshot(&req, 1).body;
            let cold = handle(&reg, &req);
            let warm = handle(&reg, &req);
            assert_eq!(cold.status, 200, "{name}: {}", cold.body);
            assert_eq!(
                cold.body, reference,
                "{name} cold body diverged at {threads} threads"
            );
            assert_eq!(
                warm.body, reference,
                "{name} warm body diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn concurrent_clients_get_identical_bodies() {
    let server = Server::start(&ServeConfig {
        threads: 4,
        cache_capacity: 64,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    let texts: Vec<String> = (0..6).map(proc_text).collect();
    let references: Vec<String> = texts
        .iter()
        .map(|t| {
            oneshot(
                &Request::Weave {
                    text: t.to_string(),
                },
                1,
            )
            .body
        })
        .collect();
    // Two full passes of concurrent clients: the first is all-cold, the
    // second all-warm. Bodies must match the one-shot reference in both.
    for pass in 0..2 {
        let handles: Vec<_> = texts
            .iter()
            .cloned()
            .map(|t| std::thread::spawn(move || client::post(addr, "/v1/weave", &t).unwrap()))
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let reply = h.join().unwrap();
            assert_eq!(reply.status, 200, "pass {pass}: {}", reply.body);
            assert_eq!(reply.body, references[i], "pass {pass}, client {i}");
        }
    }
    let stats = client::get(addr, "/v1/stats").unwrap();
    assert!(stats.body.contains("\"misses\":6"), "{}", stats.body);
    assert!(stats.body.contains("\"hits\":6"), "{}", stats.body);
    server.shutdown();
}

#[test]
fn eviction_recompiles_to_identical_responses() {
    // Capacity 2: requesting a third distinct process evicts the first.
    let reg = Registry::new(2, 1);
    let req0 = Request::Weave { text: proc_text(0) };
    let first = handle(&reg, &req0);
    handle(&reg, &Request::Weave { text: proc_text(1) });
    handle(&reg, &Request::Weave { text: proc_text(2) });
    assert_eq!(reg.stats().evictions, 1);
    // Re-requesting the evicted process recompiles (miss) to the exact
    // same body.
    let again = handle(&reg, &req0);
    assert_eq!(again.cache, dscweaver_serve::CacheStatus::Miss);
    assert_eq!(again.body, first.body);
}

#[test]
fn keepalive_and_pipelined_bodies_match_oneshot_across_threads() {
    // The connection mode must never change a body: serial keep-alive
    // requests and a pipelined batch on one connection are pinned
    // bit-identical to the one-shot reference, at every thread count.
    let texts: Vec<String> = (0..4).map(proc_text).collect();
    let references: Vec<String> = texts
        .iter()
        .map(|t| {
            oneshot(
                &Request::Weave {
                    text: t.to_string(),
                },
                1,
            )
            .body
        })
        .collect();
    for threads in [1usize, 2, 4, 8] {
        let server = Server::start(&ServeConfig {
            threads,
            cache_capacity: 64,
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port");
        let mut client = Client::connect(server.addr());
        // Serial requests over one reused connection (cold pass, then a
        // warm pass on the same connection).
        for pass in 0..2 {
            for (i, t) in texts.iter().enumerate() {
                let reply = client.post("/v1/weave", t).unwrap();
                assert_eq!(reply.status, 200, "pass {pass}: {}", reply.body);
                assert_eq!(
                    reply.body, references[i],
                    "keep-alive body diverged (threads {threads}, pass {pass}, proc {i})"
                );
                assert!(reply.keep_alive(), "connection must stay open");
            }
        }
        // One pipelined batch: all requests written before any reply is
        // read; replies come back in request order.
        let batch: Vec<PipelinedRequest> = texts
            .iter()
            .map(|t| PipelinedRequest::post("/v1/weave", t.clone()))
            .collect();
        let replies = client.pipeline(&batch).unwrap();
        assert_eq!(replies.len(), texts.len());
        for (i, reply) in replies.iter().enumerate() {
            assert_eq!(reply.status, 200);
            assert_eq!(reply.cache(), "hit", "pipelined warm request {i}");
            assert_eq!(
                reply.body, references[i],
                "pipelined body diverged (threads {threads}, slot {i})"
            );
        }
        // The whole exchange used exactly one connection.
        let stats = client.get("/v1/stats").unwrap();
        assert_eq!(stats.status, 200);
        server.shutdown();
    }
}

#[test]
fn textual_variants_share_artifacts_and_match_their_own_oneshot() {
    let server = Server::start(&ServeConfig {
        threads: 2,
        cache_capacity: 64,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(server.addr());
    let base = proc_text(0);
    // An alpha-variant: renamed identifiers, extra whitespace, a comment.
    let variant = base
        .replace("p0", "Renamed")
        .replace("s0", "state")
        .replace("v0", "value")
        .replace("init0", "boot")
        .replace("g0", "gate")
        .replace("x0", "left")
        .replace("y0", "right")
        .replace("j0", "join")
        .replace("sequence {", "sequence { # variant\n");
    assert_ne!(base, variant);
    let first = client.post("/v1/weave", &base).unwrap();
    assert_eq!(first.cache(), "miss");
    let shared = client.post("/v1/weave", &variant).unwrap();
    assert_eq!(
        shared.cache(),
        "canonical",
        "variant must hit the canonical entry: {}",
        shared.body
    );
    // The shared body is rendered in the variant's own names and is
    // bit-identical to the variant's one-shot reference.
    let reference = oneshot(
        &Request::Weave {
            text: variant.clone(),
        },
        1,
    );
    assert_eq!(shared.body, reference.body);
    assert!(shared.body.contains("\"process\":\"Renamed\""), "{}", shared.body);
    // Both submissions report the same canonical hash.
    let hash = |body: &str| body.split("\"hash\":\"").nth(1).unwrap()[..16].to_string();
    assert_eq!(hash(&first.body), hash(&shared.body));
    let stats = client.get("/v1/stats").unwrap();
    assert!(stats.body.contains("\"canonical_hits\":1"), "{}", stats.body);
    server.shutdown();
}

#[test]
fn daemon_reweave_fingerprint_matches_single_owner_weave() {
    // The frozen-pool satellite at the serve level: a re-weave served by
    // the daemon's cached session must land on the same session
    // fingerprint (which hashes the pool numbering) as a single-owner
    // session fed the same revisions.
    let base = proc_text(0);
    let revised = base.replace(
        "assign j0 reads v0;",
        "assign j0 reads v0;\n  assign k0 reads v0;",
    );
    assert_ne!(base, revised);

    // Daemon path.
    let reg = Registry::new(8, 2);
    let entry = reg.lookup_or_build(&base).unwrap().entry;
    let ds = dscweaver_serve::ProcessEntry::build_dependencies(&revised).unwrap();
    let daemon_report = entry.reweave(&ds).unwrap();

    // Single-owner path.
    let mut session = dscweaver_core::Weaver::new().session();
    let ds0 = dscweaver_serve::ProcessEntry::build_dependencies(&base).unwrap();
    session.weave(&ds0).unwrap();
    let owner_report = session.weave(&ds).unwrap();

    assert_eq!(daemon_report.fingerprint, owner_report.fingerprint);
    assert_eq!(daemon_report.path, owner_report.path);
}
