//! Daemon ↔ one-shot equivalence: every response body the daemon produces
//! must be bit-identical to the one-shot reference for the same request —
//! across cold and warm cache states, concurrent clients, server thread
//! counts and LRU eviction.

use dscweaver_serve::client;
use dscweaver_serve::registry::Registry;
use dscweaver_serve::server::{ServeConfig, Server};
use dscweaver_serve::service::{handle, oneshot, Request};

/// A small family of distinct processes: a guarded diamond per index, so
/// weave, validation (two assignments) and simulation all have work.
fn proc_text(i: usize) -> String {
    format!(
        "process p{i} {{\n var s{i}; var v{i};\n sequence {{\n  assign init{i} writes s{i};\n  switch g{i} reads s{i} {{\n   case T {{ assign x{i} writes v{i}; }}\n   case F {{ assign y{i} writes v{i}; }}\n  }}\n  assign j{i} reads v{i};\n }}\n}}"
    )
}

fn requests_for(text: &str) -> Vec<(&'static str, Request)> {
    vec![
        (
            "weave",
            Request::Weave {
                text: text.to_string(),
            },
        ),
        (
            "validate",
            Request::Validate {
                text: text.to_string(),
            },
        ),
        (
            "simulate",
            Request::Simulate {
                text: text.to_string(),
                branches: vec![("g0".into(), "T".into())],
            },
        ),
    ]
}

#[test]
fn daemon_matches_oneshot_cold_warm_and_threads() {
    let text = proc_text(0);
    for threads in [1usize, 2, 4, 8] {
        let reg = Registry::new(8, threads);
        for (name, req) in requests_for(&text) {
            let reference = oneshot(&req, 1).body;
            let cold = handle(&reg, &req);
            let warm = handle(&reg, &req);
            assert_eq!(cold.status, 200, "{name}: {}", cold.body);
            assert_eq!(
                cold.body, reference,
                "{name} cold body diverged at {threads} threads"
            );
            assert_eq!(
                warm.body, reference,
                "{name} warm body diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn concurrent_clients_get_identical_bodies() {
    let server = Server::start(&ServeConfig {
        threads: 4,
        cache_capacity: 64,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    let texts: Vec<String> = (0..6).map(proc_text).collect();
    let references: Vec<String> = texts
        .iter()
        .map(|t| {
            oneshot(
                &Request::Weave {
                    text: t.to_string(),
                },
                1,
            )
            .body
        })
        .collect();
    // Two full passes of concurrent clients: the first is all-cold, the
    // second all-warm. Bodies must match the one-shot reference in both.
    for pass in 0..2 {
        let handles: Vec<_> = texts
            .iter()
            .cloned()
            .map(|t| std::thread::spawn(move || client::post(addr, "/v1/weave", &t).unwrap()))
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let reply = h.join().unwrap();
            assert_eq!(reply.status, 200, "pass {pass}: {}", reply.body);
            assert_eq!(reply.body, references[i], "pass {pass}, client {i}");
        }
    }
    let stats = client::get(addr, "/v1/stats").unwrap();
    assert!(stats.body.contains("\"misses\":6"), "{}", stats.body);
    assert!(stats.body.contains("\"hits\":6"), "{}", stats.body);
    server.shutdown();
}

#[test]
fn eviction_recompiles_to_identical_responses() {
    // Capacity 2: requesting a third distinct process evicts the first.
    let reg = Registry::new(2, 1);
    let req0 = Request::Weave { text: proc_text(0) };
    let first = handle(&reg, &req0);
    handle(&reg, &Request::Weave { text: proc_text(1) });
    handle(&reg, &Request::Weave { text: proc_text(2) });
    assert_eq!(reg.stats().evictions, 1);
    // Re-requesting the evicted process recompiles (miss) to the exact
    // same body.
    let again = handle(&reg, &req0);
    assert_eq!(again.cache, dscweaver_serve::CacheStatus::Miss);
    assert_eq!(again.body, first.body);
}

#[test]
fn daemon_reweave_fingerprint_matches_single_owner_weave() {
    // The frozen-pool satellite at the serve level: a re-weave served by
    // the daemon's cached session must land on the same session
    // fingerprint (which hashes the pool numbering) as a single-owner
    // session fed the same revisions.
    let base = proc_text(0);
    let revised = base.replace(
        "assign j0 reads v0;",
        "assign j0 reads v0;\n  assign k0 reads v0;",
    );
    assert_ne!(base, revised);

    // Daemon path.
    let reg = Registry::new(8, 2);
    let (entry, _) = reg.lookup_or_build(&base).unwrap();
    let ds = dscweaver_serve::ProcessEntry::build_dependencies(&revised).unwrap();
    let daemon_report = entry.reweave(&ds).unwrap();

    // Single-owner path.
    let mut session = dscweaver_core::Weaver::new().session();
    let ds0 = dscweaver_serve::ProcessEntry::build_dependencies(&base).unwrap();
    session.weave(&ds0).unwrap();
    let owner_report = session.weave(&ds).unwrap();

    assert_eq!(daemon_report.fingerprint, owner_report.fingerprint);
    assert_eq!(daemon_report.path, owner_report.path);
}
