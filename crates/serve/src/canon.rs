//! Canonicalization: identity by causal structure, not by text.
//!
//! Tenants submitting textual variants of one process — reordered
//! declarations, renamed services or activities, different whitespace or
//! comments — describe the same synchronization structure (exactly the
//! equivalence the paper's Definition-3 closure abstracts over), yet a
//! raw content hash files each variant under its own key and recompiles
//! identical artifacts. This module computes a **canonical form** that is
//! invariant under those mutations:
//!
//! 1. parse the `.proc` text (the lexer already discards whitespace and
//!    comments) and validate it, so errors surface with the tenant's own
//!    names;
//! 2. **normalize** the construct tree: nested sequences are flattened,
//!    singleton `sequence`/`flow` wrappers unwrapped, and each activity's
//!    `reads`/`writes` lists deduplicated;
//! 3. **alpha-rename** every identifier namespace into first-occurrence
//!    order over a deterministic depth-first traversal: activities become
//!    `a0, a1, …`, variables `v0, v1, …` (reads before writes, per
//!    activity), services and partners `s0, s1, …` (the implicit `Client`
//!    partner is part of the language and stays verbatim, as do case and
//!    link-condition labels), links `l0, l1, …` and the process name
//!    `p0`. Declarations are re-emitted in canonical order, so the
//!    declaration order of the source text is irrelevant; declared but
//!    unused variables and unreferenced service declarations carry no
//!    synchronization content and are dropped;
//! 4. render the canonical text in one fixed layout and FNV-1a hash it.
//!
//! Two submissions share a canonical hash **iff** their canonical texts
//! are equal, i.e. they are alpha-equivalent modulo the normalizations
//! above — semantically distinct processes render distinct canonical
//! texts and never share an entry. The registry uses the canonical hash
//! as the second-level cache key (the raw-text hash stays in front as a
//! first-level memo), and the [`Renaming`] travels with each request so
//! response bodies are rendered back into the tenant's own names.

use dscweaver_model::{parse_process, Case, Construct, Link, Process, ServiceDecl};
use std::collections::BTreeMap;

/// The bijective per-namespace identifier maps of one canonicalization,
/// kept alongside the cached entry so responses can be rendered in the
/// submitting tenant's original names.
///
/// Canonical names are globally unambiguous across namespaces (`a…`
/// activities, `v…` variables, `s…` services, `l…` links, `p0` the
/// process), so the inverse direction is a single map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Renaming {
    activities: BTreeMap<String, String>,
    variables: BTreeMap<String, String>,
    services: BTreeMap<String, String>,
    links: BTreeMap<String, String>,
    inverse: BTreeMap<String, String>,
}

impl Renaming {
    fn bind(map: &mut BTreeMap<String, String>, inverse: &mut BTreeMap<String, String>, original: &str, prefix: &str) {
        if map.contains_key(original) {
            return;
        }
        let canonical = format!("{prefix}{}", map.len());
        map.insert(original.to_string(), canonical.clone());
        inverse.insert(canonical, original.to_string());
    }

    /// The canonical name of an original activity name (branch guards in
    /// `/v1/simulate` oracles go through this), if the activity exists.
    pub fn activity(&self, original: &str) -> Option<&str> {
        self.activities.get(original).map(String::as_str)
    }

    /// The original name behind a canonical identifier, any namespace.
    pub fn original(&self, canonical: &str) -> Option<&str> {
        self.inverse.get(canonical).map(String::as_str)
    }

    /// Number of identifiers renamed across all namespaces.
    pub fn len(&self) -> usize {
        self.inverse.len()
    }

    /// True when no identifiers were renamed (never the case for a valid
    /// process, which has at least a name).
    pub fn is_empty(&self) -> bool {
        self.inverse.is_empty()
    }

    /// Renders `text` back into original names: every maximal identifier
    /// token (`[A-Za-z_][A-Za-z0-9_]*`) that is a canonical name of this
    /// renaming is replaced by its original. Canonical names are shaped
    /// `[avslp]<digits>`, which no DSCL/DSL keyword matches, so the
    /// substitution is exact on any text rendered from canonical-named
    /// artifacts (minimal-set DSCL, schedule events, …).
    pub fn render_original(&self, text: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let token = &text[start..i];
                match self.inverse.get(token) {
                    Some(original) => out.push_str(original),
                    None => out.push_str(token),
                }
            } else {
                out.push(c);
                i += c.len_utf8();
            }
        }
        out
    }
}

/// The canonical form of one submitted process text.
#[derive(Clone, Debug)]
pub struct CanonicalForm {
    /// FNV-1a hash of [`CanonicalForm::text`] — the second-level cache key.
    pub hash: u64,
    /// The canonical rendering (fixed layout, canonical names).
    pub text: String,
    /// The normalized, canonically renamed process, ready to compile.
    pub process: Process,
    /// The per-namespace identifier maps back to the tenant's names.
    pub renaming: Renaming,
}

/// Flattens nested sequences, unwraps singleton `sequence`/`flow`
/// wrappers (a `flow` with links keeps its wrapper even when it has one
/// branch) and deduplicates `reads`/`writes` lists — pure structural
/// normalization, no renaming.
fn normalize(c: &Construct) -> Construct {
    match c {
        Construct::Act(a) => {
            let mut a = a.clone();
            dedupe(&mut a.reads);
            dedupe(&mut a.writes);
            Construct::Act(a)
        }
        Construct::Sequence(items) => {
            let mut flat = Vec::new();
            flatten_into(items, &mut flat);
            match flat.len() {
                1 => flat.pop().expect("len checked"),
                _ => Construct::Sequence(flat),
            }
        }
        Construct::Flow { branches, links } => {
            let branches: Vec<Construct> = branches.iter().map(normalize).collect();
            if branches.len() == 1 && links.is_empty() {
                return branches.into_iter().next().expect("len checked");
            }
            Construct::Flow {
                branches,
                links: links.clone(),
            }
        }
        Construct::Switch { branch, cases } => {
            let mut branch = branch.clone();
            dedupe(&mut branch.reads);
            dedupe(&mut branch.writes);
            Construct::Switch {
                branch,
                cases: cases
                    .iter()
                    .map(|c| Case {
                        label: c.label.clone(),
                        body: normalize(&c.body),
                    })
                    .collect(),
            }
        }
        Construct::While { cond, body } => {
            let mut cond = cond.clone();
            dedupe(&mut cond.reads);
            dedupe(&mut cond.writes);
            Construct::While {
                cond,
                body: Box::new(normalize(body)),
            }
        }
    }
}

fn flatten_into(items: &[Construct], out: &mut Vec<Construct>) {
    for item in items {
        match normalize(item) {
            Construct::Sequence(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
}

fn dedupe(vars: &mut Vec<String>) {
    let mut seen = std::collections::HashSet::new();
    vars.retain(|v| seen.insert(v.clone()));
}

/// First pass over the normalized tree: bind activities, variables and
/// services at first occurrence, in depth-first traversal order.
fn bind_names(c: &Construct, r: &mut Renaming) {
    let bind_activity = |r: &mut Renaming, a: &dscweaver_model::Activity| {
        Renaming::bind(&mut r.activities, &mut r.inverse, &a.name, "a");
        for v in a.reads.iter().chain(&a.writes) {
            Renaming::bind(&mut r.variables, &mut r.inverse, v, "v");
        }
        if let Some(partner) = a.kind.partner() {
            if partner != "Client" {
                Renaming::bind(&mut r.services, &mut r.inverse, partner, "s");
            }
        }
    };
    match c {
        Construct::Act(a) => bind_activity(r, a),
        Construct::Sequence(items) => items.iter().for_each(|i| bind_names(i, r)),
        Construct::Flow { branches, links } => {
            branches.iter().for_each(|b| bind_names(b, r));
            for l in links {
                Renaming::bind(&mut r.links, &mut r.inverse, &l.name, "l");
            }
        }
        Construct::Switch { branch, cases } => {
            bind_activity(r, branch);
            cases.iter().for_each(|c| bind_names(&c.body, r));
        }
        Construct::While { cond, body } => {
            bind_activity(r, cond);
            bind_names(body, r);
        }
    }
}

/// Second pass: rewrite the tree with canonical names (link endpoints can
/// reference activities anywhere, so this runs after all binds).
fn rename(c: &Construct, r: &Renaming) -> Construct {
    let map_activity = |a: &dscweaver_model::Activity| {
        let mut a = a.clone();
        a.name = r.activities[&a.name].clone();
        for v in a.reads.iter_mut().chain(a.writes.iter_mut()) {
            *v = r.variables[v.as_str()].clone();
        }
        match &mut a.kind {
            dscweaver_model::ActivityKind::Receive { from } if from != "Client" => {
                *from = r.services[from.as_str()].clone();
            }
            dscweaver_model::ActivityKind::Invoke { service, .. } => {
                *service = r.services[service.as_str()].clone();
            }
            dscweaver_model::ActivityKind::Reply { to } if to != "Client" => {
                *to = r.services[to.as_str()].clone();
            }
            _ => {}
        }
        a
    };
    match c {
        Construct::Act(a) => Construct::Act(map_activity(a)),
        Construct::Sequence(items) => {
            Construct::Sequence(items.iter().map(|i| rename(i, r)).collect())
        }
        Construct::Flow { branches, links } => Construct::Flow {
            branches: branches.iter().map(|b| rename(b, r)).collect(),
            links: links
                .iter()
                .map(|l| Link {
                    name: r.links[&l.name].clone(),
                    from: r.activities.get(&l.from).cloned().unwrap_or_else(|| l.from.clone()),
                    to: r.activities.get(&l.to).cloned().unwrap_or_else(|| l.to.clone()),
                    condition: l.condition.clone(),
                })
                .collect(),
        },
        Construct::Switch { branch, cases } => Construct::Switch {
            branch: map_activity(branch),
            cases: cases
                .iter()
                .map(|c| Case {
                    label: c.label.clone(),
                    body: rename(&c.body, r),
                })
                .collect(),
        },
        Construct::While { cond, body } => Construct::While {
            cond: map_activity(cond),
            body: Box::new(rename(body, r)),
        },
    }
}

fn render_activity(a: &dscweaver_model::Activity, out: &mut String) {
    use dscweaver_model::ActivityKind::*;
    match &a.kind {
        Receive { from } => {
            out.push_str("receive ");
            out.push_str(&a.name);
            out.push_str(" from ");
            out.push_str(from);
        }
        Invoke { service, port } => {
            out.push_str("invoke ");
            out.push_str(&a.name);
            out.push_str(" on ");
            out.push_str(service);
            out.push_str(&format!(" port {port}"));
        }
        Reply { to } => {
            out.push_str("reply ");
            out.push_str(&a.name);
            out.push_str(" to ");
            out.push_str(to);
        }
        Assign => {
            out.push_str("assign ");
            out.push_str(&a.name);
        }
        Branch => {
            // Rendered by the switch/while wrapper, never as a leaf.
            out.push_str("switch ");
            out.push_str(&a.name);
        }
        Empty => {
            out.push_str("empty ");
            out.push_str(&a.name);
        }
    }
    render_clauses(a, out);
}

fn render_clauses(a: &dscweaver_model::Activity, out: &mut String) {
    if !a.reads.is_empty() {
        out.push_str(" reads ");
        out.push_str(&a.reads.join(","));
    }
    if !a.writes.is_empty() {
        out.push_str(" writes ");
        out.push_str(&a.writes.join(","));
    }
}

fn render_construct(c: &Construct, out: &mut String) {
    match c {
        Construct::Act(a) => {
            render_activity(a, out);
            out.push(';');
        }
        Construct::Sequence(items) => {
            out.push_str("sequence{");
            for i in items {
                render_construct(i, out);
            }
            out.push('}');
        }
        Construct::Flow { branches, links } => {
            out.push_str("flow{");
            for b in branches {
                render_construct(b, out);
            }
            for l in links {
                out.push_str("link ");
                out.push_str(&l.name);
                out.push_str(" from ");
                out.push_str(&l.from);
                out.push_str(" to ");
                out.push_str(&l.to);
                if let Some(cond) = &l.condition {
                    out.push_str(" when ");
                    out.push_str(cond);
                }
                out.push(';');
            }
            out.push('}');
        }
        Construct::Switch { branch, cases } => {
            out.push_str("switch ");
            out.push_str(&branch.name);
            render_clauses(branch, out);
            out.push('{');
            for case in cases {
                out.push_str("case ");
                out.push_str(&case.label);
                out.push('{');
                render_construct(&case.body, out);
                out.push('}');
            }
            out.push('}');
        }
        Construct::While { cond, body } => {
            out.push_str("while ");
            out.push_str(&cond.name);
            render_clauses(cond, out);
            out.push('{');
            render_construct(body, out);
            out.push('}');
        }
    }
}

/// Computes the canonical form of submitted `.proc` text. Parse and
/// validation failures are reported with the tenant's original names.
pub fn canonicalize(text: &str) -> Result<CanonicalForm, String> {
    let process = parse_process(text).map_err(|e| format!("parse error: {e}"))?;
    let problems = process.validate();
    if !problems.is_empty() {
        let msgs: Vec<String> = problems.iter().map(|p| p.to_string()).collect();
        return Err(format!("process does not validate: {}", msgs.join("; ")));
    }
    Ok(canonicalize_process(&process))
}

/// Canonicalizes an already parsed and validated process.
pub fn canonicalize_process(process: &Process) -> CanonicalForm {
    let root = normalize(&process.root);
    let mut renaming = Renaming::default();
    renaming
        .inverse
        .insert("p0".to_string(), process.name.clone());
    bind_names(&root, &mut renaming);
    let root = rename(&root, &renaming);

    // Declarations in canonical (first-occurrence) order: the used
    // variables are exactly v0..vN, referenced service declarations keep
    // their ports/async shape under their canonical names. Unused
    // variables and unreferenced service declarations are dropped.
    let vars: Vec<String> = (0..renaming.variables.len()).map(|i| format!("v{i}")).collect();
    let mut services: Vec<ServiceDecl> = Vec::new();
    for (original, canonical) in &renaming.services {
        if let Some(decl) = process.service(original) {
            services.push(ServiceDecl {
                name: canonical.clone(),
                ports: decl.ports,
                asynchronous: decl.asynchronous,
            });
        }
    }
    services.sort_by(|a, b| {
        let ix = |name: &str| name[1..].parse::<usize>().unwrap_or(usize::MAX);
        ix(&a.name).cmp(&ix(&b.name))
    });

    let mut text = String::new();
    text.push_str("process p0{");
    if !vars.is_empty() {
        text.push_str("var ");
        text.push_str(&vars.join(","));
        text.push(';');
    }
    for s in &services {
        text.push_str("service ");
        text.push_str(&s.name);
        text.push_str(&format!("{{ports {}", s.ports));
        if s.asynchronous {
            text.push_str(" async");
        }
        text.push('}');
    }
    render_construct(&root, &mut text);
    text.push('}');

    let canonical = Process {
        name: "p0".to_string(),
        vars,
        services,
        root,
    };
    CanonicalForm {
        hash: crate::registry::content_hash(&text),
        text,
        process: canonical,
        renaming,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "process Purchasing {\n var po, au; // decls\n service Credit { ports 2 async }\n sequence {\n  receive rec_po from Client writes po;\n  invoke inv_po on Credit port 1 reads po;\n  receive rec_au from Credit writes au;\n  switch if_au reads au {\n   case T { assign ok writes po; }\n   case F { assign no writes po; }\n  }\n }\n}";

    #[test]
    fn whitespace_comments_and_decl_order_do_not_change_the_hash() {
        let spaced = BASE.replace('\n', "\n\n  ").replace("var po, au;", "var au , po ; # reordered");
        let a = canonicalize(BASE).unwrap();
        let b = canonicalize(&spaced).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(a.hash, b.hash);
    }

    #[test]
    fn alpha_renaming_does_not_change_the_hash() {
        // Shield the `port`/`ports` keywords from the `po` identifier
        // rename.
        let renamed = BASE
            .replace("Purchasing", "Proc2")
            .replace("port", "\u{1}")
            .replace("po", "order")
            .replace("au", "approval")
            .replace('\u{1}', "port")
            .replace("Credit", "Bank")
            .replace("if_", "gate_");
        let a = canonicalize(BASE).unwrap();
        let b = canonicalize(&renamed).unwrap();
        assert_eq!(a.text, b.text, "alpha-variants must share a canonical text");
        assert_eq!(a.hash, b.hash);
        // ... but render back to their own names.
        assert_eq!(a.renaming.original("p0"), Some("Purchasing"));
        assert_eq!(b.renaming.original("p0"), Some("Proc2"));
    }

    #[test]
    fn structurally_distinct_processes_do_not_collide() {
        let reordered = BASE.replace(
            "case T { assign ok writes po; }",
            "case T { assign ok writes po; assign ok2 reads au; }",
        );
        let a = canonicalize(BASE).unwrap();
        let b = canonicalize(&reordered).unwrap();
        assert_ne!(a.text, b.text);
        assert_ne!(a.hash, b.hash);
    }

    #[test]
    fn canonical_text_reparses_and_is_a_fixed_point() {
        let a = canonicalize(BASE).unwrap();
        let again = canonicalize(&a.text).unwrap();
        assert_eq!(a.text, again.text, "canonicalization must be idempotent");
        assert_eq!(a.hash, again.hash);
        assert!(a.process.validate().is_empty(), "{:?}", a.process.validate());
    }

    #[test]
    fn unused_declarations_are_dropped() {
        let noisy = BASE.replace("var po, au;", "var po, au, unused_v;")
            .replace(
                "service Credit { ports 2 async }",
                "service Credit { ports 2 async }\n service Ghost { ports 9 }",
            );
        let a = canonicalize(BASE).unwrap();
        let b = canonicalize(&noisy).unwrap();
        assert_eq!(a.hash, b.hash);
    }

    #[test]
    fn singleton_wrappers_flatten() {
        let wrapped = "process P { var x; sequence { sequence { assign a writes x; } } }";
        let bare = "process P { var x; assign a writes x; }";
        assert_eq!(
            canonicalize(wrapped).unwrap().hash,
            canonicalize(bare).unwrap().hash
        );
    }

    #[test]
    fn render_original_restores_names_tokenwise() {
        let a = canonicalize(BASE).unwrap();
        let rendered = a.renaming.render_original("a0.end < a1.start; v0, s0");
        assert_eq!(rendered, "rec_po.end < inv_po.start; po, Credit");
    }

    #[test]
    fn errors_carry_original_names() {
        let err = canonicalize("process P { var x; assign a writes y; }").unwrap_err();
        assert!(err.contains("'y'"), "{err}");
    }
}
