//! The shared prepared-artifact registry: one [`ProcessEntry`] per
//! distinct submitted process, keyed by FNV-1a content hash and evicted
//! LRU (`dscweaver_graph::lru`).
//!
//! An entry is everything the compile half of the pipeline produces,
//! cached in run-many form: the woven [`WeaverOutput`], the frozen
//! hash-consing pool snapshot ([`FrozenDnfPool`]), the Petri-net
//! validation compile half ([`CompiledValidation`]), the scheduler's
//! derived indexes ([`ScheduleTables`]) and a live [`WeaveSession`] for
//! incremental re-weaves. Warm requests skip every compile stage and go
//! straight to the run halves, which are pinned bit-identical to the
//! fresh-build paths by the component crates' equivalence tests.

use crate::trace::{TraceConfig, Tracer};
use dscweaver_core::{
    DependencySet, ReweaveReport, WeaveSession, Weaver, WeaverOutput,
};
use dscweaver_dscl::Condition;
use dscweaver_graph::{lru::LruCache, FrozenDnfPool};
use dscweaver_model::{parse_process, Process};
use dscweaver_obs as obs;
use dscweaver_petri::{CompiledValidation, ValidateOptions, ValidationReport};
use dscweaver_scheduler::{PreparedSchedule, Schedule, ScheduleTables, SimConfig};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the raw bytes of the submitted process text — the cache
/// key. The same 64-bit FNV family the re-weave session fingerprints use.
///
/// ```
/// use dscweaver_serve::registry::content_hash;
/// assert_eq!(content_hash("x"), content_hash("x"));
/// assert_ne!(content_hash("x"), content_hash("y"));
/// ```
pub fn content_hash(text: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in text.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The prepared artifacts for one distinct process, built once on a cache
/// miss and shared read-only (`Arc`) across request threads.
pub struct ProcessEntry {
    /// Content hash of the submitted text (the cache key).
    pub hash: u64,
    /// The parsed process.
    pub process: Process,
    /// The extracted dependency set the weave ran on.
    pub dependencies: DependencySet,
    /// The full optimization output (SC, ASC, minimal set, exec
    /// conditions).
    pub output: WeaverOutput,
    /// The session fingerprint of the weave (bit-stable across thread
    /// counts; identical for the daemon and one-shot paths).
    pub fingerprint: u64,
    compiled: CompiledValidation,
    tables: ScheduleTables,
    pool: FrozenDnfPool<Condition>,
    session: Mutex<WeaveSession>,
}

impl ProcessEntry {
    /// The specification front half alone: parse and validate the process
    /// text, then extract its data/control dependency set — what a
    /// re-weave revision needs before it reaches a session.
    pub fn build_dependencies(text: &str) -> Result<DependencySet, String> {
        let process = parse_process(text).map_err(|e| format!("parse error: {e}"))?;
        let problems = process.validate();
        if !problems.is_empty() {
            let msgs: Vec<String> = problems.iter().map(|p| p.to_string()).collect();
            return Err(format!("process does not validate: {}", msgs.join("; ")));
        }
        Ok(dscweaver_pdg::extract(
            &process,
            dscweaver_pdg::ExtractOptions {
                data: true,
                control: true,
                services_from_decls: false,
            },
        ))
    }

    /// Compiles the full entry from submitted process text: parse →
    /// dependency extraction → weave → validation/scheduler compile
    /// halves. Runs under a `serve.compile` span.
    pub fn build(text: &str, threads: usize) -> Result<ProcessEntry, String> {
        let hash = content_hash(text);
        let _span = obs::span_with("serve.compile", || format!("hash={hash:016x}"));
        let _phase = crate::trace::phase("serve.compile");
        let t0 = std::time::Instant::now();
        let process = parse_process(text).map_err(|e| format!("parse error: {e}"))?;
        let problems = process.validate();
        if !problems.is_empty() {
            let msgs: Vec<String> = problems.iter().map(|p| p.to_string()).collect();
            return Err(format!("process does not validate: {}", msgs.join("; ")));
        }
        let dependencies = dscweaver_pdg::extract(
            &process,
            dscweaver_pdg::ExtractOptions {
                data: true,
                control: true,
                services_from_decls: false,
            },
        );
        let mut session = Weaver {
            threads,
            ..Weaver::new()
        }
        .session();
        let report = session
            .weave(&dependencies)
            .map_err(|e| format!("weave error: {e}"))?;
        let output = session.output().expect("successful weave has output").clone();
        let pool = session.frozen_pool().expect("successful weave has a pool");
        let compiled = CompiledValidation::compile(&output.minimal, &output.exec);
        let tables = ScheduleTables::derive(&output.minimal, &output.exec);
        obs::histogram("serve.compile").observe(t0.elapsed().as_nanos() as u64);
        Ok(ProcessEntry {
            hash,
            process,
            dependencies,
            output,
            fingerprint: report.fingerprint,
            compiled,
            tables,
            pool,
            session: Mutex::new(session),
        })
    }

    /// Runs the cached validation compile half. Bit-identical to a fresh
    /// `petri::validate` on the minimal set.
    pub fn validate(&self, threads: usize) -> ValidationReport {
        self.compiled.run(&ValidateOptions {
            threads,
            ..Default::default()
        })
    }

    /// Simulates the minimal set on the cached scheduler indexes.
    /// Bit-identical to a fresh `PreparedSchedule::new(..).run(..)`.
    pub fn simulate(&self, branches: &[(String, String)], threads: usize) -> Schedule {
        let mut sim = SimConfig {
            threads,
            ..SimConfig::default()
        };
        for (g, v) in branches {
            sim.oracle.insert(g.clone(), v.clone());
        }
        PreparedSchedule::with_tables(&self.output.minimal, &self.output.exec, &self.tables)
            .run(&sim)
    }

    /// Advances this entry's live re-weave session to a new dependency
    /// revision, paying the incremental (delta) cost when the diff
    /// allows. Results are always identical to a fresh weave of the
    /// revision.
    pub fn reweave(&self, ds: &DependencySet) -> Result<ReweaveReport, String> {
        let mut session = self.session.lock().expect("session lock poisoned");
        session.weave(ds).map_err(|e| format!("weave error: {e}"))
    }

    /// The frozen hash-consing pool snapshot of the weave — shareable
    /// across threads, with pool numbering identical to the single-owner
    /// path.
    pub fn pool(&self) -> &FrozenDnfPool<Condition> {
        &self.pool
    }
}

/// Counters the registry exposes via `/v1/stats`.
///
/// `hits`/`misses`/`evictions`/`served`/`rejected` are cumulative since
/// daemon start; `entries`/`capacity`/`in_flight` are instantaneous.
/// `in_flight` counts only **process-keyed** requests (weave, validate,
/// simulate, reweave) currently executing — read-only endpoints
/// (`/v1/stats`, `/healthz`, `/metrics`, `/v1/traces`) are never
/// admitted into the gauge, so a stats probe no longer counts itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegistryStats {
    /// Entries currently cached.
    pub entries: usize,
    /// LRU capacity.
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Process-keyed requests currently being served.
    pub in_flight: u64,
    /// Process-keyed requests completed (any status except 429).
    pub served: u64,
    /// Process-keyed requests rejected with `429` by the back-pressure
    /// ceiling.
    pub rejected: u64,
}

impl RegistryStats {
    /// The per-counter difference `self − earlier` for the cumulative
    /// fields; instantaneous fields (`entries`, `capacity`, `in_flight`)
    /// keep `self`'s values. This is what `/v1/stats?since=SEQ` returns.
    pub fn delta_since(&self, earlier: &RegistryStats) -> RegistryStats {
        RegistryStats {
            entries: self.entries,
            capacity: self.capacity,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            in_flight: self.in_flight,
            served: self.served - earlier.served,
            rejected: self.rejected - earlier.rejected,
        }
    }
}

/// How many `/v1/stats` snapshots the registry retains for
/// `?since=SEQ` diffing.
pub const STATS_RING: usize = 64;

/// The shared, thread-safe artifact cache. Lookups are keyed by
/// [`content_hash`]; misses compile outside the cache lock, so concurrent
/// misses on *different* processes compile in parallel. Two racing misses
/// on the *same* process both compile and the later insert wins —
/// harmless, because entries for the same text are deterministic.
/// Failed compiles (parse errors, conflicts) are not cached.
pub struct Registry {
    inner: Mutex<LruCache<u64, Arc<ProcessEntry>>>,
    threads: usize,
    max_in_flight: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    in_flight: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    tracer: Tracer,
    stats_seq: AtomicU64,
    stats_ring: Mutex<VecDeque<(u64, RegistryStats)>>,
}

impl Registry {
    /// A registry evicting beyond `capacity` entries, compiling and
    /// running with the given worker-thread count (`0` = auto).
    /// Back-pressure is off (no in-flight ceiling) and request tracing
    /// is disabled; the daemon opts in via [`Registry::with_max_in_flight`]
    /// and [`Registry::with_trace_config`].
    pub fn new(capacity: usize, threads: usize) -> Registry {
        Registry {
            inner: Mutex::new(LruCache::new(capacity.max(1))),
            threads,
            max_in_flight: 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            tracer: Tracer::new(TraceConfig::disabled()),
            stats_seq: AtomicU64::new(0),
            stats_ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Sets the back-pressure ceiling: process-keyed requests beyond
    /// `max` concurrently in flight are rejected with `429` (`0` =
    /// unlimited).
    pub fn with_max_in_flight(mut self, max: u64) -> Registry {
        self.max_in_flight = max;
        self
    }

    /// Replaces the request tracer's tail-sampling configuration.
    pub fn with_trace_config(mut self, config: TraceConfig) -> Registry {
        self.tracer = Tracer::new(config);
        self
    }

    /// The worker-thread knob requests run with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The back-pressure ceiling (`0` = unlimited).
    pub fn max_in_flight(&self) -> u64 {
        self.max_in_flight
    }

    /// The request tracer (tail-sampled span trees for `/v1/traces`).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Looks up an already-cached entry by hash without building.
    pub fn get(&self, hash: u64) -> Option<Arc<ProcessEntry>> {
        let mut cache = self.inner.lock().expect("registry lock poisoned");
        cache.get(&hash).cloned()
    }

    /// The hit-or-compile path every process-keyed request goes through.
    /// Returns the entry plus whether it was served from the cache.
    pub fn lookup_or_build(&self, text: &str) -> Result<(Arc<ProcessEntry>, bool), String> {
        let hash = content_hash(text);
        {
            let _span = obs::span_with("serve.lookup", || format!("hash={hash:016x}"));
            let _phase = crate::trace::phase("serve.lookup");
            let mut cache = self.inner.lock().expect("registry lock poisoned");
            if let Some(entry) = cache.get(&hash) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter_add("serve.cache_hits", 1);
                return Ok((entry.clone(), true));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("serve.cache_misses", 1);
        let entry = Arc::new(ProcessEntry::build(text, self.threads)?);
        let mut cache = self.inner.lock().expect("registry lock poisoned");
        let before = cache.evictions();
        cache.insert(hash, entry.clone());
        let evicted = cache.evictions() - before;
        if evicted > 0 {
            obs::counter_add("serve.evictions", evicted);
        }
        Ok((entry, false))
    }

    /// Marks a process-keyed request entering service; pair with
    /// [`Registry::leave`]. Returns the in-flight count *including* this
    /// request, which the service layer compares against
    /// [`Registry::max_in_flight`] for the 429 admission decision.
    pub fn enter(&self) -> u64 {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        obs::gauge_set("serve.in_flight", now as f64);
        now
    }

    /// Marks a process-keyed request leaving service.
    pub fn leave(&self) {
        let now = self.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
        obs::gauge_set("serve.in_flight", now as f64);
    }

    /// Counts one completed process-keyed request.
    pub fn note_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("serve.served", 1);
    }

    /// Counts one request rejected by the back-pressure ceiling.
    pub fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("serve.rejected", 1);
    }

    /// A consistent snapshot of the cache counters.
    pub fn stats(&self) -> RegistryStats {
        let cache = self.inner.lock().expect("registry lock poisoned");
        RegistryStats {
            entries: cache.len(),
            capacity: cache.capacity(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: cache.evictions(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// The `/v1/stats` snapshot-diff protocol: stamps a fresh snapshot
    /// sequence number, retains the cumulative counters in a bounded ring
    /// (last [`STATS_RING`] snapshots), and returns `(seq, stats)` —
    /// cumulative when `since` is `None`, or the counter delta relative
    /// to the earlier snapshot `since` refers to. An unknown or evicted
    /// `since` is an error (the client should re-baseline with a plain
    /// `/v1/stats`).
    pub fn stats_since(&self, since: Option<u64>) -> Result<(u64, RegistryStats), String> {
        let now = self.stats();
        let seq = self.stats_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut ring = self.stats_ring.lock().expect("stats ring poisoned");
        let out = match since {
            None => now,
            Some(s) => {
                let earlier = ring
                    .iter()
                    .find(|(q, _)| *q == s)
                    .map(|(_, stats)| *stats)
                    .ok_or_else(|| {
                        format!("unknown stats snapshot {s} (expired or never issued; re-baseline with GET /v1/stats)")
                    })?;
                now.delta_since(&earlier)
            }
        };
        if ring.len() >= STATS_RING {
            ring.pop_front();
        }
        ring.push_back((seq, now));
        Ok((seq, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROC: &str = "process P {\n var x;\n sequence { assign a writes x; assign b reads x; }\n}";

    #[test]
    fn lookup_compiles_then_hits() {
        let reg = Registry::new(4, 1);
        let (first, hit1) = reg.lookup_or_build(PROC).unwrap();
        assert!(!hit1);
        let (second, hit2) = reg.lookup_or_build(PROC).unwrap();
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn eviction_recompiles_and_matches() {
        let reg = Registry::new(1, 1);
        let (first, _) = reg.lookup_or_build(PROC).unwrap();
        // A second distinct process evicts the first (capacity 1).
        let other = PROC.replace("process P", "process Q");
        reg.lookup_or_build(&other).unwrap();
        assert_eq!(reg.stats().evictions, 1);
        assert!(reg.get(first.hash).is_none());
        // Re-requesting recompiles to identical artifacts.
        let (again, hit) = reg.lookup_or_build(PROC).unwrap();
        assert!(!hit);
        assert_eq!(again.hash, first.hash);
        assert_eq!(again.fingerprint, first.fingerprint);
        assert_eq!(again.output.minimal.to_dscl(), first.output.minimal.to_dscl());
        assert_eq!(again.pool().dnf_count(), first.pool().dnf_count());
    }

    #[test]
    fn bad_process_is_an_error_not_a_cache_entry() {
        let reg = Registry::new(4, 1);
        assert!(reg.lookup_or_build("process {").is_err());
        assert_eq!(reg.stats().entries, 0);
    }

    #[test]
    fn stats_since_diffs_against_the_named_snapshot() {
        let reg = Registry::new(4, 1);
        reg.lookup_or_build(PROC).unwrap();
        let (seq1, baseline) = reg.stats_since(None).unwrap();
        assert_eq!((baseline.hits, baseline.misses), (0, 1));
        reg.lookup_or_build(PROC).unwrap();
        reg.lookup_or_build(PROC).unwrap();
        let (seq2, delta) = reg.stats_since(Some(seq1)).unwrap();
        assert!(seq2 > seq1);
        // Only the activity since the baseline snapshot.
        assert_eq!((delta.hits, delta.misses, delta.evictions), (2, 0, 0));
        // Instantaneous fields stay absolute.
        assert_eq!(delta.entries, 1);
        // Unknown tokens are an explicit error, not silently cumulative.
        assert!(reg.stats_since(Some(9999)).is_err());
    }
}
