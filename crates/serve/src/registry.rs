//! The shared prepared-artifact registry: one [`ProcessEntry`] per
//! distinct **canonical** process, behind a two-level cache keyed by
//! content hash and evicted LRU (`dscweaver_graph::lru`).
//!
//! Lookups run in two levels. The **raw memo** maps the FNV-1a hash of
//! the submitted text to its canonicalization result (canonical hash +
//! [`Renaming`]), so a repeated byte-identical request skips parsing
//! entirely. The **canonical cache** maps the canonical hash (see
//! [`crate::canon`]) to the compiled [`ProcessEntry`], so textual
//! variants of one process — reordered declarations, renamed services or
//! activities, whitespace, comments — share a single compiled entry. A
//! raw-miss/canonical-hit is counted in `canonical_hits` and surfaces as
//! `X-Cache: canonical` at the transport.
//!
//! An entry is everything the compile half of the pipeline produces,
//! cached in run-many form: the woven [`WeaverOutput`], the frozen
//! hash-consing pool snapshot ([`FrozenDnfPool`]), the Petri-net
//! validation compile half ([`CompiledValidation`]), the scheduler's
//! derived indexes ([`ScheduleTables`]) and a live [`WeaveSession`] for
//! incremental re-weaves — all in canonical names; responses are rendered
//! back into each tenant's names through the request's [`Renaming`].
//! Warm requests skip every compile stage and go straight to the run
//! halves, which are pinned bit-identical to the fresh-build paths by the
//! component crates' equivalence tests.

use crate::canon::{canonicalize, CanonicalForm, Renaming};
use crate::trace::{TraceConfig, Tracer};
use dscweaver_core::{
    DependencySet, ReweaveReport, WeaveSession, Weaver, WeaverOutput,
};
use dscweaver_dscl::Condition;
use dscweaver_graph::{lru::LruCache, FrozenDnfPool};
use dscweaver_model::Process;
use dscweaver_obs as obs;
use dscweaver_petri::{CompiledValidation, ValidateOptions, ValidationReport};
use dscweaver_scheduler::{PreparedSchedule, Schedule, ScheduleTables, SimConfig};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the raw bytes of the submitted process text — the
/// first-level (raw memo) cache key, and, applied to canonical text, the
/// second-level key. The same 64-bit FNV family the re-weave session
/// fingerprints use.
///
/// ```
/// use dscweaver_serve::registry::content_hash;
/// assert_eq!(content_hash("x"), content_hash("x"));
/// assert_ne!(content_hash("x"), content_hash("y"));
/// ```
pub fn content_hash(text: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in text.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The prepared artifacts for one distinct canonical process, built once
/// on a cache miss and shared read-only (`Arc`) across request threads
/// and across tenants whose submissions canonicalize identically.
pub struct ProcessEntry {
    /// Canonical content hash (the second-level cache key).
    pub hash: u64,
    /// The canonical process (canonical names; see [`crate::canon`]).
    pub process: Process,
    /// The extracted dependency set the weave ran on (canonical names).
    pub dependencies: DependencySet,
    /// The full optimization output (SC, ASC, minimal set, exec
    /// conditions), in canonical names.
    pub output: WeaverOutput,
    /// The session fingerprint of the weave (bit-stable across thread
    /// counts; identical for the daemon and one-shot paths).
    pub fingerprint: u64,
    compiled: CompiledValidation,
    tables: ScheduleTables,
    pool: FrozenDnfPool<Condition>,
    session: Mutex<WeaveSession>,
}

/// Extracts the data/control dependency set of a process the way every
/// serve request does.
pub(crate) fn extract(process: &Process) -> DependencySet {
    dscweaver_pdg::extract(
        process,
        dscweaver_pdg::ExtractOptions {
            data: true,
            control: true,
            services_from_decls: false,
        },
    )
}

impl ProcessEntry {
    /// The specification front half alone: canonicalize the process text
    /// (parse + validate, with errors in the tenant's names), then
    /// extract the canonical revision's data/control dependency set —
    /// what a re-weave revision needs before it reaches a session.
    pub fn build_dependencies(text: &str) -> Result<DependencySet, String> {
        Ok(extract(&canonicalize(text)?.process))
    }

    /// Compiles the full entry from submitted process text: canonicalize
    /// → dependency extraction → weave → validation/scheduler compile
    /// halves.
    pub fn build(text: &str, threads: usize) -> Result<ProcessEntry, String> {
        Self::build_canonical(&canonicalize(text)?, threads)
    }

    /// Compiles the full entry from an already-computed canonical form.
    /// Runs under a `serve.compile` span.
    pub fn build_canonical(form: &CanonicalForm, threads: usize) -> Result<ProcessEntry, String> {
        let hash = form.hash;
        let _span = obs::span_with("serve.compile", || format!("hash={hash:016x}"));
        let _phase = crate::trace::phase("serve.compile");
        let t0 = std::time::Instant::now();
        let dependencies = extract(&form.process);
        let mut session = Weaver {
            threads,
            ..Weaver::new()
        }
        .session();
        let report = session
            .weave(&dependencies)
            .map_err(|e| format!("weave error: {e}"))?;
        let output = session.output().expect("successful weave has output").clone();
        let pool = session.frozen_pool().expect("successful weave has a pool");
        let compiled = CompiledValidation::compile(&output.minimal, &output.exec);
        let tables = ScheduleTables::derive(&output.minimal, &output.exec);
        obs::histogram("serve.compile").observe(t0.elapsed().as_nanos() as u64);
        Ok(ProcessEntry {
            hash,
            process: form.process.clone(),
            dependencies,
            output,
            fingerprint: report.fingerprint,
            compiled,
            tables,
            pool,
            session: Mutex::new(session),
        })
    }

    /// Runs the cached validation compile half. Bit-identical to a fresh
    /// `petri::validate` on the minimal set.
    pub fn validate(&self, threads: usize) -> ValidationReport {
        self.compiled.run(&ValidateOptions {
            threads,
            ..Default::default()
        })
    }

    /// Simulates the minimal set on the cached scheduler indexes, under a
    /// branch oracle in **canonical** guard names. Bit-identical to a
    /// fresh `PreparedSchedule::new(..).run(..)`.
    pub fn simulate(&self, branches: &[(String, String)], threads: usize) -> Schedule {
        let mut sim = SimConfig {
            threads,
            ..SimConfig::default()
        };
        for (g, v) in branches {
            sim.oracle.insert(g.clone(), v.clone());
        }
        PreparedSchedule::with_tables(&self.output.minimal, &self.output.exec, &self.tables)
            .run(&sim)
    }

    /// Advances this entry's live re-weave session to a new dependency
    /// revision, paying the incremental (delta) cost when the diff
    /// allows. Results are always identical to a fresh weave of the
    /// revision.
    pub fn reweave(&self, ds: &DependencySet) -> Result<ReweaveReport, String> {
        let mut session = self.session.lock().expect("session lock poisoned");
        session.weave(ds).map_err(|e| format!("weave error: {e}"))
    }

    /// The frozen hash-consing pool snapshot of the weave — shareable
    /// across threads, with pool numbering identical to the single-owner
    /// path.
    pub fn pool(&self) -> &FrozenDnfPool<Condition> {
        &self.pool
    }
}

/// How a [`Registry::lookup_or_build`] was answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupStatus {
    /// The raw-text memo knew this exact submission (no parse needed).
    Hit,
    /// New text, but it canonicalized onto an already-compiled entry
    /// (cross-tenant artifact sharing).
    Canonical,
    /// Compiled on this request.
    Miss,
}

/// A resolved lookup: the shared entry, the submission's identifier maps
/// (for rendering responses in the tenant's names), and how it was found.
pub struct Lookup {
    /// The shared prepared-artifact entry (canonical names).
    pub entry: Arc<ProcessEntry>,
    /// This submission's renaming onto the canonical form.
    pub renaming: Arc<Renaming>,
    /// Cache disposition.
    pub status: LookupStatus,
}

/// Counters the registry exposes via `/v1/stats`.
///
/// `hits`/`canonical_hits`/`misses`/`evictions`/`served`/`rejected` are
/// cumulative since daemon start; `entries`/`capacity`/`in_flight` are
/// instantaneous. `hits` counts raw-memo hits (byte-identical re-
/// submissions); `canonical_hits` counts raw-miss lookups answered by an
/// existing canonical entry (a textual variant sharing another tenant's
/// artifacts); `misses` counts compiles. `in_flight` counts only
/// **process-keyed** requests (weave, validate, simulate, reweave)
/// currently executing — read-only endpoints (`/v1/stats`, `/healthz`,
/// `/metrics`, `/v1/traces`) are never admitted into the gauge, so a
/// stats probe no longer counts itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegistryStats {
    /// Canonical entries currently cached.
    pub entries: usize,
    /// Canonical LRU capacity.
    pub capacity: usize,
    /// Lookups answered from the raw-text memo.
    pub hits: u64,
    /// New-text lookups answered from an existing canonical entry.
    pub canonical_hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Canonical entries evicted by the LRU policy.
    pub evictions: u64,
    /// Process-keyed requests currently being served.
    pub in_flight: u64,
    /// Process-keyed requests completed (any status except 429).
    pub served: u64,
    /// Process-keyed requests rejected with `429` by the back-pressure
    /// ceiling.
    pub rejected: u64,
}

impl RegistryStats {
    /// The per-counter difference `self − earlier` for the cumulative
    /// fields; instantaneous fields (`entries`, `capacity`, `in_flight`)
    /// keep `self`'s values. This is what `/v1/stats?since=SEQ` returns.
    pub fn delta_since(&self, earlier: &RegistryStats) -> RegistryStats {
        RegistryStats {
            entries: self.entries,
            capacity: self.capacity,
            hits: self.hits - earlier.hits,
            canonical_hits: self.canonical_hits - earlier.canonical_hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            in_flight: self.in_flight,
            served: self.served - earlier.served,
            rejected: self.rejected - earlier.rejected,
        }
    }
}

/// How many `/v1/stats` snapshots the registry retains for
/// `?since=SEQ` diffing.
pub const STATS_RING: usize = 64;

/// How many raw-text memos the registry keeps per canonical cache slot —
/// several textual variants of one process can stay memoized at once.
pub const RAW_MEMO_PER_ENTRY: usize = 4;

/// One raw-text memo: where this exact byte sequence canonicalized to.
struct RawMemo {
    canonical_hash: u64,
    renaming: Arc<Renaming>,
}

/// The shared, thread-safe artifact cache. Lookups go raw memo →
/// canonical cache → compile; misses compile outside the cache locks, so
/// concurrent misses on *different* processes compile in parallel. Two
/// racing misses on the *same* canonical process both compile and the
/// later insert wins — harmless, because entries for the same canonical
/// text are deterministic. Failed compiles (parse errors, conflicts) are
/// not cached.
pub struct Registry {
    raw: Mutex<LruCache<u64, Arc<RawMemo>>>,
    inner: Mutex<LruCache<u64, Arc<ProcessEntry>>>,
    threads: usize,
    max_in_flight: u64,
    hits: AtomicU64,
    canonical_hits: AtomicU64,
    misses: AtomicU64,
    in_flight: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    tracer: Tracer,
    stats_seq: AtomicU64,
    stats_ring: Mutex<VecDeque<(u64, RegistryStats)>>,
}

impl Registry {
    /// A registry evicting beyond `capacity` canonical entries (the raw
    /// memo holds [`RAW_MEMO_PER_ENTRY`]× as many text variants),
    /// compiling and running with the given worker-thread count (`0` =
    /// auto). Back-pressure is off (no in-flight ceiling) and request
    /// tracing is disabled; the daemon opts in via
    /// [`Registry::with_max_in_flight`] and [`Registry::with_trace_config`].
    pub fn new(capacity: usize, threads: usize) -> Registry {
        let capacity = capacity.max(1);
        Registry {
            raw: Mutex::new(LruCache::new(capacity * RAW_MEMO_PER_ENTRY)),
            inner: Mutex::new(LruCache::new(capacity)),
            threads,
            max_in_flight: 0,
            hits: AtomicU64::new(0),
            canonical_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            tracer: Tracer::new(TraceConfig::disabled()),
            stats_seq: AtomicU64::new(0),
            stats_ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Sets the back-pressure ceiling: process-keyed requests beyond
    /// `max` concurrently in flight are rejected with `429` (`0` =
    /// unlimited).
    pub fn with_max_in_flight(mut self, max: u64) -> Registry {
        self.max_in_flight = max;
        self
    }

    /// Replaces the request tracer's tail-sampling configuration.
    pub fn with_trace_config(mut self, config: TraceConfig) -> Registry {
        self.tracer = Tracer::new(config);
        self
    }

    /// The worker-thread knob requests run with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The back-pressure ceiling (`0` = unlimited).
    pub fn max_in_flight(&self) -> u64 {
        self.max_in_flight
    }

    /// The request tracer (tail-sampled span trees for `/v1/traces`).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Looks up an already-cached entry by **canonical** hash without
    /// building (this is what `/v1/reweave?base=` resolves).
    pub fn get(&self, hash: u64) -> Option<Arc<ProcessEntry>> {
        let mut cache = self.inner.lock().expect("registry lock poisoned");
        cache.get(&hash).cloned()
    }

    /// The hit-or-compile path every process-keyed request goes through:
    /// raw memo → canonical cache → compile.
    pub fn lookup_or_build(&self, text: &str) -> Result<Lookup, String> {
        let raw_hash = content_hash(text);
        {
            let _span = obs::span_with("serve.lookup", || format!("raw={raw_hash:016x}"));
            let _phase = crate::trace::phase("serve.lookup");
            let mut raw = self.raw.lock().expect("raw memo lock poisoned");
            if let Some(memo) = raw.get(&raw_hash).cloned() {
                // Lock order is always raw → inner.
                let mut cache = self.inner.lock().expect("registry lock poisoned");
                if let Some(entry) = cache.get(&memo.canonical_hash) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    obs::counter_add("serve.cache_hits", 1);
                    return Ok(Lookup {
                        entry: entry.clone(),
                        renaming: memo.renaming.clone(),
                        status: LookupStatus::Hit,
                    });
                }
                // The canonical entry was evicted under this memo: fall
                // through to the slow path, which re-compiles and
                // refreshes the memo.
            }
        }
        let form = canonicalize(text)?;
        let renaming = Arc::new(form.renaming.clone());
        {
            let mut cache = self.inner.lock().expect("registry lock poisoned");
            if let Some(entry) = cache.get(&form.hash) {
                let entry = entry.clone();
                drop(cache);
                self.canonical_hits.fetch_add(1, Ordering::Relaxed);
                obs::counter_add("serve.canonical_hits", 1);
                self.memoize_raw(raw_hash, form.hash, &renaming);
                return Ok(Lookup {
                    entry,
                    renaming,
                    status: LookupStatus::Canonical,
                });
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("serve.cache_misses", 1);
        let entry = Arc::new(ProcessEntry::build_canonical(&form, self.threads)?);
        let mut cache = self.inner.lock().expect("registry lock poisoned");
        let before = cache.evictions();
        cache.insert(form.hash, entry.clone());
        let evicted = cache.evictions() - before;
        drop(cache);
        if evicted > 0 {
            obs::counter_add("serve.evictions", evicted);
        }
        self.memoize_raw(raw_hash, form.hash, &renaming);
        Ok(Lookup {
            entry,
            renaming,
            status: LookupStatus::Miss,
        })
    }

    fn memoize_raw(&self, raw_hash: u64, canonical_hash: u64, renaming: &Arc<Renaming>) {
        let mut raw = self.raw.lock().expect("raw memo lock poisoned");
        raw.insert(
            raw_hash,
            Arc::new(RawMemo {
                canonical_hash,
                renaming: renaming.clone(),
            }),
        );
    }

    /// Marks a process-keyed request entering service; pair with
    /// [`Registry::leave`]. Returns the in-flight count *including* this
    /// request, which the service layer compares against
    /// [`Registry::max_in_flight`] for the 429 admission decision.
    pub fn enter(&self) -> u64 {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        obs::gauge_set("serve.in_flight", now as f64);
        now
    }

    /// Marks a process-keyed request leaving service.
    pub fn leave(&self) {
        let now = self.in_flight.fetch_sub(1, Ordering::Relaxed) - 1;
        obs::gauge_set("serve.in_flight", now as f64);
    }

    /// Counts one completed process-keyed request.
    pub fn note_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("serve.served", 1);
    }

    /// Counts one request rejected by the back-pressure ceiling.
    pub fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        obs::counter_add("serve.rejected", 1);
    }

    /// A consistent snapshot of the cache counters.
    pub fn stats(&self) -> RegistryStats {
        let cache = self.inner.lock().expect("registry lock poisoned");
        RegistryStats {
            entries: cache.len(),
            capacity: cache.capacity(),
            hits: self.hits.load(Ordering::Relaxed),
            canonical_hits: self.canonical_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: cache.evictions(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// The `/v1/stats` snapshot-diff protocol: stamps a fresh snapshot
    /// sequence number, retains the cumulative counters in a bounded ring
    /// (last [`STATS_RING`] snapshots), and returns `(seq, stats)` —
    /// cumulative when `since` is `None`, or the counter delta relative
    /// to the earlier snapshot `since` refers to. An unknown or evicted
    /// `since` is an error (the client should re-baseline with a plain
    /// `/v1/stats`).
    pub fn stats_since(&self, since: Option<u64>) -> Result<(u64, RegistryStats), String> {
        let now = self.stats();
        let seq = self.stats_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut ring = self.stats_ring.lock().expect("stats ring poisoned");
        let out = match since {
            None => now,
            Some(s) => {
                let earlier = ring
                    .iter()
                    .find(|(q, _)| *q == s)
                    .map(|(_, stats)| *stats)
                    .ok_or_else(|| {
                        format!("unknown stats snapshot {s} (expired or never issued; re-baseline with GET /v1/stats)")
                    })?;
                now.delta_since(&earlier)
            }
        };
        if ring.len() >= STATS_RING {
            ring.pop_front();
        }
        ring.push_back((seq, now));
        Ok((seq, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROC: &str = "process P {\n var x;\n sequence { assign a writes x; assign b reads x; }\n}";

    #[test]
    fn lookup_compiles_then_hits() {
        let reg = Registry::new(4, 1);
        let first = reg.lookup_or_build(PROC).unwrap();
        assert_eq!(first.status, LookupStatus::Miss);
        let second = reg.lookup_or_build(PROC).unwrap();
        assert_eq!(second.status, LookupStatus::Hit);
        assert!(Arc::ptr_eq(&first.entry, &second.entry));
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.canonical_hits, 0);
    }

    #[test]
    fn textual_variants_share_one_canonical_entry() {
        let reg = Registry::new(4, 1);
        let first = reg.lookup_or_build(PROC).unwrap();
        // Renamed identifiers + comment + whitespace: new raw text, same
        // canonical process.
        let variant =
            "process Q { # variant\n var y;\n sequence { assign a1 writes y;\n   assign b1 reads y; }\n}";
        assert_ne!(content_hash(PROC), content_hash(variant));
        let shared = reg.lookup_or_build(variant).unwrap();
        assert_eq!(shared.status, LookupStatus::Canonical);
        assert!(Arc::ptr_eq(&first.entry, &shared.entry));
        // Each submission keeps its own names for rendering.
        assert_eq!(first.renaming.original("p0"), Some("P"));
        assert_eq!(shared.renaming.original("p0"), Some("Q"));
        // Re-submitting the variant byte-identically is now a raw hit.
        assert_eq!(reg.lookup_or_build(variant).unwrap().status, LookupStatus::Hit);
        let stats = reg.stats();
        assert_eq!(
            (stats.hits, stats.canonical_hits, stats.misses, stats.entries),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn eviction_recompiles_and_matches() {
        let reg = Registry::new(1, 1);
        let first = reg.lookup_or_build(PROC).unwrap();
        // A second distinct process evicts the first (capacity 1).
        let other = PROC.replace("assign b reads x;", "assign b reads x; assign c reads x;");
        reg.lookup_or_build(&other).unwrap();
        assert_eq!(reg.stats().evictions, 1);
        assert!(reg.get(first.entry.hash).is_none());
        // Re-requesting recompiles to identical artifacts (the stale raw
        // memo does not resurrect the evicted entry).
        let again = reg.lookup_or_build(PROC).unwrap();
        assert_eq!(again.status, LookupStatus::Miss);
        assert_eq!(again.entry.hash, first.entry.hash);
        assert_eq!(again.entry.fingerprint, first.entry.fingerprint);
        assert_eq!(
            again.entry.output.minimal.to_dscl(),
            first.entry.output.minimal.to_dscl()
        );
        assert_eq!(again.entry.pool().dnf_count(), first.entry.pool().dnf_count());
    }

    #[test]
    fn bad_process_is_an_error_not_a_cache_entry() {
        let reg = Registry::new(4, 1);
        assert!(reg.lookup_or_build("process {").is_err());
        assert_eq!(reg.stats().entries, 0);
    }

    #[test]
    fn stats_since_diffs_against_the_named_snapshot() {
        let reg = Registry::new(4, 1);
        reg.lookup_or_build(PROC).unwrap();
        let (seq1, baseline) = reg.stats_since(None).unwrap();
        assert_eq!((baseline.hits, baseline.misses), (0, 1));
        reg.lookup_or_build(PROC).unwrap();
        reg.lookup_or_build(PROC).unwrap();
        let (seq2, delta) = reg.stats_since(Some(seq1)).unwrap();
        assert!(seq2 > seq1);
        // Only the activity since the baseline snapshot.
        assert_eq!((delta.hits, delta.misses, delta.evictions), (2, 0, 0));
        // Instantaneous fields stay absolute.
        assert_eq!(delta.entries, 1);
        // Unknown tokens are an explicit error, not silently cumulative.
        assert!(reg.stats_since(Some(9999)).is_err());
    }
}
