//! A minimal HTTP/1.1 reader/writer, in the spirit of `dscweaver-xml`:
//! just enough of the protocol for the weaver daemon's wire format —
//! request line, headers, `Content-Length` bodies — with no external
//! dependencies. Requests and responses are `Connection: close`; the
//! daemon answers exactly one request per connection.

use std::io::{BufRead, Write};

/// Largest request body the daemon accepts, in bytes. Oversized requests
/// are rejected with `413 Payload Too Large` before the body is read.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed HTTP request: method, split target, headers and body.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target, before any `?`.
    pub path: String,
    /// Decoded query parameters in order of appearance. Splitting is
    /// plain `&`/`=` — the daemon's parameter values (`g=T` branch picks,
    /// hexadecimal hashes) never need percent-encoding.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header value with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All query values for the given key, in order.
    pub fn query_all(&self, key: &str) -> Vec<&str> {
        self.query
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// First query value for the given key.
    pub fn query_first(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// What went wrong while reading a request. Carries the HTTP status the
/// daemon should answer with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpError {
    /// Response status code (400, 413, ...).
    pub status: u16,
    /// Human-readable reason, sent in the error body.
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// Reads one HTTP/1.1 request from `stream`.
///
/// ```
/// use dscweaver_serve::http::read_request;
/// let raw = b"POST /v1/weave?x=1 HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
/// let req = read_request(&mut &raw[..]).unwrap();
/// assert_eq!(req.method, "POST");
/// assert_eq!(req.path, "/v1/weave");
/// assert_eq!(req.query_first("x"), Some("1"));
/// assert_eq!(req.body, b"hi");
/// ```
pub fn read_request(stream: &mut impl BufRead) -> Result<HttpRequest, HttpError> {
    let mut line = String::new();
    stream
        .read_line(&mut line)
        .map_err(|e| HttpError::bad(format!("read error: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing request target"))?
        .to_string();
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.clone(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut hl = String::new();
        stream
            .read_line(&mut hl)
            .map_err(|e| HttpError::bad(format!("read error: {e}")))?;
        let hl = hl.trim_end();
        if hl.is_empty() {
            break;
        }
        let Some((name, value)) = hl.split_once(':') else {
            return Err(HttpError::bad(format!("malformed header '{hl}'")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::bad("bad content-length"))?;
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY {
        return Err(HttpError {
            status: 413,
            message: format!("body of {content_length} bytes exceeds the {MAX_BODY} cap"),
        });
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(stream, &mut body)
        .map_err(|e| HttpError::bad(format!("short body: {e}")))?;
    Ok(HttpRequest {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// The standard reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Writes one HTTP/1.1 response with the given content type, extra
/// headers and body, always `Connection: close`.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (n, v) in extra_headers {
        out.push_str(n);
        out.push_str(": ");
        out.push_str(v);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    stream.write_all(out.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_with_query_and_body() {
        let raw =
            b"POST /v1/simulate?branch=g:T&branch=h:F HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/simulate");
        assert_eq!(req.query_all("branch"), vec!["g:T", "h:F"]);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let raw = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        let err = read_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.status, 413);
        let raw = b"POST / HTTP/1.1\r\nnocolon\r\n\r\n";
        assert_eq!(read_request(&mut &raw[..]).unwrap_err().status, 400);
    }

    #[test]
    fn response_round_trips() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "application/json", &[("x-cache", "hit")], "{}").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("x-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        assert_eq!(reason(429), "Too Many Requests");
    }
}
