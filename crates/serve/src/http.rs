//! A minimal HTTP/1.1 reader/writer, in the spirit of `dscweaver-xml`:
//! just enough of the protocol for the weaver daemon's wire format —
//! request line, headers, `Content-Length` bodies — with no external
//! dependencies.
//!
//! The parser is **incremental**: [`parse_buffered`] inspects a byte
//! buffer and either yields one complete request plus the bytes it
//! consumed, or reports that more input is needed — the shape a
//! keep-alive connection loop wants, where many pipelined requests can
//! sit in one buffer and a request can arrive split across reads. Header
//! names are matched case-insensitively (stored lower-cased), whitespace
//! around values is tolerated, and declared bodies beyond the caller's
//! `max_body` cap are rejected with `413` before any buffering grows to
//! meet them. [`read_request`] adapts the same parser to a blocking
//! `BufRead` stream for one-shot use.

use std::io::{BufRead, Write};

/// Default cap on request body size, in bytes (`--max-body` overrides at
/// the daemon). Oversized requests are rejected with `413 Payload Too
/// Large` as soon as their `Content-Length` is seen.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// Largest request head (request line + headers) the parser accepts.
/// A buffer this large with no blank-line terminator is a `431`.
pub const MAX_HEAD: usize = 64 * 1024;

/// A parsed HTTP request: method, split target, headers, body and the
/// connection's keep-alive disposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target, before any `?`.
    pub path: String,
    /// Decoded query parameters in order of appearance. Splitting is
    /// plain `&`/`=` — the daemon's parameter values (`g=T` branch picks,
    /// hexadecimal hashes) never need percent-encoding.
    pub query: Vec<(String, String)>,
    /// Header name/value pairs, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to `true`, HTTP/1.0 to `false`, and a
    /// `Connection: close` / `Connection: keep-alive` header overrides
    /// either way.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First header value with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All query values for the given key, in order.
    pub fn query_all(&self, key: &str) -> Vec<&str> {
        self.query
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// First query value for the given key.
    pub fn query_first(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// What went wrong while reading a request. Carries the HTTP status the
/// daemon should answer with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpError {
    /// Response status code (400, 413, ...).
    pub status: u16,
    /// Human-readable reason, sent in the error body.
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// Tries to parse one complete request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a full head and body are
/// present — the caller drains `consumed` bytes and may call again on the
/// remainder (pipelining). Returns `Ok(None)` when the buffer holds only
/// a prefix of a request (read more). Returns `Err` on malformed input,
/// a head larger than [`MAX_HEAD`] (431) or a declared body larger than
/// `max_body` (413) — connection-fatal conditions.
///
/// Stray leading CRLFs (as HTTP/1.1 permits between pipelined requests)
/// are skipped and counted into `consumed`.
///
/// ```
/// use dscweaver_serve::http::parse_buffered;
/// let raw = b"POST /v1/weave HTTP/1.1\r\ncontent-length: 2\r\n\r\nhiGET /healthz HTTP/1.1\r\n";
/// let (req, used) = parse_buffered(raw, 1024).unwrap().unwrap();
/// assert_eq!(req.body, b"hi");
/// assert!(req.keep_alive);
/// // The second (incomplete) request stays in the buffer.
/// assert_eq!(&raw[used..], b"GET /healthz HTTP/1.1\r\n");
/// assert_eq!(parse_buffered(&raw[used..], 1024).unwrap(), None);
/// ```
pub fn parse_buffered(
    buf: &[u8],
    max_body: usize,
) -> Result<Option<(HttpRequest, usize)>, HttpError> {
    // Skip blank lines between pipelined requests.
    let mut start = 0;
    while buf[start..].starts_with(b"\r\n") {
        start += 2;
    }
    let buf_at = &buf[start..];
    let Some(head_len) = find_head_end(buf_at) else {
        if buf_at.len() > MAX_HEAD {
            return Err(HttpError {
                status: 431,
                message: format!("request head exceeds the {MAX_HEAD}-byte cap"),
            });
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf_at[..head_len])
        .map_err(|_| HttpError::bad("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::bad("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing request target"))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.clone(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for hl in lines {
        if hl.is_empty() {
            continue;
        }
        let Some((name, value)) = hl.split_once(':') else {
            return Err(HttpError::bad(format!("malformed header '{hl}'")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::bad("bad content-length"))?;
        }
        headers.push((name, value));
    }
    if content_length > max_body {
        return Err(HttpError {
            status: 413,
            message: format!("body of {content_length} bytes exceeds the {max_body}-byte cap"),
        });
    }
    let body_start = head_len + 4;
    if buf_at.len() < body_start + content_length {
        return Ok(None);
    }
    let body = buf_at[body_start..body_start + content_length].to_vec();

    // Keep-alive disposition: HTTP/1.1 defaults open, 1.0 defaults
    // closed, an explicit Connection token overrides either.
    let mut keep_alive = version != "HTTP/1.0";
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    if let Some(tokens) = connection {
        if tokens.split(',').any(|t| t.trim() == "close") {
            keep_alive = false;
        } else if tokens.split(',').any(|t| t.trim() == "keep-alive") {
            keep_alive = true;
        }
    }

    Ok(Some((
        HttpRequest {
            method,
            path,
            query,
            headers,
            body,
            keep_alive,
        },
        start + body_start + content_length,
    )))
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one HTTP/1.1 request from a blocking stream, using the same
/// incremental parser the connection loop uses (body cap [`MAX_BODY`]).
///
/// ```
/// use dscweaver_serve::http::read_request;
/// let raw = b"POST /v1/weave?x=1 HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
/// let req = read_request(&mut &raw[..]).unwrap();
/// assert_eq!(req.method, "POST");
/// assert_eq!(req.path, "/v1/weave");
/// assert_eq!(req.query_first("x"), Some("1"));
/// assert_eq!(req.body, b"hi");
/// ```
pub fn read_request(stream: &mut impl BufRead) -> Result<HttpRequest, HttpError> {
    let mut buf = Vec::new();
    loop {
        if let Some((req, _)) = parse_buffered(&buf, MAX_BODY)? {
            return Ok(req);
        }
        let chunk = stream
            .fill_buf()
            .map_err(|e| HttpError::bad(format!("read error: {e}")))?;
        if chunk.is_empty() {
            return Err(HttpError::bad("connection closed mid-request"));
        }
        let n = chunk.len();
        buf.extend_from_slice(chunk);
        stream.consume(n);
    }
}

/// The standard reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        _ => "Internal Server Error",
    }
}

/// Renders one HTTP/1.1 response (status line, `content-type`,
/// `content-length`, a `connection: keep-alive`/`close` disposition, the
/// extra headers, then the body) into bytes, ready for a single write.
pub fn render_response(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (n, v) in extra_headers {
        out.push_str(n);
        out.push_str(": ");
        out.push_str(v);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

/// Writes one `Connection: close` HTTP/1.1 response — the one-shot
/// convenience over [`render_response`].
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    stream.write_all(&render_response(status, content_type, extra_headers, body, false))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_with_query_and_body() {
        let raw =
            b"POST /v1/simulate?branch=g:T&branch=h:F HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/simulate");
        assert_eq!(req.query_all("branch"), vec!["g:T", "h:F"]);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive);
    }

    #[test]
    fn header_names_are_case_insensitive_and_values_tolerate_whitespace() {
        let raw = b"POST / HTTP/1.1\r\nCONTENT-length :  3 \r\nX-Thing:  v  \r\n\r\nabc";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.body, b"abc");
        assert_eq!(req.header("x-thing"), Some("v"));
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let parse = |raw: &[u8]| parse_buffered(raw, MAX_BODY).unwrap().unwrap().0;
        assert!(parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive);
        assert!(!parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive);
        assert!(!parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").keep_alive);
        assert!(!parse(b"GET / HTTP/1.1\r\nConnection: close, upgrade\r\n\r\n").keep_alive);
    }

    #[test]
    fn buffered_parse_is_incremental_and_pipelined() {
        let full = b"POST /a HTTP/1.1\r\ncontent-length: 2\r\n\r\nxyGET /b HTTP/1.1\r\n\r\n";
        // Every strict prefix of the first request parses to "need more".
        let first_len = b"POST /a HTTP/1.1\r\ncontent-length: 2\r\n\r\nxy".len();
        for cut in 0..first_len {
            assert_eq!(
                parse_buffered(&full[..cut], MAX_BODY).unwrap(),
                None,
                "cut at {cut}"
            );
        }
        let (first, used) = parse_buffered(full, MAX_BODY).unwrap().unwrap();
        assert_eq!((first.path.as_str(), first.body.as_slice()), ("/a", &b"xy"[..]));
        let (second, used2) = parse_buffered(&full[used..], MAX_BODY).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(used + used2, full.len());
    }

    #[test]
    fn stray_leading_crlfs_are_skipped() {
        let raw = b"\r\n\r\nGET /x HTTP/1.1\r\n\r\n";
        let (req, used) = parse_buffered(raw, MAX_BODY).unwrap().unwrap();
        assert_eq!(req.path, "/x");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let raw = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        let err = read_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.status, 413);
        // The cap is the caller's: a tiny max_body rejects small bodies.
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\n";
        assert_eq!(parse_buffered(raw, 4).unwrap_err().status, 413);
        let raw = b"POST / HTTP/1.1\r\nnocolon\r\n\r\n";
        assert_eq!(read_request(&mut &raw[..]).unwrap_err().status, 400);
        // A huge head with no terminator is fatal, not "need more".
        let huge = vec![b'a'; MAX_HEAD + 8];
        assert_eq!(parse_buffered(&huge, MAX_BODY).unwrap_err().status, 431);
    }

    #[test]
    fn response_round_trips() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "application/json", &[("x-cache", "hit")], "{}").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("x-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let kept = render_response(200, "application/json", &[], "{}", true);
        assert!(String::from_utf8(kept).unwrap().contains("connection: keep-alive\r\n"));
        assert_eq!(reason(429), "Too Many Requests");
    }
}
