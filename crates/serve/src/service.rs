//! The daemon's request semantics, factored out of the transport: a typed
//! [`Request`], a pure [`handle`] over a shared [`Registry`], and the
//! [`oneshot`] reference path.
//!
//! `handle` is the single implementation both the TCP server and the
//! one-shot path call, so a daemon response body is bit-identical to the
//! one-shot body for the same request **by construction**; the cold/warm
//! distinction only changes which compile work runs, and the cached run
//! halves are pinned bit-identical to the fresh paths by the component
//! crates' equivalence tests. Cache status is reported out-of-band (the
//! `X-Cache` header), never in the body.

use crate::http::{HttpError, HttpRequest};
use crate::registry::{content_hash, ProcessEntry, Registry};
use dscweaver_obs as obs;

/// A typed daemon request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `POST /v1/weave` — weave the submitted process text to its minimal
    /// constraint set.
    Weave {
        /// The `.proc` process text.
        text: String,
    },
    /// `POST /v1/validate` — Petri-net validation of the minimal set.
    Validate {
        /// The `.proc` process text.
        text: String,
    },
    /// `POST /v1/simulate?branch=g:V...` — execute the minimal set on the
    /// dataflow engine under the given branch oracle.
    Simulate {
        /// The `.proc` process text.
        text: String,
        /// Branch oracle picks, `guard → value`.
        branches: Vec<(String, String)>,
    },
    /// `POST /v1/reweave?base=HASH` — advance the cached re-weave session
    /// of the `base` process to the submitted revision.
    Reweave {
        /// The revised `.proc` process text.
        text: String,
        /// Content hash of the previously woven base process.
        base: u64,
    },
    /// `GET /v1/stats` — cache counters.
    Stats,
    /// `GET /healthz` — liveness probe.
    Health,
}

/// Cache disposition of a response, carried out-of-band as the `X-Cache`
/// header so response bodies stay identical across cold and warm serves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from a cached entry.
    Hit,
    /// Compiled on this request.
    Miss,
    /// Not a process-keyed request (stats, health, errors).
    None,
}

impl CacheStatus {
    /// The `X-Cache` header value.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::None => "none",
        }
    }
}

/// A daemon response: HTTP status, cache disposition, JSON body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Cache disposition (header-only; never part of the body).
    pub cache: CacheStatus,
    /// JSON body.
    pub body: String,
}

impl Response {
    pub(crate) fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            cache: CacheStatus::None,
            body: format!("{{\"error\":{}}}", json_str(message)),
        }
    }
}

/// JSON string literal with the escapes the daemon's payloads need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maps a parsed HTTP request onto the typed [`Request`].
pub fn parse(req: &HttpRequest) -> Result<Request, HttpError> {
    let body = || {
        String::from_utf8(req.body.clone()).map_err(|_| HttpError {
            status: 400,
            message: "body is not valid UTF-8".into(),
        })
    };
    let post = |ok: bool| {
        if ok {
            Ok(())
        } else {
            Err(HttpError {
                status: 405,
                message: "method not allowed".into(),
            })
        }
    };
    match req.path.as_str() {
        "/v1/weave" => {
            post(req.method == "POST")?;
            Ok(Request::Weave { text: body()? })
        }
        "/v1/validate" => {
            post(req.method == "POST")?;
            Ok(Request::Validate { text: body()? })
        }
        "/v1/simulate" => {
            post(req.method == "POST")?;
            let mut branches = Vec::new();
            for pick in req.query_all("branch") {
                let Some((g, v)) = pick.split_once(':') else {
                    return Err(HttpError {
                        status: 400,
                        message: format!("bad branch '{pick}' (want guard:value)"),
                    });
                };
                branches.push((g.to_string(), v.to_string()));
            }
            Ok(Request::Simulate {
                text: body()?,
                branches,
            })
        }
        "/v1/reweave" => {
            post(req.method == "POST")?;
            let base = req.query_first("base").ok_or_else(|| HttpError {
                status: 400,
                message: "reweave needs ?base=<hash of the previously woven process>".into(),
            })?;
            let base = u64::from_str_radix(base, 16).map_err(|_| HttpError {
                status: 400,
                message: "base is not a hexadecimal hash".into(),
            })?;
            Ok(Request::Reweave { text: body()?, base })
        }
        "/v1/stats" => Ok(Request::Stats),
        "/healthz" => Ok(Request::Health),
        other => Err(HttpError {
            status: 404,
            message: format!("no such endpoint '{other}'"),
        }),
    }
}

fn weave_body(entry: &ProcessEntry) -> String {
    let out = &entry.output;
    format!(
        "{{\"hash\":\"{:016x}\",\"process\":{},\"dependencies\":{},\"sc\":{},\"asc\":{},\"minimal\":{},\"removed\":{},\"fingerprint\":\"{:016x}\",\"minimal_dscl\":{}}}",
        entry.hash,
        json_str(&entry.process.name),
        out.dependencies.deps.len(),
        out.sc.constraint_count(),
        out.asc.constraint_count(),
        out.minimal.constraint_count(),
        out.removed.len(),
        entry.fingerprint,
        json_str(&out.minimal.to_dscl()),
    )
}

fn served(hit: bool, body: String) -> Response {
    Response {
        status: 200,
        cache: if hit { CacheStatus::Hit } else { CacheStatus::Miss },
        body,
    }
}

/// Serves one typed request against the shared registry. This is the
/// whole daemon semantics; the TCP server only adds transport framing.
pub fn handle(reg: &Registry, req: &Request) -> Response {
    reg.enter();
    let response = handle_inner(reg, req);
    reg.leave();
    response
}

fn handle_inner(reg: &Registry, req: &Request) -> Response {
    let _span = obs::span_with("serve.run", || format!("{req:?}"));
    match req {
        Request::Weave { text } => match reg.lookup_or_build(text) {
            Ok((entry, hit)) => served(hit, weave_body(&entry)),
            Err(e) => Response::error(400, &e),
        },
        Request::Validate { text } => match reg.lookup_or_build(text) {
            Ok((entry, hit)) => {
                let report = entry.validate(reg.threads());
                let body = format!(
                    "{{\"hash\":\"{:016x}\",\"ok\":{},\"assignments_checked\":{},\"assignments_truncated\":{},\"guard_groups\":{},\"failures\":{}}}",
                    entry.hash,
                    report.ok(),
                    report.assignments_checked,
                    report.assignments_truncated,
                    report.guard_groups,
                    report.failures.len(),
                );
                served(hit, body)
            }
            Err(e) => Response::error(400, &e),
        },
        Request::Simulate { text, branches } => match reg.lookup_or_build(text) {
            Ok((entry, hit)) => {
                let schedule = entry.simulate(branches, reg.threads());
                let events: Vec<String> = schedule
                    .trace
                    .events
                    .iter()
                    .map(|e| {
                        format!(
                            "{{\"t\":{},\"seq\":{},\"kind\":\"{:?}\",\"activity\":{}}}",
                            e.time,
                            e.seq,
                            e.kind,
                            json_str(&e.activity)
                        )
                    })
                    .collect();
                let stuck: Vec<String> = schedule.stuck.iter().map(|s| json_str(s)).collect();
                let body = format!(
                    "{{\"hash\":\"{:016x}\",\"makespan\":{},\"constraint_checks\":{},\"completed\":{},\"stuck\":[{}],\"events\":[{}]}}",
                    entry.hash,
                    schedule.trace.makespan(),
                    schedule.constraint_checks,
                    schedule.completed(),
                    stuck.join(","),
                    events.join(","),
                );
                served(hit, body)
            }
            Err(e) => Response::error(400, &e),
        },
        Request::Reweave { text, base } => {
            let Some(entry) = reg.get(*base) else {
                return Response::error(
                    400,
                    &format!("unknown base {base:016x} (weave it first, or it was evicted)"),
                );
            };
            let revised = match crate::registry::ProcessEntry::build_dependencies(text) {
                Ok(ds) => ds,
                Err(e) => return Response::error(400, &e),
            };
            match entry.reweave(&revised) {
                Ok(report) => {
                    let (path, reason) = match &report.path {
                        dscweaver_core::ReweavePath::Initial => ("initial", String::new()),
                        dscweaver_core::ReweavePath::Delta => ("delta", String::new()),
                        dscweaver_core::ReweavePath::Fallback(r) => ("fallback", r.clone()),
                    };
                    let body = format!(
                        "{{\"hash\":\"{:016x}\",\"base\":\"{:016x}\",\"path\":\"{}\",\"reason\":{},\"rows_recomputed\":{},\"rows_changed\":{},\"candidates_total\":{},\"candidates_rescreened\":{},\"candidates_reused\":{},\"fingerprint\":\"{:016x}\"}}",
                        content_hash(text),
                        base,
                        path,
                        json_str(&reason),
                        report.rows_recomputed,
                        report.rows_changed,
                        report.candidates_total,
                        report.candidates_rescreened,
                        report.candidates_reused,
                        report.fingerprint,
                    );
                    Response {
                        status: 200,
                        cache: CacheStatus::Hit,
                        body,
                    }
                }
                Err(e) => Response::error(400, &e),
            }
        }
        Request::Stats => {
            let s = reg.stats();
            Response {
                status: 200,
                cache: CacheStatus::None,
                body: format!(
                    "{{\"entries\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\"in_flight\":{}}}",
                    s.entries, s.capacity, s.hits, s.misses, s.evictions, s.in_flight
                ),
            }
        }
        Request::Health => Response {
            status: 200,
            cache: CacheStatus::None,
            body: "{\"ok\":true}".into(),
        },
    }
}

/// The one-shot reference path: serve `req` against a fresh single-entry
/// registry, exactly as `dscw` would for a single invocation. Daemon
/// response bodies are pinned bit-identical to this path (same `handle`,
/// cache status kept out of the body).
pub fn oneshot(req: &Request, threads: usize) -> Response {
    let reg = Registry::new(1, threads);
    handle(&reg, req)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROC: &str = "process P {\n var x;\n sequence { assign a writes x; assign b reads x; }\n}";

    #[test]
    fn weave_body_is_cache_invariant() {
        let reg = Registry::new(4, 1);
        let req = Request::Weave { text: PROC.into() };
        let cold = handle(&reg, &req);
        let warm = handle(&reg, &req);
        assert_eq!(cold.status, 200);
        assert_eq!(cold.cache, CacheStatus::Miss);
        assert_eq!(warm.cache, CacheStatus::Hit);
        assert_eq!(cold.body, warm.body, "cold and warm bodies must be identical");
        assert_eq!(cold.body, oneshot(&req, 1).body);
    }

    #[test]
    fn parse_routes_and_rejects() {
        let http = HttpRequest {
            method: "POST".into(),
            path: "/v1/simulate".into(),
            query: vec![("branch".into(), "g:T".into())],
            headers: vec![],
            body: b"x".to_vec(),
        };
        assert_eq!(
            parse(&http).unwrap(),
            Request::Simulate {
                text: "x".into(),
                branches: vec![("g".into(), "T".into())]
            }
        );
        let bad = HttpRequest {
            method: "GET".into(),
            path: "/v1/weave".into(),
            query: vec![],
            headers: vec![],
            body: vec![],
        };
        assert_eq!(parse(&bad).unwrap_err().status, 405);
        let missing = HttpRequest {
            method: "GET".into(),
            path: "/nope".into(),
            query: vec![],
            headers: vec![],
            body: vec![],
        };
        assert_eq!(parse(&missing).unwrap_err().status, 404);
    }

    #[test]
    fn reweave_needs_a_cached_base() {
        let reg = Registry::new(4, 1);
        let missing = handle(
            &reg,
            &Request::Reweave {
                text: PROC.into(),
                base: 0xdead_beef,
            },
        );
        assert_eq!(missing.status, 400);
        let (entry, _) = reg.lookup_or_build(PROC).unwrap();
        let ok = handle(
            &reg,
            &Request::Reweave {
                text: PROC.into(),
                base: entry.hash,
            },
        );
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert!(ok.body.contains("\"path\":\"delta\""), "{}", ok.body);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
