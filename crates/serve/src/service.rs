//! The daemon's request semantics, factored out of the transport: a typed
//! [`Request`], a pure [`handle`] over a shared [`Registry`], and the
//! [`oneshot`] reference path.
//!
//! `handle` is the single implementation both the TCP server and the
//! one-shot path call, so a daemon response body is bit-identical to the
//! one-shot body for the same request **by construction**; the cold/warm
//! distinction only changes which compile work runs, and the cached run
//! halves are pinned bit-identical to the fresh paths by the component
//! crates' equivalence tests. Cache status is reported out-of-band (the
//! `X-Cache` header), never in the body.

use crate::canon::Renaming;
use crate::http::{HttpError, HttpRequest};
use crate::registry::{LookupStatus, ProcessEntry, Registry};
use crate::trace::{self, RequestTrace};
use dscweaver_obs as obs;
use std::time::Instant;

/// A typed daemon request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `POST /v1/weave` — weave the submitted process text to its minimal
    /// constraint set.
    Weave {
        /// The `.proc` process text.
        text: String,
    },
    /// `POST /v1/validate` — Petri-net validation of the minimal set.
    Validate {
        /// The `.proc` process text.
        text: String,
    },
    /// `POST /v1/simulate?branch=g:V...` — execute the minimal set on the
    /// dataflow engine under the given branch oracle.
    Simulate {
        /// The `.proc` process text.
        text: String,
        /// Branch oracle picks, `guard → value`.
        branches: Vec<(String, String)>,
    },
    /// `POST /v1/reweave?base=HASH` — advance the cached re-weave session
    /// of the `base` process to the submitted revision.
    Reweave {
        /// The revised `.proc` process text.
        text: String,
        /// Content hash of the previously woven base process.
        base: u64,
    },
    /// `GET /v1/stats[?since=SEQ]` — cache counters, cumulative or
    /// diffed against an earlier snapshot sequence number.
    Stats {
        /// Snapshot sequence number from a previous stats response; when
        /// set, the response carries counter deltas since that snapshot.
        since: Option<u64>,
    },
    /// `GET /metrics` — Prometheus text exposition of the metrics plane.
    Metrics,
    /// `GET /v1/traces` — the tail-sampled request traces as Chrome
    /// trace-event JSON.
    Traces,
    /// `GET /healthz` — liveness probe.
    Health,
}

impl Request {
    /// Stable endpoint name, used for per-endpoint latency histograms
    /// and trace lane labels.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Weave { .. } => "weave",
            Request::Validate { .. } => "validate",
            Request::Simulate { .. } => "simulate",
            Request::Reweave { .. } => "reweave",
            Request::Stats { .. } => "stats",
            Request::Metrics => "metrics",
            Request::Traces => "traces",
            Request::Health => "health",
        }
    }

    /// Whether this request runs the compile/run pipeline on a submitted
    /// process. Only process-keyed requests count toward `in_flight` and
    /// the 429 back-pressure ceiling; the read-only observability
    /// endpoints stay admissible even under overload.
    pub fn is_process_keyed(&self) -> bool {
        matches!(
            self,
            Request::Weave { .. }
                | Request::Validate { .. }
                | Request::Simulate { .. }
                | Request::Reweave { .. }
        )
    }

    /// The registered e2e latency histogram name for this endpoint.
    fn latency_metric(&self) -> &'static str {
        match self {
            Request::Weave { .. } => "serve.latency.weave",
            Request::Validate { .. } => "serve.latency.validate",
            Request::Simulate { .. } => "serve.latency.simulate",
            Request::Reweave { .. } => "serve.latency.reweave",
            Request::Stats { .. } => "serve.latency.stats",
            Request::Metrics => "serve.latency.metrics",
            Request::Traces => "serve.latency.traces",
            Request::Health => "serve.latency.health",
        }
    }
}

/// Cache disposition of a response, carried out-of-band as the `X-Cache`
/// header so response bodies stay identical across cold and warm serves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from a cached entry via the raw-text memo (byte-identical
    /// re-submission).
    Hit,
    /// New text served from an existing entry it canonicalized onto —
    /// cross-tenant artifact sharing (see [`crate::canon`]).
    Canonical,
    /// Compiled on this request.
    Miss,
    /// Not a process-keyed request (stats, health, errors).
    None,
}

impl CacheStatus {
    /// The `X-Cache` header value.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Canonical => "canonical",
            CacheStatus::Miss => "miss",
            CacheStatus::None => "none",
        }
    }
}

impl From<LookupStatus> for CacheStatus {
    fn from(status: LookupStatus) -> CacheStatus {
        match status {
            LookupStatus::Hit => CacheStatus::Hit,
            LookupStatus::Canonical => CacheStatus::Canonical,
            LookupStatus::Miss => CacheStatus::Miss,
        }
    }
}

/// A daemon response: HTTP status, cache disposition, body, plus the
/// out-of-band observability fields (trace id, content type). Bodies of
/// process-keyed endpoints stay bit-identical across cold/warm/one-shot;
/// everything observability-related rides in headers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Cache disposition (header-only; never part of the body).
    pub cache: CacheStatus,
    /// Response body.
    pub body: String,
    /// Request trace id, echoed as the `X-Trace-Id` header (`0` = the
    /// response never passed through [`handle`], e.g. transport errors).
    pub trace_id: u64,
    /// `Content-Type` header value (`application/json` for everything
    /// except `/metrics`).
    pub content_type: &'static str,
}

/// The `Content-Type` of every JSON endpoint.
pub const CONTENT_TYPE_JSON: &str = "application/json";
/// The `Content-Type` of `/metrics` (Prometheus text exposition 0.0.4).
pub const CONTENT_TYPE_PROM: &str = "text/plain; version=0.0.4";

impl Response {
    pub(crate) fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            cache: CacheStatus::None,
            body: format!("{{\"error\":{}}}", json_str(message)),
            trace_id: 0,
            content_type: CONTENT_TYPE_JSON,
        }
    }

    fn ok(body: String) -> Response {
        Response {
            status: 200,
            cache: CacheStatus::None,
            body,
            trace_id: 0,
            content_type: CONTENT_TYPE_JSON,
        }
    }
}

/// JSON string literal with the escapes the daemon's payloads need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maps a parsed HTTP request onto the typed [`Request`].
pub fn parse(req: &HttpRequest) -> Result<Request, HttpError> {
    let body = || {
        String::from_utf8(req.body.clone()).map_err(|_| HttpError {
            status: 400,
            message: "body is not valid UTF-8".into(),
        })
    };
    let post = |ok: bool| {
        if ok {
            Ok(())
        } else {
            Err(HttpError {
                status: 405,
                message: "method not allowed".into(),
            })
        }
    };
    match req.path.as_str() {
        "/v1/weave" => {
            post(req.method == "POST")?;
            Ok(Request::Weave { text: body()? })
        }
        "/v1/validate" => {
            post(req.method == "POST")?;
            Ok(Request::Validate { text: body()? })
        }
        "/v1/simulate" => {
            post(req.method == "POST")?;
            let mut branches = Vec::new();
            for pick in req.query_all("branch") {
                let Some((g, v)) = pick.split_once(':') else {
                    return Err(HttpError {
                        status: 400,
                        message: format!("bad branch '{pick}' (want guard:value)"),
                    });
                };
                branches.push((g.to_string(), v.to_string()));
            }
            Ok(Request::Simulate {
                text: body()?,
                branches,
            })
        }
        "/v1/reweave" => {
            post(req.method == "POST")?;
            let base = req.query_first("base").ok_or_else(|| HttpError {
                status: 400,
                message: "reweave needs ?base=<hash of the previously woven process>".into(),
            })?;
            let base = u64::from_str_radix(base, 16).map_err(|_| HttpError {
                status: 400,
                message: "base is not a hexadecimal hash".into(),
            })?;
            Ok(Request::Reweave { text: body()?, base })
        }
        "/v1/stats" => {
            let since = match req.query_first("since") {
                None => None,
                Some(s) => Some(s.parse::<u64>().map_err(|_| HttpError {
                    status: 400,
                    message: format!("bad since '{s}' (want a stats snapshot sequence number)"),
                })?),
            };
            Ok(Request::Stats { since })
        }
        "/metrics" => Ok(Request::Metrics),
        "/v1/traces" => Ok(Request::Traces),
        "/healthz" => Ok(Request::Health),
        other => Err(HttpError {
            status: 404,
            message: format!("no such endpoint '{other}'"),
        }),
    }
}

/// The weave response body, rendered in the submitting tenant's own
/// names: the cached entry holds canonical artifacts (shared across
/// textual variants), and the request's [`Renaming`] maps them back. The
/// `hash` field is the **canonical** hash — textual variants of one
/// process report the same hash, which is also the `?base=` key
/// `/v1/reweave` resolves.
fn weave_body(entry: &ProcessEntry, renaming: &Renaming) -> String {
    let out = &entry.output;
    format!(
        "{{\"hash\":\"{:016x}\",\"process\":{},\"dependencies\":{},\"sc\":{},\"asc\":{},\"minimal\":{},\"removed\":{},\"fingerprint\":\"{:016x}\",\"minimal_dscl\":{}}}",
        entry.hash,
        json_str(renaming.original(&entry.process.name).unwrap_or(&entry.process.name)),
        out.dependencies.deps.len(),
        out.sc.constraint_count(),
        out.asc.constraint_count(),
        out.minimal.constraint_count(),
        out.removed.len(),
        entry.fingerprint,
        json_str(&renaming.render_original(&out.minimal.to_dscl())),
    )
}

fn served(status: LookupStatus, body: String) -> Response {
    Response {
        status: 200,
        cache: status.into(),
        body,
        trace_id: 0,
        content_type: CONTENT_TYPE_JSON,
    }
}

/// Times a cached run half under a `serve.run` trace phase and the
/// `serve.run` latency histogram.
fn timed_run<T>(f: impl FnOnce() -> T) -> T {
    let _phase = trace::phase("serve.run");
    let t0 = Instant::now();
    let out = f();
    obs::histogram("serve.run").observe(t0.elapsed().as_nanos() as u64);
    out
}

/// Serves one typed request against the shared registry. This is the
/// whole daemon semantics; the TCP server only adds transport framing.
///
/// Observability envelope around the endpoint dispatch: every request gets a
/// trace id (stamped into [`Response::trace_id`]); process-keyed
/// requests pass the back-pressure gate (429 once `in_flight` would
/// exceed [`Registry::max_in_flight`]); end-to-end latency feeds the
/// per-endpoint `serve.latency.*` histogram; and when the registry's
/// tracer is active, the request's span tree is tail-sampled into the
/// `/v1/traces` ring (kept if slow or on the 1-in-N grid).
pub fn handle(reg: &Registry, req: &Request) -> Response {
    let tracer = reg.tracer();
    let (seq, trace_id) = tracer.next_id();
    let keyed = req.is_process_keyed();
    if keyed {
        let now = reg.enter();
        let max = reg.max_in_flight();
        if max > 0 && now > max {
            reg.leave();
            reg.note_rejected();
            let mut resp = Response::error(
                429,
                &format!("{now} requests in flight exceeds the --max-in-flight ceiling of {max}"),
            );
            resp.trace_id = trace_id;
            return resp;
        }
    }
    let collecting = keyed && tracer.active();
    if collecting {
        trace::begin_collect();
    }
    let start_ns = tracer.now_ns();
    let t0 = Instant::now();
    let mut response = handle_inner(reg, req);
    let dur_ns = t0.elapsed().as_nanos() as u64;
    let phases = if collecting {
        trace::end_collect().unwrap_or_default()
    } else {
        Vec::new()
    };
    obs::histogram(req.latency_metric()).observe(dur_ns);
    if keyed {
        reg.leave();
        reg.note_served();
    }
    if collecting {
        if let Some(kept) = tracer.keep(seq, dur_ns) {
            tracer.push(RequestTrace {
                trace_id,
                endpoint: req.endpoint(),
                start_ns,
                dur_ns,
                status: response.status,
                kept,
                phases,
            });
        }
    }
    response.trace_id = trace_id;
    response
}

fn handle_inner(reg: &Registry, req: &Request) -> Response {
    let _span = obs::span_with("serve.run", || format!("{req:?}"));
    match req {
        Request::Weave { text } => match reg.lookup_or_build(text) {
            Ok(found) => served(found.status, weave_body(&found.entry, &found.renaming)),
            Err(e) => Response::error(400, &e),
        },
        Request::Validate { text } => match reg.lookup_or_build(text) {
            Ok(found) => {
                let entry = &found.entry;
                let report = timed_run(|| entry.validate(reg.threads()));
                let body = format!(
                    "{{\"hash\":\"{:016x}\",\"ok\":{},\"assignments_checked\":{},\"assignments_truncated\":{},\"guard_groups\":{},\"failures\":{}}}",
                    entry.hash,
                    report.ok(),
                    report.assignments_checked,
                    report.assignments_truncated,
                    report.guard_groups,
                    report.failures.len(),
                );
                served(found.status, body)
            }
            Err(e) => Response::error(400, &e),
        },
        Request::Simulate { text, branches } => match reg.lookup_or_build(text) {
            Ok(found) => {
                let entry = &found.entry;
                let renaming = &found.renaming;
                // Oracle picks arrive in the tenant's guard names; the
                // cached artifacts run in canonical names.
                let picks: Vec<(String, String)> = branches
                    .iter()
                    .map(|(g, v)| {
                        let canonical = renaming.activity(g).unwrap_or(g.as_str());
                        (canonical.to_string(), v.clone())
                    })
                    .collect();
                let schedule = timed_run(|| entry.simulate(&picks, reg.threads()));
                let original = |name: &str| renaming.original(name).unwrap_or(name).to_string();
                let events: Vec<String> = schedule
                    .trace
                    .events
                    .iter()
                    .map(|e| {
                        format!(
                            "{{\"t\":{},\"seq\":{},\"kind\":\"{:?}\",\"activity\":{}}}",
                            e.time,
                            e.seq,
                            e.kind,
                            json_str(&original(&e.activity))
                        )
                    })
                    .collect();
                let stuck: Vec<String> =
                    schedule.stuck.iter().map(|s| json_str(&original(s))).collect();
                let body = format!(
                    "{{\"hash\":\"{:016x}\",\"makespan\":{},\"constraint_checks\":{},\"completed\":{},\"stuck\":[{}],\"events\":[{}]}}",
                    entry.hash,
                    schedule.trace.makespan(),
                    schedule.constraint_checks,
                    schedule.completed(),
                    stuck.join(","),
                    events.join(","),
                );
                served(found.status, body)
            }
            Err(e) => Response::error(400, &e),
        },
        Request::Reweave { text, base } => {
            let Some(entry) = reg.get(*base) else {
                return Response::error(
                    400,
                    &format!("unknown base {base:016x} (weave it first, or it was evicted)"),
                );
            };
            // The base entry holds canonical artifacts, so the revision
            // must be canonicalized too — the delta path then compares
            // like with like, and renamed-but-equivalent revisions
            // diff empty.
            let revised_form = match crate::canon::canonicalize(text) {
                Ok(form) => form,
                Err(e) => return Response::error(400, &e),
            };
            let revised = crate::registry::extract(&revised_form.process);
            match timed_run(|| entry.reweave(&revised)) {
                Ok(report) => {
                    let (path, reason) = match &report.path {
                        dscweaver_core::ReweavePath::Initial => ("initial", String::new()),
                        dscweaver_core::ReweavePath::Delta => ("delta", String::new()),
                        dscweaver_core::ReweavePath::Fallback(r) => ("fallback", r.clone()),
                    };
                    let body = format!(
                        "{{\"hash\":\"{:016x}\",\"base\":\"{:016x}\",\"path\":\"{}\",\"reason\":{},\"rows_recomputed\":{},\"rows_changed\":{},\"candidates_total\":{},\"candidates_rescreened\":{},\"candidates_reused\":{},\"fingerprint\":\"{:016x}\"}}",
                        revised_form.hash,
                        base,
                        path,
                        json_str(&reason),
                        report.rows_recomputed,
                        report.rows_changed,
                        report.candidates_total,
                        report.candidates_rescreened,
                        report.candidates_reused,
                        report.fingerprint,
                    );
                    Response {
                        status: 200,
                        cache: CacheStatus::Hit,
                        body,
                        trace_id: 0,
                        content_type: CONTENT_TYPE_JSON,
                    }
                }
                Err(e) => Response::error(400, &e),
            }
        }
        Request::Stats { since } => match reg.stats_since(*since) {
            Ok((seq, s)) => {
                let window = match since {
                    None => "\"cumulative\"".to_string(),
                    Some(baseline) => format!("{{\"since\":{baseline}}}"),
                };
                Response::ok(format!(
                    "{{\"entries\":{},\"capacity\":{},\"hits\":{},\"canonical_hits\":{},\"misses\":{},\"evictions\":{},\"in_flight\":{},\"served\":{},\"rejected\":{},\"seq\":{},\"window\":{}}}",
                    s.entries,
                    s.capacity,
                    s.hits,
                    s.canonical_hits,
                    s.misses,
                    s.evictions,
                    s.in_flight,
                    s.served,
                    s.rejected,
                    seq,
                    window,
                ))
            }
            Err(e) => Response::error(400, &e),
        },
        Request::Metrics => {
            let mut resp = Response::ok(obs::prom::render(&obs::metrics_snapshot()));
            resp.content_type = CONTENT_TYPE_PROM;
            resp
        }
        Request::Traces => Response::ok(reg.tracer().to_chrome_json()),
        Request::Health => Response::ok("{\"ok\":true}".into()),
    }
}

/// The one-shot reference path: serve `req` against a fresh single-entry
/// registry, exactly as `dscw` would for a single invocation. Daemon
/// response bodies are pinned bit-identical to this path (same `handle`,
/// cache status kept out of the body).
pub fn oneshot(req: &Request, threads: usize) -> Response {
    let reg = Registry::new(1, threads);
    handle(&reg, req)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROC: &str = "process P {\n var x;\n sequence { assign a writes x; assign b reads x; }\n}";

    #[test]
    fn weave_body_is_cache_invariant() {
        let reg = Registry::new(4, 1);
        let req = Request::Weave { text: PROC.into() };
        let cold = handle(&reg, &req);
        let warm = handle(&reg, &req);
        assert_eq!(cold.status, 200);
        assert_eq!(cold.cache, CacheStatus::Miss);
        assert_eq!(warm.cache, CacheStatus::Hit);
        assert_eq!(cold.body, warm.body, "cold and warm bodies must be identical");
        assert_eq!(cold.body, oneshot(&req, 1).body);
    }

    #[test]
    fn parse_routes_and_rejects() {
        let http = HttpRequest {
            method: "POST".into(),
            path: "/v1/simulate".into(),
            query: vec![("branch".into(), "g:T".into())],
            headers: vec![],
            body: b"x".to_vec(),
            keep_alive: true,
        };
        assert_eq!(
            parse(&http).unwrap(),
            Request::Simulate {
                text: "x".into(),
                branches: vec![("g".into(), "T".into())]
            }
        );
        let bad = HttpRequest {
            method: "GET".into(),
            path: "/v1/weave".into(),
            query: vec![],
            headers: vec![],
            body: vec![],
            keep_alive: true,
        };
        assert_eq!(parse(&bad).unwrap_err().status, 405);
        let missing = HttpRequest {
            method: "GET".into(),
            path: "/nope".into(),
            query: vec![],
            headers: vec![],
            body: vec![],
            keep_alive: true,
        };
        assert_eq!(parse(&missing).unwrap_err().status, 404);
    }

    #[test]
    fn reweave_needs_a_cached_base() {
        let reg = Registry::new(4, 1);
        let missing = handle(
            &reg,
            &Request::Reweave {
                text: PROC.into(),
                base: 0xdead_beef,
            },
        );
        assert_eq!(missing.status, 400);
        let entry = reg.lookup_or_build(PROC).unwrap().entry;
        let ok = handle(
            &reg,
            &Request::Reweave {
                text: PROC.into(),
                base: entry.hash,
            },
        );
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert!(ok.body.contains("\"path\":\"delta\""), "{}", ok.body);
    }

    #[test]
    fn canonical_variant_shares_the_entry_but_keeps_its_own_names() {
        let reg = Registry::new(4, 1);
        let base = handle(&reg, &Request::Weave { text: PROC.into() });
        assert_eq!(base.cache, CacheStatus::Miss);
        // Renamed identifiers, extra whitespace: same canonical process.
        let variant =
            "process Q {\n var data;\n sequence {  assign first writes data;\n assign second reads data; }\n}";
        let req = Request::Weave {
            text: variant.into(),
        };
        let shared = handle(&reg, &req);
        assert_eq!(shared.status, 200);
        assert_eq!(shared.cache, CacheStatus::Canonical);
        // Same canonical hash, each tenant's own names in the body...
        let hash = |body: &str| body.split("\"hash\":\"").nth(1).unwrap()[..16].to_string();
        assert_eq!(hash(&base.body), hash(&shared.body));
        assert!(base.body.contains("\"process\":\"P\""), "{}", base.body);
        assert!(shared.body.contains("\"process\":\"Q\""), "{}", shared.body);
        assert!(shared.body.contains("first") && shared.body.contains("second"), "{}", shared.body);
        // ...and the shared body is still bit-identical to its own
        // one-shot reference.
        assert_eq!(shared.body, oneshot(&req, 1).body);
        // Simulate accepts guards and reports events in tenant names too.
        let sim = handle(
            &reg,
            &Request::Simulate {
                text: variant.into(),
                branches: vec![],
            },
        );
        assert_eq!(sim.status, 200);
        assert!(sim.body.contains("\"activity\":\"first\""), "{}", sim.body);
        assert!(!sim.body.contains("\"activity\":\"a0\""), "{}", sim.body);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn back_pressure_rejects_past_the_ceiling_but_read_only_stays_open() {
        let reg = Registry::new(4, 1).with_max_in_flight(1);
        // Occupy the only slot, as a concurrent request would.
        reg.enter();
        let busy = handle(&reg, &Request::Weave { text: PROC.into() });
        assert_eq!(busy.status, 429);
        assert!(busy.body.contains("max-in-flight"), "{}", busy.body);
        // Observability endpoints are exempt: a saturated daemon must
        // still answer its health and stats probes.
        for req in [
            Request::Stats { since: None },
            Request::Metrics,
            Request::Traces,
            Request::Health,
        ] {
            assert_eq!(handle(&reg, &req).status, 200, "{req:?} gated by 429");
        }
        reg.leave();
        let ok = handle(&reg, &Request::Weave { text: PROC.into() });
        assert_eq!(ok.status, 200);
        let stats = reg.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn every_response_carries_a_distinct_trace_id() {
        let reg = Registry::new(4, 1);
        let a = handle(&reg, &Request::Weave { text: PROC.into() });
        let b = handle(&reg, &Request::Health);
        let c = handle(&reg, &Request::Weave { text: PROC.into() });
        assert!(a.trace_id != 0 && b.trace_id != 0 && c.trace_id != 0);
        assert!(a.trace_id != b.trace_id && b.trace_id != c.trace_id);
        // A rejected request is traced too.
        let reg = Registry::new(4, 1).with_max_in_flight(1);
        reg.enter();
        assert_ne!(handle(&reg, &Request::Weave { text: PROC.into() }).trace_id, 0);
    }

    #[test]
    fn metrics_endpoint_is_valid_prometheus_exposition() {
        let _serial = obs::test_lock();
        obs::set_metrics_enabled(true);
        let reg = Registry::new(4, 1);
        handle(&reg, &Request::Weave { text: PROC.into() });
        let resp = handle(&reg, &Request::Metrics);
        obs::set_enabled(false);
        drop(obs::take());
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, CONTENT_TYPE_PROM);
        let samples = obs::prom::parse(&resp.body).expect("exposition parses");
        assert!(
            samples.iter().any(|s| s.name.starts_with("serve_latency_weave")),
            "per-endpoint histogram missing:\n{}",
            resp.body
        );
    }

    #[test]
    fn traces_endpoint_returns_chrome_trace_json() {
        use crate::trace::TraceConfig;
        // sample_every=1 keeps every request.
        let reg = Registry::new(4, 1).with_trace_config(TraceConfig {
            slow_ns: u64::MAX,
            sample_every: 1,
            capacity: 8,
        });
        handle(&reg, &Request::Weave { text: PROC.into() });
        let resp = handle(&reg, &Request::Traces);
        assert_eq!(resp.status, 200);
        let doc = obs::json::parse(&resp.body).expect("chrome trace parses");
        let events = doc.get("traceEvents").and_then(obs::json::Json::as_arr).unwrap();
        assert!(!events.is_empty(), "kept request must appear in /v1/traces");
    }
}
