//! # dscweaver-serve
//!
//! Weaver-as-a-service: a zero-dependency, multi-tenant daemon (`dscw
//! serve`) that accepts weave / validate / simulate / re-weave requests
//! over a minimal std-only HTTP/1.1 transport and serves them from a
//! **warm prepared-artifact cache**.
//!
//! Each distinct submitted process is compiled once into a
//! [`registry::ProcessEntry`]: the woven [`dscweaver_core::WeaverOutput`],
//! a frozen hash-consing pool snapshot
//! ([`dscweaver_graph::FrozenDnfPool`]), the Petri-net validation compile
//! half ([`dscweaver_petri::CompiledValidation`]), the scheduler's derived
//! indexes ([`dscweaver_scheduler::ScheduleTables`]) and a live re-weave
//! session. "Distinct" means distinct **canonical form** ([`canon`]):
//! submissions are alpha-renamed into first-occurrence order, their
//! declarations sorted and whitespace/comments stripped before hashing,
//! so textual variants of one process share a single entry (the raw-text
//! FNV-1a hash stays in front as a first-level memo, and each request's
//! [`canon::Renaming`] renders responses back in its own names). Entries
//! are shared across request threads (`Arc`) and evicted LRU. Warm
//! requests skip every compile stage; the cached run halves are pinned
//! bit-identical to the fresh one-shot paths by the component crates'
//! equivalence tests, and response bodies never depend on cache state
//! (the `X-Cache` header carries hit/canonical/miss).
//!
//! The transport is connection-oriented: HTTP/1.1 keep-alive with bounded
//! pipelining, a reusable per-connection read buffer, and admission
//! batched per connection-readiness rather than per request
//! ([`server`]); [`client::Client`] reuses its connection by default.
//!
//! Serving a request without any networking:
//!
//! ```
//! use dscweaver_serve::registry::Registry;
//! use dscweaver_serve::service::{handle, oneshot, CacheStatus, Request};
//!
//! let proc_text = "process P {\n var x;\n sequence { assign a writes x; assign b reads x; }\n}";
//! let reg = Registry::new(16, 1);
//! let req = Request::Weave { text: proc_text.into() };
//! let cold = handle(&reg, &req);          // compiles, caches
//! let warm = handle(&reg, &req);          // served from the cache
//! assert_eq!(cold.cache, CacheStatus::Miss);
//! assert_eq!(warm.cache, CacheStatus::Hit);
//! // Bodies are identical across cold, warm and the one-shot reference.
//! assert_eq!(cold.body, warm.body);
//! assert_eq!(cold.body, oneshot(&req, 1).body);
//! ```
//!
//! The full daemon over TCP (ephemeral port):
//!
//! ```
//! use dscweaver_serve::{client, server::{ServeConfig, Server}};
//!
//! let server = Server::start(&ServeConfig::default()).unwrap();
//! let proc_text = "process P {\n var x;\n sequence { assign a writes x; assign b reads x; }\n}";
//! let first = client::post(server.addr(), "/v1/weave", proc_text).unwrap();
//! let second = client::post(server.addr(), "/v1/weave", proc_text).unwrap();
//! assert_eq!(first.status, 200);
//! assert_eq!(first.cache(), "miss");
//! assert_eq!(second.cache(), "hit");
//! assert_eq!(first.body, second.body);
//! server.shutdown();
//! ```
//!
//! See `SERVING.md` for the wire protocol reference and operations guide.

#![warn(missing_docs)]

pub mod canon;
pub mod client;
pub mod http;
pub mod registry;
pub mod server;
pub mod service;
pub mod trace;

pub use canon::{canonicalize, CanonicalForm, Renaming};
pub use client::{Client, PipelinedRequest, Reply};
pub use http::{HttpError, HttpRequest};
pub use registry::{content_hash, Lookup, LookupStatus, ProcessEntry, Registry, RegistryStats};
pub use server::{ServeConfig, Server};
pub use service::{handle, oneshot, CacheStatus, Request, Response};
pub use trace::{RequestTrace, TraceConfig, Tracer};
