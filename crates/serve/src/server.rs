//! The TCP daemon: a std-only HTTP/1.1 listener in front of
//! [`crate::service::handle`].
//!
//! The accept loop batches ready connections (admission batching) and
//! fans each batch into `dscweaver_graph::par` workers, so a burst of
//! concurrent clients is served in parallel while a quiet socket costs
//! one short poll per tick. Per-request observability: `serve.accept`,
//! `serve.parse`, `serve.lookup`/`serve.compile` (in the registry),
//! `serve.run` and `serve.respond` spans, plus the `serve.requests`,
//! `serve.cache_hits`, `serve.cache_misses` and `serve.evictions`
//! counters and the `serve.in_flight` gauge.

use crate::http::{read_request, write_response, HttpError};
use crate::registry::Registry;
use crate::service::{handle, parse, Response};
use crate::trace::TraceConfig;
use dscweaver_graph::par_map;
use dscweaver_obs as obs;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (`0` = ephemeral, kernel-assigned).
    pub port: u16,
    /// Worker threads for request fan-out and pipeline internals
    /// (`0` = auto).
    pub threads: usize,
    /// Prepared-artifact cache capacity (entries; LRU beyond it).
    pub cache_capacity: usize,
    /// Most connections admitted into one parallel batch.
    pub batch: usize,
    /// Back-pressure ceiling: process-keyed requests beyond this many
    /// concurrently in flight are rejected with `429` (`0` = unlimited).
    pub max_in_flight: u64,
    /// Tail sampling: keep the full trace of any request slower than
    /// this many milliseconds (`0` disables the slow criterion).
    pub trace_slow_ms: u64,
    /// Tail sampling: additionally keep every N-th request (`0`
    /// disables the sample grid).
    pub trace_sample: u64,
    /// How many kept request traces `/v1/traces` retains.
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let trace = TraceConfig::daemon_default();
        ServeConfig {
            port: 0,
            threads: 0,
            cache_capacity: 1024,
            batch: 64,
            max_in_flight: 0,
            trace_slow_ms: trace.slow_ns / 1_000_000,
            trace_sample: trace.sample_every,
            trace_capacity: trace.capacity,
        }
    }
}

/// A running daemon: listener thread plus shared registry. Dropping the
/// handle without [`Server::shutdown`] leaves the thread running for the
/// process lifetime — call `shutdown` for an orderly stop.
pub struct Server {
    addr: SocketAddr,
    registry: Arc<Registry>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts the accept loop on a background
    /// thread.
    pub fn start(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // The daemon is a long-running process: turn on the cumulative
        // metrics plane (counters/gauges/histograms, read non-drainingly
        // by `/metrics`) without enabling span recording, whose
        // thread-local buffers would grow unboundedly until drained.
        obs::set_metrics_enabled(true);
        let registry = Arc::new(
            Registry::new(config.cache_capacity, config.threads)
                .with_max_in_flight(config.max_in_flight)
                .with_trace_config(TraceConfig {
                    slow_ns: config.trace_slow_ms.saturating_mul(1_000_000),
                    sample_every: config.trace_sample,
                    capacity: config.trace_capacity,
                }),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let registry = registry.clone();
            let stop = stop.clone();
            let threads = config.threads;
            let batch_cap = config.batch.max(1);
            std::thread::spawn(move || accept_loop(listener, registry, stop, threads, batch_cap))
        };
        Ok(Server {
            addr,
            registry,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared artifact registry (for stats or in-process requests).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Stops the accept loop and joins the listener thread. In-flight
    /// batches finish first.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    stop: Arc<AtomicBool>,
    threads: usize,
    batch_cap: usize,
) {
    while !stop.load(Ordering::Relaxed) {
        // Admission batching: drain everything already queued on the
        // socket (up to the cap) into one batch, then serve the batch in
        // parallel. An empty poll sleeps briefly instead of spinning.
        let mut batch: Vec<TcpStream> = Vec::new();
        while batch.len() < batch_cap {
            match listener.accept() {
                Ok((stream, _)) => {
                    obs::counter_add("serve.requests", 1);
                    let _span = obs::span("serve.accept");
                    batch.push(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        if batch.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        par_map(threads_for(threads, batch.len()), &batch, &|stream| {
            serve_connection(stream, &registry);
        });
    }
}

/// Worker count for one admission batch: the configured knob, bounded by
/// the batch size (no idle forks for small batches).
fn threads_for(threads: usize, batch_len: usize) -> usize {
    dscweaver_graph::effective_threads(threads, 8).min(batch_len.max(1))
}

fn serve_connection(stream: &TcpStream, registry: &Registry) {
    // `Read`/`Write` are implemented for `&TcpStream`, so the shared
    // borrow from the batch slice is enough.
    let mut stream = stream;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let response = {
        let _span = obs::span("serve.parse");
        read_request(&mut BufReader::new(stream)).and_then(|http| parse(&http))
    };
    let response = match response {
        Ok(request) => handle(registry, &request),
        Err(HttpError { status, message }) => Response::error(status, &message),
    };
    let _span = obs::span("serve.respond");
    let trace_id = format!("{:016x}", response.trace_id);
    let mut headers: Vec<(&str, &str)> = vec![("x-cache", response.cache.as_str())];
    if response.trace_id != 0 {
        headers.push(("x-trace-id", &trace_id));
    }
    let _ = write_response(
        &mut stream,
        response.status,
        response.content_type,
        &headers,
        &response.body,
    );
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
