//! The TCP daemon: a std-only, connection-oriented HTTP/1.1 listener in
//! front of [`crate::service::handle`].
//!
//! Connections are first-class and persistent: each accepted socket
//! becomes a `Conn` with a reusable read/parse buffer and a pending
//! output buffer, served keep-alive until the peer closes, sends
//! `Connection: close`, goes idle past `--idle-timeout`, or errors.
//! Admission is batched **per connection readiness**, not per request:
//! every tick the event loop fans the live connections across
//! `dscweaver_graph::par_shards` workers, and each worker drains its
//! connection's socket, parses up to `pipeline_depth` pipelined requests
//! from the buffer, serves them in order, and writes the responses back
//! in request order — so a burst of requests on one warm connection costs
//! one fan-out, no accept, and no per-request allocation beyond the
//! response itself.
//!
//! Per-request observability: `serve.parse`, `serve.lookup` /
//! `serve.compile` (in the registry), `serve.run` and `serve.respond`
//! spans, plus `serve.requests`, `serve.connections`,
//! `serve.conns_reused`, `serve.cache_hits`, `serve.cache_misses`,
//! `serve.canonical_hits` and `serve.evictions` counters, the
//! `serve.in_flight` gauge and the `serve.conn.lifetime` histogram.

use crate::http::{parse_buffered, render_response, HttpError};
use crate::registry::Registry;
use crate::service::{handle, parse, Response};
use crate::trace::TraceConfig;
use dscweaver_graph::par_shards;
use dscweaver_obs as obs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (`0` = ephemeral, kernel-assigned).
    pub port: u16,
    /// Worker threads for connection fan-out and pipeline internals
    /// (`0` = auto).
    pub threads: usize,
    /// Prepared-artifact cache capacity (canonical entries; LRU beyond
    /// it).
    pub cache_capacity: usize,
    /// Most new connections accepted per event-loop tick.
    pub batch: usize,
    /// Most connections held open concurrently (`--max-conns`); accepts
    /// beyond it wait in the listen backlog.
    pub max_conns: usize,
    /// Close a connection after this many milliseconds without a
    /// complete request (`--idle-timeout`).
    pub idle_timeout_ms: u64,
    /// Largest accepted request body in bytes (`--max-body`); larger
    /// declared bodies are rejected with `413`.
    pub max_body: usize,
    /// Most pipelined requests served from one connection per event-loop
    /// tick; further buffered requests wait for the next tick so one
    /// flooding client cannot monopolize a worker.
    pub pipeline_depth: usize,
    /// Back-pressure ceiling: process-keyed requests beyond this many
    /// concurrently in flight are rejected with `429` (`0` = unlimited).
    pub max_in_flight: u64,
    /// Tail sampling: keep the full trace of any request slower than
    /// this many milliseconds (`0` disables the slow criterion).
    pub trace_slow_ms: u64,
    /// Tail sampling: additionally keep every N-th request (`0`
    /// disables the sample grid).
    pub trace_sample: u64,
    /// How many kept request traces `/v1/traces` retains.
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let trace = TraceConfig::daemon_default();
        ServeConfig {
            port: 0,
            threads: 0,
            cache_capacity: 1024,
            batch: 64,
            max_conns: 1024,
            idle_timeout_ms: 10_000,
            max_body: crate::http::MAX_BODY,
            pipeline_depth: 32,
            max_in_flight: 0,
            trace_slow_ms: trace.slow_ns / 1_000_000,
            trace_sample: trace.sample_every,
            trace_capacity: trace.capacity,
        }
    }
}

/// A running daemon: listener thread plus shared registry. Dropping the
/// handle without [`Server::shutdown`] leaves the thread running for the
/// process lifetime — call `shutdown` for an orderly stop.
pub struct Server {
    addr: SocketAddr,
    registry: Arc<Registry>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts the event loop on a background
    /// thread.
    pub fn start(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // The daemon is a long-running process: turn on the cumulative
        // metrics plane (counters/gauges/histograms, read non-drainingly
        // by `/metrics`) without enabling span recording, whose
        // thread-local buffers would grow unboundedly until drained.
        obs::set_metrics_enabled(true);
        let registry = Arc::new(
            Registry::new(config.cache_capacity, config.threads)
                .with_max_in_flight(config.max_in_flight)
                .with_trace_config(TraceConfig {
                    slow_ns: config.trace_slow_ms.saturating_mul(1_000_000),
                    sample_every: config.trace_sample,
                    capacity: config.trace_capacity,
                }),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let registry = registry.clone();
            let stop = stop.clone();
            let config = config.clone();
            std::thread::spawn(move || event_loop(listener, registry, stop, config))
        };
        Ok(Server {
            addr,
            registry,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared artifact registry (for stats or in-process requests).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Stops the event loop and joins the listener thread. Buffered
    /// responses are flushed first; open connections are then dropped.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One live client connection: nonblocking socket, reusable read/parse
/// buffer, pending (response) output, and bookkeeping for idle pruning
/// and the lifetime/reuse metrics.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    out: Vec<u8>,
    opened: Instant,
    last_active: Instant,
    served: u64,
    close: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        let now = Instant::now();
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            opened: now,
            last_active: now,
            served: 0,
            close: false,
            dead: false,
        }
    }
}

fn event_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    stop: Arc<AtomicBool>,
    config: ServeConfig,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let accept_cap = config.batch.max(1);
    let max_conns = config.max_conns.max(1);
    let idle = Duration::from_millis(config.idle_timeout_ms.max(1));
    // Quiet-tick backoff: with live connections the loop spins (yield)
    // briefly before degrading to 1ms sleeps, so the next request on a
    // warm keep-alive connection is picked up in microseconds while a
    // long-idle daemon still costs ~nothing.
    let mut quiet_ticks: u32 = 0;
    while !stop.load(Ordering::Relaxed) {
        // Admit new connections, bounded per tick and by --max-conns
        // (excess accepts wait in the listen backlog).
        let mut accepted = 0usize;
        while conns.len() < max_conns && accepted < accept_cap {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Responses are written whole; never hold them back
                    // for coalescing (Nagle stalls pipelined batches on
                    // the peer's delayed ACK).
                    let _ = stream.set_nodelay(true);
                    obs::counter_add("serve.connections", 1);
                    conns.push(Conn::new(stream));
                    accepted += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        if conns.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        // Per-connection-readiness admission: fan every live connection
        // onto the workers once; the nonblocking read is the readiness
        // probe, and each worker serves its connection's whole buffered
        // pipeline before the next fan-out.
        let threads = threads_for(config.threads, conns.len());
        let progress = par_shards(threads, &mut conns, &|_, conn| {
            serve_ready(conn, &registry, &config)
        })
        .into_iter()
        .any(|p| p);
        // Prune: dead sockets, and connections idle past --idle-timeout
        // with nothing left to flush.
        let now = Instant::now();
        conns.retain(|conn| {
            let expired =
                conn.out.is_empty() && now.duration_since(conn.last_active) >= idle;
            let gone = conn.dead || expired || (conn.close && conn.out.is_empty());
            if gone {
                obs::histogram("serve.conn.lifetime")
                    .observe(conn.opened.elapsed().as_nanos() as u64);
            }
            !gone
        });
        if accepted == 0 && !progress {
            quiet_ticks += 1;
            if quiet_ticks < 500 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_millis(1));
            }
        } else {
            quiet_ticks = 0;
        }
    }
    // Orderly stop: one last flush attempt for buffered responses.
    for conn in &mut conns {
        let _ = conn.stream.write_all(&conn.out);
        obs::histogram("serve.conn.lifetime").observe(conn.opened.elapsed().as_nanos() as u64);
    }
}

/// Worker count for one readiness fan-out: the configured knob, bounded
/// by the connection count (no idle forks for few connections).
fn threads_for(threads: usize, conns: usize) -> usize {
    dscweaver_graph::effective_threads(threads, 8).min(conns.max(1))
}

/// One tick of one connection: drain the socket into the reusable
/// buffer, serve up to `pipeline_depth` buffered requests in order, and
/// flush as much of the output buffer as the socket accepts. Returns
/// whether any bytes moved or requests were served (the event loop's
/// idle/sleep signal).
fn serve_ready(conn: &mut Conn, registry: &Registry, config: &ServeConfig) -> bool {
    let mut progress = false;

    // Drain the socket. WouldBlock = no more data now; Ok(0) = peer
    // closed its half — serve what is buffered, then close.
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.close = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                conn.last_active = Instant::now();
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return progress;
            }
        }
    }

    // Serve buffered requests in arrival order, bounded per tick.
    let mut served_now = 0usize;
    while served_now < config.pipeline_depth.max(1) && !conn.close {
        let parsed = {
            let _span = obs::span("serve.parse");
            parse_buffered(&conn.buf, config.max_body)
        };
        match parsed {
            Ok(None) => break,
            Ok(Some((http, consumed))) => {
                conn.buf.drain(..consumed);
                obs::counter_add("serve.requests", 1);
                if !http.keep_alive {
                    conn.close = true;
                }
                let response = match parse(&http) {
                    Ok(request) => handle(registry, &request),
                    Err(HttpError { status, message }) => Response::error(status, &message),
                };
                conn.served += 1;
                if conn.served == 2 {
                    obs::counter_add("serve.conns_reused", 1);
                }
                push_response(conn, &response);
                served_now += 1;
            }
            Err(HttpError { status, message }) => {
                // Malformed framing is connection-fatal: answer, then
                // close (the buffer position is no longer trustworthy).
                conn.close = true;
                push_response(conn, &Response::error(status, &message));
                served_now += 1;
            }
        }
    }
    if served_now > 0 {
        conn.last_active = Instant::now();
        progress = true;
    }

    // Flush as much output as the socket accepts; leftovers stay for the
    // next tick.
    while !conn.out.is_empty() {
        match conn.stream.write(&conn.out) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.out.drain(..n);
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.close && conn.out.is_empty() {
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        conn.dead = true;
    }
    progress
}

/// Renders `response` (keep-alive unless the connection is closing) onto
/// the connection's output buffer, responses strictly in request order.
fn push_response(conn: &mut Conn, response: &Response) {
    let _span = obs::span("serve.respond");
    let trace_id = format!("{:016x}", response.trace_id);
    let mut headers: Vec<(&str, &str)> = vec![("x-cache", response.cache.as_str())];
    if response.trace_id != 0 {
        headers.push(("x-trace-id", &trace_id));
    }
    let rendered = render_response(
        response.status,
        response.content_type,
        &headers,
        &response.body,
        !conn.close,
    );
    conn.out.extend_from_slice(&rendered);
}
