//! A tiny blocking HTTP client for the daemon — used by the equivalence
//! tests, the bench suite and the `SERVING.md` examples.
//!
//! [`Client`] holds one keep-alive connection and reuses it across
//! requests by default ([`Client::no_keepalive`] is the
//! one-request-per-connection escape hatch); [`Client::pipeline`] writes
//! a whole batch of requests before reading the replies back in order.
//! The free functions [`request`]/[`post`]/[`get`] stay one-shot
//! (`Connection: close`), matching their historical semantics.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A daemon reply as seen on the wire.
#[derive(Clone, Debug)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Reply {
    /// First header value with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The daemon's `X-Cache` disposition (`hit` / `canonical` / `miss`
    /// / `none`).
    pub fn cache(&self) -> &str {
        self.header("x-cache").unwrap_or("none")
    }

    /// The daemon's `X-Trace-Id` header, if the request was traced (16
    /// hex digits; absent on transport-level errors).
    pub fn trace_id(&self) -> Option<&str> {
        self.header("x-trace-id")
    }

    /// Whether the daemon kept the connection open after this reply.
    pub fn keep_alive(&self) -> bool {
        self.header("connection") == Some("keep-alive")
    }
}

/// One daemon request for [`Client::pipeline`]: method, target (path +
/// query) and body.
#[derive(Clone, Debug)]
pub struct PipelinedRequest {
    /// Request method (`GET`, `POST`).
    pub method: String,
    /// Path plus any query string.
    pub target: String,
    /// Request body.
    pub body: String,
}

impl PipelinedRequest {
    /// A `POST` request.
    pub fn post(target: impl Into<String>, body: impl Into<String>) -> PipelinedRequest {
        PipelinedRequest {
            method: "POST".into(),
            target: target.into(),
            body: body.into(),
        }
    }

    /// A `GET` request.
    pub fn get(target: impl Into<String>) -> PipelinedRequest {
        PipelinedRequest {
            method: "GET".into(),
            target: target.into(),
            body: String::new(),
        }
    }
}

/// A daemon client holding (at most) one persistent connection.
///
/// Requests reuse the connection while the daemon keeps it open; a stale
/// connection (closed by the daemon's idle timeout between requests) is
/// transparently re-dialed once. With [`Client::no_keepalive`], every
/// request sends `Connection: close` on a fresh connection — the
/// pre-keep-alive behavior, kept for baseline measurements.
pub struct Client {
    addr: SocketAddr,
    keepalive: bool,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl Client {
    /// A keep-alive client for the daemon at `addr`. No connection is
    /// dialed until the first request.
    pub fn connect(addr: SocketAddr) -> Client {
        Client {
            addr,
            keepalive: true,
            stream: None,
            buf: Vec::new(),
        }
    }

    /// Switches to one-request-per-connection (`Connection: close`)
    /// mode.
    pub fn no_keepalive(mut self) -> Client {
        self.keepalive = false;
        self.stream = None;
        self
    }

    /// Sends one request and reads its reply. On a keep-alive client the
    /// connection is reused; if the daemon closed it in the meantime the
    /// request is retried once on a fresh connection.
    pub fn request(&mut self, method: &str, target: &str, body: &str) -> std::io::Result<Reply> {
        if !self.keepalive {
            return request(self.addr, method, target, body);
        }
        let fresh = self.stream.is_none();
        match self.try_request(method, target, body) {
            Ok(reply) => Ok(reply),
            Err(e) if !fresh => {
                // The daemon may have closed the idle connection between
                // requests; one retry on a fresh dial.
                let _ = e;
                self.stream = None;
                self.try_request(method, target, body)
            }
            Err(e) => Err(e),
        }
    }

    /// `POST` convenience.
    pub fn post(&mut self, target: &str, body: &str) -> std::io::Result<Reply> {
        self.request("POST", target, body)
    }

    /// `GET` convenience.
    pub fn get(&mut self, target: &str) -> std::io::Result<Reply> {
        self.request("GET", target, "")
    }

    /// Pipelines a batch: writes every request back-to-back on the one
    /// connection, then reads the replies, which the daemon returns in
    /// request order. Requires keep-alive mode.
    pub fn pipeline(&mut self, requests: &[PipelinedRequest]) -> std::io::Result<Vec<Reply>> {
        if !self.keepalive {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "pipelining needs a keep-alive client",
            ));
        }
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        self.ensure_stream()?;
        let stream = self.stream.as_mut().expect("ensured above");
        let mut wire = Vec::new();
        for r in requests {
            render_request(&mut wire, &r.method, &r.target, self.addr, &r.body, true);
        }
        stream.write_all(&wire)?;
        stream.flush()?;
        let mut replies = Vec::with_capacity(requests.len());
        for _ in requests {
            replies.push(self.read_reply()?);
        }
        Ok(replies)
    }

    fn ensure_stream(&mut self) -> std::io::Result<()> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            // A pipelined batch spans several TCP segments; without
            // nodelay the tail segment waits on the server's delayed ACK.
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
            self.buf.clear();
        }
        Ok(())
    }

    fn try_request(&mut self, method: &str, target: &str, body: &str) -> std::io::Result<Reply> {
        self.ensure_stream()?;
        let stream = self.stream.as_mut().expect("ensured above");
        let mut wire = Vec::new();
        render_request(&mut wire, method, target, self.addr, body, true);
        stream.write_all(&wire)?;
        stream.flush()?;
        self.read_reply()
    }

    /// Reads one content-length-framed reply off the persistent
    /// connection (leftover buffered bytes belong to the next reply).
    fn read_reply(&mut self) -> std::io::Result<Reply> {
        let malformed = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed reply");
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((reply, consumed)) = parse_reply_framed(&self.buf) {
                self.buf.drain(..consumed);
                if !reply.keep_alive() {
                    self.stream = None;
                }
                return Ok(reply);
            }
            let stream = self.stream.as_mut().ok_or_else(malformed)?;
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                self.stream = None;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-reply",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn render_request(
    out: &mut Vec<u8>,
    method: &str,
    target: &str,
    addr: SocketAddr,
    body: &str,
    keep_alive: bool,
) {
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
}

/// Sends one `Connection: close` request on a fresh connection and reads
/// the whole reply. `target` is the path plus any query string (e.g.
/// `/v1/simulate?branch=g:T`).
pub fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut wire = Vec::new();
    render_request(&mut wire, method, target, addr, body, false);
    stream.write_all(&wire)?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_reply(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed reply"))
}

/// One-shot `POST` convenience (`Connection: close`).
pub fn post(addr: SocketAddr, target: &str, body: &str) -> std::io::Result<Reply> {
    request(addr, "POST", target, body)
}

/// One-shot `GET` convenience (`Connection: close`).
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<Reply> {
    request(addr, "GET", target, "")
}

fn parse_reply(raw: &str) -> Option<Reply> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let mut lines = head.lines();
    let status: u16 = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Some(Reply {
        status,
        headers,
        body: body.to_string(),
    })
}

/// Parses one complete `Content-Length`-framed reply from the front of
/// `buf`, returning it and the bytes consumed — the keep-alive framing,
/// where the connection stays open and the next reply follows.
fn parse_reply_framed(buf: &[u8]) -> Option<(Reply, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut lines = head.lines();
    let status: u16 = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())?;
    let body_start = head_end + 4;
    if buf.len() < body_start + length {
        return None;
    }
    let body = String::from_utf8(buf[body_start..body_start + length].to_vec()).ok()?;
    Some((
        Reply {
            status,
            headers,
            body,
        },
        body_start + length,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_reply() {
        let raw = "HTTP/1.1 200 OK\r\nX-Cache: hit\r\ncontent-length: 2\r\n\r\n{}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.cache(), "hit");
        assert_eq!(reply.body, "{}");
    }

    #[test]
    fn framed_parse_splits_back_to_back_replies() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: keep-alive\r\n\r\n{}HTTP/1.1 429 Too Many Requests\r\ncontent-length: 0\r\n\r\n";
        let (first, used) = parse_reply_framed(raw).unwrap();
        assert_eq!(first.status, 200);
        assert!(first.keep_alive());
        let (second, used2) = parse_reply_framed(&raw[used..]).unwrap();
        assert_eq!(second.status, 429);
        assert!(!second.keep_alive());
        assert_eq!(used + used2, raw.len());
        // A prefix is "not yet".
        assert!(parse_reply_framed(&raw[..used - 1]).is_none());
    }
}
