//! A tiny blocking HTTP client for the daemon — used by the equivalence
//! tests, the bench suite and the `SERVING.md` examples. One request per
//! connection, matching the daemon's `Connection: close` framing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A daemon reply as seen on the wire.
#[derive(Clone, Debug)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Reply {
    /// First header value with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The daemon's `X-Cache` disposition (`hit` / `miss` / `none`).
    pub fn cache(&self) -> &str {
        self.header("x-cache").unwrap_or("none")
    }

    /// The daemon's `X-Trace-Id` header, if the request was traced (16
    /// hex digits; absent on transport-level errors).
    pub fn trace_id(&self) -> Option<&str> {
        self.header("x-trace-id")
    }
}

/// Sends one request and reads the whole reply. `target` is the path plus
/// any query string (e.g. `/v1/simulate?branch=g:T`).
pub fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_reply(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed reply"))
}

/// `POST` convenience.
pub fn post(addr: SocketAddr, target: &str, body: &str) -> std::io::Result<Reply> {
    request(addr, "POST", target, body)
}

/// `GET` convenience.
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<Reply> {
    request(addr, "GET", target, "")
}

fn parse_reply(raw: &str) -> Option<Reply> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let mut lines = head.lines();
    let status: u16 = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Some(Reply {
        status,
        headers,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_reply() {
        let raw = "HTTP/1.1 200 OK\r\nX-Cache: hit\r\ncontent-length: 2\r\n\r\n{}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.cache(), "hit");
        assert_eq!(reply.body, "{}");
    }
}
