//! Request-scoped observability: per-request trace ids, a thread-local
//! span collector, and a **tail-sampled** ring buffer of recent request
//! traces.
//!
//! Every request gets a trace id (returned as the `X-Trace-Id` response
//! header) whether or not its trace is kept. While a request runs, the
//! serving thread collects its phase spans (`serve.lookup`,
//! `serve.compile`, `serve.run`, …) into a thread-local buffer — requests
//! are served whole on one worker thread, so no cross-thread stitching is
//! needed. When the request completes, the **tail** decision runs: the
//! full span tree is kept only if the request was slower than the
//! configured threshold, or if it falls on the 1-in-N sample grid.
//! Everything else is dropped at zero retained cost, which is what makes
//! always-on tracing affordable at production rates.
//!
//! Kept traces live in a bounded ring ([`TraceConfig::capacity`]); `GET
//! /v1/traces` renders the ring as Chrome trace-event JSON through the
//! existing [`dscweaver_obs::TraceSnapshot`] sink, one lane per request,
//! loadable in Perfetto or `chrome://tracing`.

use dscweaver_obs::{Event, EventKind, TraceSnapshot};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Tail-sampling configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Keep every request slower than this many nanoseconds (0 disables
    /// the slow-path criterion).
    pub slow_ns: u64,
    /// Additionally keep every N-th request (0 disables the sample
    /// grid). Sampling is by admission sequence number, so it is uniform
    /// under any traffic mix.
    pub sample_every: u64,
    /// Ring capacity: how many kept traces are retained (oldest evicted
    /// first).
    pub capacity: usize,
}

impl TraceConfig {
    /// Request tracing fully off — the default for directly constructed
    /// registries (`oneshot`, benches). The daemon turns sampling on via
    /// its `ServeConfig`.
    pub fn disabled() -> TraceConfig {
        TraceConfig { slow_ns: 0, sample_every: 0, capacity: 0 }
    }

    /// The daemon defaults: keep requests slower than 250 ms, sample
    /// 1/64 of the rest, retain the last 256 kept traces.
    pub fn daemon_default() -> TraceConfig {
        TraceConfig {
            slow_ns: 250_000_000,
            sample_every: 64,
            capacity: 256,
        }
    }

    /// Whether any keep criterion is configured.
    pub fn active(&self) -> bool {
        self.capacity > 0 && (self.slow_ns > 0 || self.sample_every > 0)
    }
}

/// One phase span inside a kept request trace. Offsets are nanoseconds
/// from the owning request's start.
#[derive(Clone, Copy, Debug)]
pub struct PhaseRecord {
    /// Span name from the `serve.*` taxonomy.
    pub name: &'static str,
    /// Start offset within the request, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
}

/// A kept request trace: identity, timing, why it was kept, and its
/// phase spans.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// The id returned to the client as `X-Trace-Id`.
    pub trace_id: u64,
    /// Endpoint name (`weave`, `validate`, …).
    pub endpoint: &'static str,
    /// Request start, ns since the tracer's epoch.
    pub start_ns: u64,
    /// End-to-end duration, ns.
    pub dur_ns: u64,
    /// HTTP status of the response.
    pub status: u16,
    /// Why the tail kept it: `"slow"` or `"sampled"`.
    pub kept: &'static str,
    /// Phase spans, request-relative.
    pub phases: Vec<PhaseRecord>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

struct Collector {
    t0: Instant,
    phases: Vec<PhaseRecord>,
}

/// Starts collecting phase spans for the current thread's request.
/// Paired with [`end_collect`]; nested activation is not supported (the
/// daemon serves one request per worker thread at a time).
pub fn begin_collect() {
    COLLECTOR.with(|c| {
        *c.borrow_mut() = Some(Collector { t0: Instant::now(), phases: Vec::new() })
    });
}

/// Stops collecting and returns the phases recorded since
/// [`begin_collect`] (None if collection was never started on this
/// thread).
pub fn end_collect() -> Option<Vec<PhaseRecord>> {
    COLLECTOR.with(|c| c.borrow_mut().take().map(|col| col.phases))
}

/// RAII guard for one request phase; records into the thread's active
/// collector on drop. A no-op (one TLS flag read) when no collection is
/// active, so the probes can stay on the serving path permanently.
#[must_use = "a phase records its duration when dropped"]
pub struct PhaseGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        COLLECTOR.with(|c| {
            if let Some(col) = c.borrow_mut().as_mut() {
                col.phases.push(PhaseRecord {
                    name: self.name,
                    start_ns: start.duration_since(col.t0).as_nanos() as u64,
                    dur_ns: start.elapsed().as_nanos() as u64,
                });
            }
        });
    }
}

/// Opens a request phase span (see [`PhaseGuard`]).
pub fn phase(name: &'static str) -> PhaseGuard {
    let active = COLLECTOR.with(|c| c.borrow().is_some());
    PhaseGuard {
        name,
        start: active.then(Instant::now),
    }
}

/// The per-registry tracer: id generation, the tail decision, and the
/// ring of kept traces.
pub struct Tracer {
    config: TraceConfig,
    epoch: Instant,
    seq: AtomicU64,
    kept: AtomicU64,
    ring: Mutex<VecDeque<RequestTrace>>,
}

/// SplitMix64 — turns the dense admission sequence into well-spread,
/// stable trace ids (no randomness source needed, ids are reproducible
/// for a deterministic request sequence).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Tracer {
    /// A tracer with the given tail-sampling configuration.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            config,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Whether any keep criterion is configured (if not, requests skip
    /// collection entirely).
    pub fn active(&self) -> bool {
        self.config.active()
    }

    /// Nanoseconds since the tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Admits one request: returns `(sequence, trace_id)`.
    pub fn next_id(&self) -> (u64, u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        (seq, splitmix64(seq + 1))
    }

    /// The tail decision for a completed request: `Some(reason)` when
    /// the trace should be kept.
    pub fn keep(&self, seq: u64, dur_ns: u64) -> Option<&'static str> {
        if self.config.capacity == 0 {
            return None;
        }
        if self.config.slow_ns > 0 && dur_ns >= self.config.slow_ns {
            return Some("slow");
        }
        if self.config.sample_every > 0 && seq % self.config.sample_every == 0 {
            return Some("sampled");
        }
        None
    }

    /// Pushes a kept trace into the ring, evicting the oldest beyond
    /// capacity.
    pub fn push(&self, trace: RequestTrace) {
        self.kept.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= self.config.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total traces ever kept (kept − retained = evicted).
    pub fn total_kept(&self) -> u64 {
        self.kept.load(Ordering::Relaxed)
    }

    /// Renders the retained traces as Chrome trace-event JSON through
    /// the shared [`TraceSnapshot`] sink: one lane per kept request
    /// (named `req-<trace-id> <endpoint>`), a `serve.request` span
    /// covering the request, and its collected phase spans nested
    /// within. Deterministic given the ring contents.
    pub fn to_chrome_json(&self) -> String {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let mut lanes = Vec::with_capacity(ring.len());
        let mut events = Vec::new();
        for (lane_ix, t) in ring.iter().enumerate() {
            let lane = lane_ix as u32;
            lanes.push(format!("req-{:016x} {}", t.trace_id, t.endpoint));
            let detail = format!(
                "trace_id={:016x} endpoint={} status={} kept={}",
                t.trace_id, t.endpoint, t.status, t.kept
            );
            events.push(Event {
                kind: EventKind::Begin,
                name: "serve.request",
                detail: Some(detail.into_boxed_str()),
                lane,
                ts_ns: t.start_ns,
            });
            for p in &t.phases {
                events.push(Event {
                    kind: EventKind::Begin,
                    name: p.name,
                    detail: None,
                    lane,
                    ts_ns: t.start_ns + p.start_ns,
                });
                events.push(Event {
                    kind: EventKind::End,
                    name: p.name,
                    detail: None,
                    lane,
                    ts_ns: t.start_ns + p.start_ns + p.dur_ns,
                });
            }
            events.push(Event {
                kind: EventKind::End,
                name: "serve.request",
                detail: None,
                lane,
                ts_ns: t.start_ns + t.dur_ns,
            });
        }
        TraceSnapshot::from_events(events, lanes).to_chrome_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kept_trace(id: u64) -> RequestTrace {
        RequestTrace {
            trace_id: id,
            endpoint: "weave",
            start_ns: id * 1000,
            dur_ns: 500,
            status: 200,
            kept: "sampled",
            phases: vec![PhaseRecord { name: "serve.lookup", start_ns: 10, dur_ns: 100 }],
        }
    }

    #[test]
    fn tail_decision_keeps_slow_and_sampled() {
        let t = Tracer::new(TraceConfig { slow_ns: 1000, sample_every: 4, capacity: 8 });
        assert_eq!(t.keep(1, 2000), Some("slow"));
        assert_eq!(t.keep(4, 10), Some("sampled"));
        assert_eq!(t.keep(1, 10), None);
        let off = Tracer::new(TraceConfig::disabled());
        assert_eq!(off.keep(0, u64::MAX), None);
        assert!(!off.active());
    }

    #[test]
    fn ring_is_bounded() {
        let t = Tracer::new(TraceConfig { slow_ns: 0, sample_every: 1, capacity: 3 });
        for i in 0..10 {
            t.push(kept_trace(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_kept(), 10);
        let json = t.to_chrome_json();
        // Oldest evicted: trace 7..9 remain.
        assert!(json.contains("req-0000000000000009"), "{json}");
        assert!(!json.contains("req-0000000000000001 "), "{json}");
    }

    #[test]
    fn collector_records_phases() {
        begin_collect();
        {
            let _p = phase("serve.lookup");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let phases = end_collect().expect("collection was active");
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "serve.lookup");
        assert!(phases[0].dur_ns >= 1_000_000);
        // Inactive: guard is a no-op and end_collect returns None.
        let _p = phase("serve.lookup");
        assert!(end_collect().is_none());
    }

    #[test]
    fn trace_ids_are_stable_and_distinct() {
        let t = Tracer::new(TraceConfig::daemon_default());
        let (s0, id0) = t.next_id();
        let (s1, id1) = t.next_id();
        assert_eq!((s0, s1), (0, 1));
        assert_ne!(id0, id1);
        assert_eq!(id0, splitmix64(1));
    }

    #[test]
    fn chrome_json_round_trips() {
        use dscweaver_obs::json::{self, Json};
        let t = Tracer::new(TraceConfig { slow_ns: 0, sample_every: 1, capacity: 4 });
        t.push(kept_trace(1));
        let doc = json::parse(&t.to_chrome_json()).expect("valid chrome JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("serve.request")));
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("serve.lookup")));
    }
}
