//! Recorder behaviour: span balance and nesting, disabled-path
//! stability, counter/gauge registry, lanes, and the Chrome sink
//! round-tripped through the in-repo JSON parser.

use dscweaver_obs as obs;
use dscweaver_obs::json::{self, Json};
use dscweaver_obs::EventKind;

#[test]
fn disabled_recorder_records_nothing_and_is_byte_stable() {
    let _serial = obs::test_lock();
    obs::set_enabled(false);
    drop(obs::take());

    let span = obs::span("ignored");
    obs::instant("ignored.instant");
    obs::counter_add("ignored.counter", 7);
    obs::gauge_set("ignored.gauge", 1.5);
    let lane = obs::worker_lane(3);
    obs::instant_with("ignored.detail", || panic!("detail must not be built when disabled"));
    // The histogram probe is gated on the same flag: observe() while
    // disabled must leave the registered histogram untouched (one relaxed
    // load, no increment).
    let hist = obs::histogram("ignored.hist");
    let before = hist.snapshot();
    hist.observe(1234);
    let after = hist.snapshot();
    assert_eq!(after.count(), before.count());
    assert_eq!(after.sum(), before.sum());
    assert_eq!(after.buckets(), before.buckets());
    drop(lane);
    drop(span);

    let snap = obs::take();
    assert!(snap.is_empty());
    assert!(snap.events().is_empty());
    assert!(snap.counters().is_empty());
    assert!(snap.gauges().is_empty());
    assert_eq!(snap.to_chrome_json(), obs::TraceSnapshot::EMPTY_CHROME_JSON);
    // Byte-stable: a second empty snapshot serializes identically.
    assert_eq!(obs::take().to_chrome_json(), obs::TraceSnapshot::EMPTY_CHROME_JSON);
}

#[test]
fn spans_nest_and_balance_on_one_lane() {
    let _serial = obs::test_lock();
    let ((), snap) = obs::record_with(|| {
        let _a = obs::span("a");
        {
            let _b = obs::span_with("b", || "x=1".to_string());
            obs::instant("tick");
        }
        let _c = obs::span("c");
    });

    let begins = snap.events().iter().filter(|e| e.kind == EventKind::Begin).count();
    let ends = snap.events().iter().filter(|e| e.kind == EventKind::End).count();
    assert_eq!(begins, 3);
    assert_eq!(ends, 3);

    let totals = snap.phase_totals();
    let names: Vec<&str> = totals.iter().map(|t| t.name).collect();
    assert!(names.contains(&"a") && names.contains(&"b") && names.contains(&"c"));
    let a = totals.iter().find(|t| t.name == "a").unwrap();
    let b = totals.iter().find(|t| t.name == "b").unwrap();
    let c = totals.iter().find(|t| t.name == "c").unwrap();
    // Children are nested inside `a`, so a's total covers both and its
    // self time excludes them.
    assert!(a.total_ns >= b.total_ns + c.total_ns);
    assert_eq!(a.self_ns, a.total_ns - b.total_ns - c.total_ns);
    assert_eq!((a.count, b.count, c.count), (1, 1, 1));
}

#[test]
fn span_opened_while_enabled_still_closes_after_disable() {
    let _serial = obs::test_lock();
    obs::set_enabled(true);
    drop(obs::take());
    let span = obs::span("toggled");
    obs::set_enabled(false);
    drop(span); // must still record End so the stack balances
    obs::set_enabled(true);
    let snap = obs::take();
    obs::set_enabled(false);

    let kinds: Vec<EventKind> = snap.events().iter().map(|e| e.kind).collect();
    assert_eq!(kinds, vec![EventKind::Begin, EventKind::End]);
    assert_eq!(snap.phase_totals().len(), 1);
    assert_eq!(snap.phase_totals()[0].count, 1);
}

#[test]
fn counters_accumulate_and_gauges_overwrite() {
    let _serial = obs::test_lock();
    let ((), snap) = obs::record_with(|| {
        obs::counter_add("work.units", 2);
        obs::counter_add("work.units", 5);
        obs::gauge_set("rate", 0.25);
        obs::gauge_set("rate", 0.75);
    });
    assert_eq!(snap.counters().get("work.units"), Some(&7));
    assert_eq!(snap.gauges().get("rate"), Some(&0.75));
    // take() drained the registry.
    assert!(obs::take().is_empty());
}

#[test]
fn worker_lanes_are_stable_across_scopes() {
    let _serial = obs::test_lock();
    let ((), snap) = obs::record_with(|| {
        for _round in 0..2 {
            std::thread::scope(|scope| {
                for slot in 0..2 {
                    scope.spawn(move || {
                        let _lane = obs::worker_lane(slot);
                        {
                            let _s = obs::span("window");
                        }
                        // `thread::scope` does not wait for TLS teardown;
                        // flush inside the closure like the pool does.
                        obs::flush_thread();
                    });
                }
            });
        }
    });
    let mut lanes: Vec<&str> = snap
        .events()
        .iter()
        .map(|e| snap.lane_name(e.lane))
        .collect();
    lanes.sort_unstable();
    lanes.dedup();
    // Two rounds reuse the same two lanes: no per-scope lane growth.
    assert_eq!(lanes, vec!["worker-0", "worker-1"]);
    let window = snap
        .phase_totals()
        .into_iter()
        .find(|t| t.name == "window")
        .unwrap();
    assert_eq!(window.count, 4);
}

#[test]
fn chrome_json_round_trips_through_parser() {
    let _serial = obs::test_lock();
    let ((), snap) = obs::record_with(|| {
        let _outer = obs::span("outer");
        let _inner = obs::span_with("inner", || "k=\"v\"\n".to_string());
        obs::instant("mark");
        obs::counter_add("n", 3);
        obs::gauge_set("g", 1.5);
    });
    let text = snap.to_chrome_json();
    let doc = json::parse(&text).expect("emitted trace must be valid JSON");
    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();

    let phases: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("ph").and_then(Json::as_str))
        .collect();
    assert!(phases.contains(&"M"), "thread_name metadata present");
    assert!(phases.contains(&"B") && phases.contains(&"E") && phases.contains(&"i"));
    assert!(phases.contains(&"C"), "counter events present");

    // The escaped detail survives the round trip.
    let inner = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("inner"))
        .unwrap();
    let detail = inner
        .get("args")
        .and_then(|a| a.get("detail"))
        .and_then(Json::as_str)
        .unwrap();
    assert_eq!(detail, "k=\"v\"\n");

    // Timestamps are in microseconds and non-decreasing.
    let ts: Vec<f64> = events
        .iter()
        .filter(|e| matches!(e.get("ph").and_then(Json::as_str), Some("B" | "E")))
        .filter_map(|e| e.get("ts").and_then(Json::as_num))
        .collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "sorted: {ts:?}");
}

#[test]
fn merge_combines_snapshots() {
    let _serial = obs::test_lock();
    let ((), mut first) = obs::record_with(|| {
        let _s = obs::span("phase.one");
        obs::counter_add("n", 1);
    });
    let ((), second) = obs::record_with(|| {
        let _s = obs::span("phase.two");
        obs::counter_add("n", 2);
        obs::gauge_set("g", 4.0);
    });
    first.merge(second);
    let names: Vec<&str> = first.phase_totals().iter().map(|t| t.name).collect();
    assert!(names.contains(&"phase.one") && names.contains(&"phase.two"));
    assert_eq!(first.counters().get("n"), Some(&3));
    assert_eq!(first.gauges().get("g"), Some(&4.0));
    let ts: Vec<u64> = first.events().iter().map(|e| e.ts_ns).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]));
}
