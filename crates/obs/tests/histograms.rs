//! Histogram correctness under concurrency: identical totals for any
//! thread count, snapshot merges that commute with concurrent recording,
//! percentile estimates pinned against a scalar reference, and the
//! registry-to-Prometheus round trip.

use dscweaver_obs as obs;
use dscweaver_obs::hist::{Histogram, HistogramSnapshot};
use dscweaver_obs::json::Json;

/// A deterministic value stream spanning many buckets (sub-µs to whole
/// seconds when read as nanoseconds).
fn values(n: u64) -> Vec<u64> {
    (0..n)
        .map(|i| i.wrapping_mul(2654435761).wrapping_add(12345) % 1_000_000_007)
        .collect()
}

#[test]
fn totals_are_identical_for_any_thread_count() {
    let vals = values(10_000);
    let reference = {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        h.snapshot()
    };
    for threads in [1usize, 2, 4, 8] {
        // All threads hammer one shared histogram.
        let shared = Histogram::new();
        std::thread::scope(|s| {
            for chunk in vals.chunks(vals.len().div_ceil(threads)) {
                let shared = &shared;
                s.spawn(move || {
                    for &v in chunk {
                        shared.record(v);
                    }
                });
            }
        });
        let got = shared.snapshot();
        assert_eq!(got.buckets(), reference.buckets(), "{threads} threads");
        assert_eq!(got.count(), reference.count());
        assert_eq!(got.sum(), reference.sum());
        assert_eq!(got.max(), reference.max());

        // One histogram per thread, merged afterwards: same answer, and
        // therefore the same percentiles.
        let parts: Vec<HistogramSnapshot> = std::thread::scope(|s| {
            let handles: Vec<_> = vals
                .chunks(vals.len().div_ceil(threads))
                .map(|chunk| {
                    s.spawn(move || {
                        let h = Histogram::new();
                        for &v in chunk {
                            h.record(v);
                        }
                        h.snapshot()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut merged = HistogramSnapshot::default();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.buckets(), reference.buckets(), "{threads}-way merge");
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.sum(), reference.sum());
        assert_eq!(merged.max(), reference.max());
        assert_eq!(merged.p50(), reference.p50());
        assert_eq!(merged.p90(), reference.p90());
        assert_eq!(merged.p99(), reference.p99());
    }
}

#[test]
fn percentiles_track_a_scalar_reference_within_bucket_resolution() {
    let mut vals = values(5_000);
    let h = Histogram::new();
    for &v in &vals {
        h.record(v);
    }
    let snap = h.snapshot();
    vals.sort_unstable();
    for (q, got) in [(0.50, snap.p50()), (0.90, snap.p90()), (0.99, snap.p99())] {
        let rank = ((q * vals.len() as f64).ceil() as usize).max(1);
        let exact = vals[rank - 1];
        // A log2 bucket reports its inclusive upper bound, so the
        // estimate can overshoot the exact order statistic by at most 2x
        // and never undershoots it.
        assert!(got >= exact, "q={q}: {got} < exact {exact}");
        assert!(
            got <= exact.saturating_mul(2).max(1),
            "q={q}: {got} > 2x exact {exact}"
        );
    }
    // The estimator is exact at the extremes it tracks directly.
    assert_eq!(snap.quantile(1.0), *vals.last().unwrap());
    assert_eq!(snap.max(), *vals.last().unwrap());
}

#[test]
fn registry_renders_and_parses_as_prometheus_exposition() {
    let _serial = obs::test_lock();
    obs::set_metrics_enabled(true);
    obs::hist::reset_all();
    let h = obs::histogram("test.roundtrip.latency");
    for v in [900, 1_500_000, 3_000_000, 750_000_000] {
        h.observe(v);
    }
    obs::counter_add("test.roundtrip.requests", 3);
    let snap = obs::metrics_snapshot();
    obs::set_enabled(false);
    drop(obs::take());

    let text = obs::prom::render(&snap);
    let parsed = obs::prom::parse(&text).expect("rendered exposition must parse");

    // The counter is there with the _total suffix.
    let counter = parsed
        .iter()
        .find(|m| m.name == "test_roundtrip_requests_total")
        .expect("counter rendered");
    assert_eq!(counter.value, 3.0);

    // The histogram series is cumulative and consistent: every bucket is
    // monotonically non-decreasing, +Inf equals _count, and the sum
    // matches the recorded nanoseconds converted to seconds.
    let buckets: Vec<&obs::prom::Sample> = parsed
        .iter()
        .filter(|m| m.name == "test_roundtrip_latency_seconds_bucket")
        .collect();
    assert!(buckets.len() >= 2);
    assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
    let count = parsed
        .iter()
        .find(|m| m.name == "test_roundtrip_latency_seconds_count")
        .unwrap();
    assert_eq!(count.value, 4.0);
    assert_eq!(buckets.last().unwrap().value, 4.0);
    assert_eq!(
        buckets.last().unwrap().labels,
        vec![("le".to_string(), "+Inf".to_string())]
    );
    let sum = parsed
        .iter()
        .find(|m| m.name == "test_roundtrip_latency_seconds_sum")
        .unwrap();
    let expected = (900u64 + 1_500_000 + 3_000_000 + 750_000_000) as f64 / 1e9;
    assert!((sum.value - expected).abs() < 1e-9);

    // And the Chrome-facing JSON parser agrees the exposition is not
    // JSON — guarding against the two formats being mixed up by a sink.
    assert!(obs::json::parse(&text).is_err() || !matches!(obs::json::parse(&text), Ok(Json::Obj(_))));
}
