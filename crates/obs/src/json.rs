//! A minimal recursive-descent JSON parser, used to validate the
//! Chrome-trace output without external dependencies.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escape
//! sequences including surrogate pairs, numbers, booleans, null) with a
//! nesting-depth cap. Object keys keep their source order and duplicates
//! are preserved as-is; [`Json::get`] returns the first match.
//!
//! ```
//! use dscweaver_obs::json::{parse, Json};
//!
//! let doc = parse(r#"{"traceEvents":[{"ph":"B","ts":1.5}],"displayTimeUnit":"ms"}"#).unwrap();
//! let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("B"));
//! assert_eq!(events[0].get("ts").and_then(Json::as_num), Some(1.5));
//! assert!(parse("{oops").is_err());
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, with escape sequences decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as source-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// First value for `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Static description of the failure.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document (one value plus surrounding
/// whitespace; trailing bytes are an error).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { s: input.as_bytes(), i: 0 };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError { offset: self.i, message }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':', "expected ':' after object key")?;
            self.ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value(depth + 1)?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require the paired low
                                // surrogate escape.
                                if self.s[self.i..].starts_with(b"\\u") {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let cp = 0x10000
                                            + ((hi - 0xD800) << 10)
                                            + (lo - 0xDC00);
                                        char::from_u32(cp).unwrap_or('\u{FFFD}')
                                    } else {
                                        '\u{FFFD}'
                                    }
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.i += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so valid).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.s.len() && self.s[self.i] & 0xC0 == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.s[start..self.i]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.i + 4 > self.s.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.s[self.i..self.i + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { offset: start, message: "invalid number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Json::Str("a\nbA".into()));
        assert_eq!(
            parse(r#"[1, [2], {"k": 3}]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0)]),
                Json::Obj(vec![("k".into(), Json::Num(3.0))]),
            ])
        );
    }

    #[test]
    fn decodes_surrogate_pairs() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(parse(r#""\ud83d""#).unwrap(), Json::Str("\u{FFFD}".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", r#"{"a"}"#, "01x", "\"\u{1}\"", "[1] tail", "nul"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "depth cap");
    }

    #[test]
    fn object_lookup_and_accessors() {
        let doc = parse(r#"{"a": 1, "b": "two", "a": 3}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_num), Some(1.0));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("two"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Bool(false).as_bool(), Some(false));
        assert!(Json::Null.as_arr().is_none());
    }
}
