//! Lock-free fixed-bucket latency histograms on a log₂ scale.
//!
//! A [`Histogram`] is 64 relaxed `AtomicU64` buckets plus exact count,
//! sum and max cells. Bucket `i` (for `i ≥ 1`) holds values `v` with
//! `2^(i-1) ≤ v < 2^i`; bucket 0 holds exactly `v = 0`; the last bucket
//! absorbs everything from `2^62` up. Recording is wait-free (four
//! relaxed atomic RMWs, no allocation, no lock), so histograms can sit on
//! the hottest serving paths; merging and percentile extraction happen on
//! immutable [`HistogramSnapshot`]s.
//!
//! Histograms are **cumulative**: unlike spans and counters they are not
//! drained by [`crate::take`] — `/metrics` scrapes must see monotonic
//! totals. [`crate::histogram`] registers a leaked `&'static Histogram`
//! under a stable name; [`snapshot_all`] (via
//! [`crate::metrics_snapshot`]) reads them all without resetting.
//!
//! ```
//! use dscweaver_obs::hist::Histogram;
//!
//! let h = Histogram::new();
//! for v in [100, 200, 400, 800, 100_000] {
//!     h.record(v);
//! }
//! let s = h.snapshot();
//! assert_eq!(s.count(), 5);
//! assert_eq!(s.max(), 100_000);
//! assert!(s.quantile(0.5) >= 200 && s.quantile(0.5) < 512);
//! assert_eq!(s.quantile(1.0), 100_000); // exact max
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of log₂ buckets. Covers 0 through `u64::MAX` nanoseconds (the
/// top bucket is clamped), i.e. any latency this process can measure.
pub const NUM_BUCKETS: usize = 64;

/// The bucket a value lands in: 0 for 0, otherwise `floor(log2(v)) + 1`,
/// clamped to the top bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((u64::BITS - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold (`2^i - 1`, saturating at
/// `u64::MAX` for the top bucket) — the inclusive upper bound percentile
/// extraction reports.
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    if i >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free log₂-scale histogram. See the module docs for the bucket
/// layout. All methods take `&self`; concurrent recording from any number
/// of threads is safe and loss-free (every increment is an atomic RMW),
/// so bucket totals are exactly the multiset of recorded values
/// regardless of thread interleaving.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value unconditionally (no recorder gate) — for local
    /// histograms the caller owns, e.g. bench-sample aggregation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records one value if the metrics plane is enabled — the gated
    /// probe registered histograms use. Costs one relaxed atomic load
    /// when metrics are off.
    #[inline]
    pub fn observe(&self, v: u64) {
        if crate::metrics_enabled() {
            self.record(v);
        }
    }

    /// An immutable copy of the current bucket totals. Taken while other
    /// threads record, each cell is individually exact; the derived count
    /// is always the sum of the bucket cells, so snapshots are internally
    /// consistent for exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Resets every cell to zero (tests and benchmarks only; a live
    /// `/metrics` histogram must stay monotonic).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// An immutable view of a [`Histogram`], with merge and percentile
/// extraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Per-bucket counts (`buckets()[i]` values fell in bucket `i`).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Total recorded values (always equals the sum of the buckets).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of every recorded value (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile-`q` value: the inclusive upper bound of the bucket
    /// holding the `ceil(q · count)`-th smallest recorded value, clamped
    /// to the exact maximum (so `quantile(1.0)` returns the true max,
    /// and every quantile over-approximates by less than 2x — the log₂
    /// bucket width). Deterministic given the bucket totals; 0 when
    /// empty. `q` outside `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another snapshot into this one: buckets, counts and sums
    /// add; max takes the larger side. Merging is commutative and
    /// associative, so per-thread or per-shard histograms aggregate to
    /// exactly the histogram a single shared recorder would have built.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// The global name → histogram registry behind [`crate::histogram`].
/// Entries are leaked (`&'static`) so probes can hold a handle with no
/// lifetime or refcount on the hot path.
fn hist_registry() -> &'static Mutex<Vec<(&'static str, &'static Histogram)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(&'static str, &'static Histogram)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Looks up (or creates) the process-wide histogram registered under
/// `name`. The returned reference is `'static` — resolve it once and
/// call [`Histogram::observe`] per probe; repeated lookups take the
/// registry lock. Names should follow the dotted span taxonomy
/// (`serve.latency.weave`).
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = hist_registry().lock().unwrap_or_else(|e| e.into_inner());
    if let Some((_, h)) = reg.iter().find(|(n, _)| *n == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    reg.push((name, h));
    h
}

/// Snapshots every registered histogram, sorted by name.
pub fn snapshot_all() -> Vec<(&'static str, HistogramSnapshot)> {
    let reg = hist_registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<(&'static str, HistogramSnapshot)> =
        reg.iter().map(|(n, h)| (*n, h.snapshot())).collect();
    out.sort_by_key(|(n, _)| *n);
    out
}

/// Resets every registered histogram to empty (tests only — see
/// [`Histogram::reset`]).
pub fn reset_all() {
    let reg = hist_registry().lock().unwrap_or_else(|e| e.into_inner());
    for (_, h) in reg.iter() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        for i in 0..NUM_BUCKETS {
            // Every bucket's upper bound maps back into that bucket.
            assert_eq!(bucket_index(bucket_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn records_and_extracts() {
        let h = Histogram::new();
        assert!(h.snapshot().is_empty());
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        assert_eq!(s.max(), 1000);
        assert_eq!(s.quantile(1.0), 1000);
        // The 500th value is 500 → bucket 9 ([256, 511]), bound 511.
        assert_eq!(s.p50(), 511);
        assert_eq!(s.quantile(0.0), bucket_bound(bucket_index(1)));
    }

    #[test]
    fn merge_matches_single_recorder() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..100u64 {
            (if v % 2 == 0 { &a } else { &b }).record(v * 37);
            all.record(v * 37);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn registry_interns_by_name() {
        let first = histogram("test.hist.registry");
        let again = histogram("test.hist.registry");
        assert!(std::ptr::eq(first, again));
        first.record(7);
        let snap = snapshot_all();
        let (_, s) = snap
            .iter()
            .find(|(n, _)| *n == "test.hist.registry")
            .expect("registered");
        assert!(s.count() >= 1);
    }
}
