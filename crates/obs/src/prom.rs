//! Prometheus text exposition (format version 0.0.4) for the metrics
//! plane, plus a minimal parser used by the round-trip tests and the
//! `/metrics` smoke test.
//!
//! [`render`] turns a [`crate::MetricsSnapshot`] into the classic
//! `# TYPE` / sample-line format:
//!
//! * counters — `<name>_total` with a `counter` type line;
//! * gauges — `<name>` with a `gauge` type line;
//! * histograms — `<name>_seconds` with cumulative `_bucket{le="…"}`
//!   lines (log₂ nanosecond bucket bounds converted to seconds), a
//!   `+Inf` bucket, `_sum` and `_count`.
//!
//! Dotted registry names are sanitized to the Prometheus alphabet
//! (`serve.cache_hits` → `serve_cache_hits_total`). Rendering is
//! deterministic: families sort by name, bucket lines by bound.
//!
//! ```
//! use dscweaver_obs as obs;
//!
//! let mut snap = obs::MetricsSnapshot::default();
//! snap.counters.insert("doc.requests", 3);
//! let text = obs::prom::render(&snap);
//! assert!(text.contains("# TYPE doc_requests_total counter"));
//! assert!(text.contains("doc_requests_total 3"));
//! let samples = obs::prom::parse(&text).unwrap();
//! assert_eq!(samples[0].name, "doc_requests_total");
//! assert_eq!(samples[0].value, 3.0);
//! ```

use crate::hist::{bucket_bound, HistogramSnapshot, NUM_BUCKETS};
use crate::MetricsSnapshot;

/// Maps a dotted registry name onto the Prometheus metric alphabet
/// (`[a-zA-Z0-9_:]`, non-digit first character).
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats a nanosecond bucket bound as a seconds `le` label value
/// (shortest `f64` form, e.g. `0.000001023`).
fn le_seconds(bound_ns: u64) -> String {
    format!("{}", bound_ns as f64 / 1e9)
}

/// Renders a metrics snapshot as Prometheus text exposition. Histogram
/// values are interpreted as nanoseconds and exposed in seconds (the
/// Prometheus base unit for time).
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let n = format!("{}_total", sanitize(name));
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snapshot.gauges {
        let n = sanitize(name);
        let v = if v.is_finite() { *v } else { 0.0 };
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snapshot.hists {
        render_histogram(&mut out, name, h);
    }
    out
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let n = format!("{}_seconds", sanitize(name));
    out.push_str(&format!("# TYPE {n} histogram\n"));
    // Emit cumulative buckets up to the highest occupied one; everything
    // above is redundant with +Inf and would be 60+ identical lines.
    let top = h
        .buckets()
        .iter()
        .rposition(|&c| c > 0)
        .map(|i| (i + 1).min(NUM_BUCKETS - 1))
        .unwrap_or(0);
    let mut cum = 0u64;
    for i in 0..=top {
        cum += h.buckets()[i];
        out.push_str(&format!(
            "{n}_bucket{{le=\"{}\"}} {cum}\n",
            le_seconds(bucket_bound(i))
        ));
    }
    out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{n}_sum {}\n", h.sum() as f64 / 1e9));
    out.push_str(&format!("{n}_count {}\n", h.count()));
}

/// One parsed exposition sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_total` / `_bucket` suffix).
    pub name: String,
    /// Label name/value pairs, source order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf` labels stay labels; the value itself must
    /// parse as `f64`).
    pub value: f64,
}

/// Parses Prometheus text exposition into its sample lines, validating
/// the line grammar (used by the round-trip tests and the daemon smoke
/// test). `# …` comment lines are checked to be `# TYPE`/`# HELP` and
/// skipped; anything else malformed is an error naming the line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("TYPE ") || rest.starts_with("HELP ")) {
                return Err(format!("line {}: unknown comment {line:?}", ln + 1));
            }
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", ln + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label braces in {line:?}"))?;
            (
                (&line[..open], parse_labels(&line[open + 1..close])?),
                line[close + 1..].trim(),
            )
        }
        None => {
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("missing value in {line:?}"))?;
            ((name, Vec::new()), value.trim())
        }
    };
    let (name, labels) = head;
    if name.is_empty()
        || name.starts_with(|c: char| c.is_ascii_digit())
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse().map_err(|_| format!("bad value {v:?}"))?,
    };
    Ok(Sample { name: name.to_string(), labels, value })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    for pair in body.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("bad label pair {pair:?}"))?;
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted label value in {pair:?}"))?;
        labels.push((k.to_string(), v.replace("\\\"", "\"").replace("\\\\", "\\")));
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("serve.cache_hits"), "serve_cache_hits");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn renders_and_parses_all_three_kinds() {
        let h = Histogram::new();
        for v in [10u64, 1_000, 2_000_000] {
            h.record(v);
        }
        let snap = MetricsSnapshot {
            counters: [("serve.requests", 41u64)].into_iter().collect(),
            gauges: [("serve.in_flight", 3.0f64)].into_iter().collect(),
            hists: vec![("serve.latency.weave", h.snapshot())],
        };
        let text = render(&snap);
        let samples = parse(&text).expect("rendered exposition must parse");

        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
        };
        assert_eq!(get("serve_requests_total").value, 41.0);
        assert_eq!(get("serve_in_flight").value, 3.0);
        assert_eq!(get("serve_latency_weave_seconds_count").value, 3.0);
        let sum = get("serve_latency_weave_seconds_sum").value;
        assert!((sum - 2_001_010.0 / 1e9).abs() < 1e-12, "{sum}");

        // Cumulative buckets are monotone and the +Inf bucket equals the
        // count.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "serve_latency_weave_seconds_bucket")
            .collect();
        assert!(buckets.len() >= 2);
        assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
        let inf = buckets.last().unwrap();
        assert_eq!(inf.labels, vec![("le".to_string(), "+Inf".to_string())]);
        assert_eq!(inf.value, 3.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("name_without_value").is_err());
        assert!(parse("name{le=\"0.1\" 3").is_err());
        assert!(parse("1bad 3").is_err());
        assert!(parse("ok 1\n# random comment").is_err());
        assert!(parse("name xyz").is_err());
    }
}
