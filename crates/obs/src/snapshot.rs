//! Drained trace data and its two sinks: Chrome trace-event JSON and a
//! per-phase text summary.

use crate::{Event, EventKind};
use std::collections::{BTreeMap, HashMap};

/// Everything one [`crate::take`] call drained from the recorder:
/// timestamp-ordered events, the lane-name table, and the final
/// counter/gauge values.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    events: Vec<Event>,
    lanes: Vec<String>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
}

/// Aggregated wall time for one span name across every lane, from
/// [`TraceSnapshot::phase_totals`]. `self_ns` excludes time spent in
/// child spans on the same lane, so the self columns of a summary sum to
/// (roughly) the traced wall time per lane.
#[derive(Clone, Debug)]
pub struct PhaseTotal {
    /// Span name.
    pub name: &'static str,
    /// How many spans with this name closed (or were auto-closed).
    pub count: u64,
    /// Total inclusive nanoseconds.
    pub total_ns: u64,
    /// Total nanoseconds minus same-lane child span time.
    pub self_ns: u64,
}

impl TraceSnapshot {
    /// The byte-stable output of [`Self::to_chrome_json`] for an empty
    /// snapshot — what a disabled recorder always produces.
    pub const EMPTY_CHROME_JSON: &'static str = "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}";

    pub(crate) fn from_parts(
        events: Vec<Event>,
        lanes: Vec<String>,
        counters: BTreeMap<&'static str, u64>,
        gauges: BTreeMap<&'static str, f64>,
    ) -> Self {
        Self { events, lanes, counters, gauges }
    }

    /// Builds a snapshot from externally assembled events and lane names
    /// (no counters or gauges) — the constructor request-scoped tracers
    /// use to reuse the Chrome sink for span trees they collected outside
    /// the global recorder. Events are sorted by timestamp; lane indices
    /// in the events resolve against `lanes` positionally.
    pub fn from_events(mut events: Vec<Event>, lanes: Vec<String>) -> Self {
        events.sort_by_key(|e| e.ts_ns);
        Self {
            events,
            lanes,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }

    /// The recorded events, stably ordered by timestamp.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Resolves a lane index from [`Event::lane`] to its display name.
    pub fn lane_name(&self, lane: u32) -> &str {
        self.lanes.get(lane as usize).map(String::as_str).unwrap_or("?")
    }

    /// Final values of all monotonic counters.
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Final values of all gauges.
    pub fn gauges(&self) -> &BTreeMap<&'static str, f64> {
        &self.gauges
    }

    /// True when nothing was recorded (no events, counters, or gauges).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Folds another snapshot into this one: events are re-sorted into
    /// one timeline, counters add, gauges take the other side's value.
    /// Lane indices are interned in one global registry per process, so
    /// snapshots taken in the same process merge consistently.
    pub fn merge(&mut self, other: TraceSnapshot) {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| e.ts_ns);
        if other.lanes.len() > self.lanes.len() {
            self.lanes = other.lanes;
        }
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges {
            self.gauges.insert(name, v);
        }
    }

    /// Aggregates span durations by name, replaying each lane's
    /// Begin/End stack. Spans still open at the end of the snapshot are
    /// closed at the latest recorded timestamp; stray `End`s (from a
    /// snapshot boundary crossing an open span) are ignored. Sorted by
    /// total time, descending.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let max_ts = self.events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
        // Per-lane stack of (name, start_ts, accumulated child time).
        let mut stacks: HashMap<u32, Vec<(&'static str, u64, u64)>> = HashMap::new();
        let mut agg: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
        let close =
            |agg: &mut BTreeMap<&'static str, (u64, u64, u64)>,
             stack: &mut Vec<(&'static str, u64, u64)>,
             name: &'static str,
             start: u64,
             child: u64,
             end: u64| {
                let dur = end.saturating_sub(start);
                let entry = agg.entry(name).or_insert((0, 0, 0));
                entry.0 += 1;
                entry.1 += dur;
                entry.2 += dur.saturating_sub(child);
                if let Some(parent) = stack.last_mut() {
                    parent.2 += dur;
                }
            };
        for e in &self.events {
            let stack = stacks.entry(e.lane).or_default();
            match e.kind {
                EventKind::Begin => stack.push((e.name, e.ts_ns, 0)),
                EventKind::End => {
                    if stack.last().is_some_and(|&(name, _, _)| name == e.name) {
                        let (name, start, child) = stack.pop().unwrap();
                        close(&mut agg, stack, name, start, child, e.ts_ns);
                    }
                }
                EventKind::Instant => {}
            }
        }
        for stack in stacks.values_mut() {
            while let Some((name, start, child)) = stack.pop() {
                close(&mut agg, stack, name, start, child, max_ts);
            }
        }
        let mut out: Vec<PhaseTotal> = agg
            .into_iter()
            .map(|(name, (count, total_ns, self_ns))| PhaseTotal { name, count, total_ns, self_ns })
            .collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        out
    }

    /// Per-phase inclusive totals in milliseconds, keyed by span name —
    /// the shape the bench artifacts embed as `"phases"`.
    pub fn phase_totals_ms(&self) -> BTreeMap<&'static str, f64> {
        self.phase_totals()
            .into_iter()
            .map(|t| (t.name, t.total_ns as f64 / 1e6))
            .collect()
    }

    /// Serializes the snapshot in Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object format), loadable in Perfetto or
    /// `chrome://tracing`. Lanes become threads of pid 1 via
    /// `thread_name` metadata events; counters and gauges become `"C"`
    /// events at the final timestamp. An empty snapshot serializes to
    /// exactly [`Self::EMPTY_CHROME_JSON`].
    pub fn to_chrome_json(&self) -> String {
        let mut entries: Vec<String> = Vec::new();
        let max_ts = self.events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
        let max_us = max_ts as f64 / 1000.0;
        if !self.events.is_empty() {
            let mut used: Vec<u32> = self.events.iter().map(|e| e.lane).collect();
            used.sort_unstable();
            used.dedup();
            for lane in used {
                entries.push(format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    esc(self.lane_name(lane))
                ));
            }
            for e in &self.events {
                let ph = match e.kind {
                    EventKind::Begin => "B",
                    EventKind::End => "E",
                    EventKind::Instant => "i",
                };
                let ts = e.ts_ns as f64 / 1000.0;
                let mut s = format!(
                    "{{\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\"name\":\"{}\"",
                    e.lane,
                    esc(e.name)
                );
                if e.kind == EventKind::Instant {
                    s.push_str(",\"s\":\"t\"");
                }
                if let Some(d) = &e.detail {
                    s.push_str(",\"args\":{\"detail\":\"");
                    s.push_str(&esc(d));
                    s.push_str("\"}");
                }
                s.push('}');
                entries.push(s);
            }
        }
        for (name, v) in &self.counters {
            entries.push(format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{max_us:.3},\"name\":\"{}\",\
                 \"args\":{{\"value\":{v}}}}}",
                esc(name)
            ));
        }
        for (name, v) in &self.gauges {
            let v = if v.is_finite() { *v } else { 0.0 };
            entries.push(format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{max_us:.3},\"name\":\"{}\",\
                 \"args\":{{\"value\":{v}}}}}",
                esc(name)
            ));
        }
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&entries.join(","));
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Renders the per-phase table plus final counter/gauge values as
    /// human-readable text (the `--profile` output).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let totals = self.phase_totals();
        if !totals.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12} {:>12}\n",
                "phase", "count", "total ms", "self ms"
            ));
            for t in &totals {
                out.push_str(&format!(
                    "{:<28} {:>7} {:>12.3} {:>12.3}\n",
                    t.name,
                    t.count,
                    t.total_ns as f64 / 1e6,
                    t.self_ns as f64 / 1e6
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<32} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<32} {v:.3}\n"));
            }
        }
        if out.is_empty() {
            out.push_str("(no trace data recorded)\n");
        }
        out
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
