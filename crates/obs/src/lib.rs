//! In-repo tracing and metrics for the dscweaver pipeline.
//!
//! The build is fully offline, so this crate replaces `tracing` +
//! `tracing-chrome` with the ~5% of their surface the pipeline needs:
//!
//! * a **global recorder** toggled at runtime ([`set_enabled`]) — every
//!   instrumentation point is a single relaxed atomic flag-byte load when
//!   recording is off, so the engines can stay instrumented permanently;
//! * **hierarchical spans** ([`span`] / [`span_with`]) and **instant
//!   events** ([`instant`]) buffered in thread-local vectors (no lock on
//!   the hot path) and flushed wholesale when a snapshot is taken — pool
//!   workers flush explicitly ([`flush_thread`]) before their fork/join
//!   scope returns;
//! * **worker lanes** ([`worker_lane`]): the shared pool in `graph::par`
//!   tags each scoped worker with a stable `worker-{slot}` lane so traces
//!   show one row per pool slot, reused across sequential fork/join
//!   scopes;
//! * a **counter/gauge registry** ([`counter_add`] / [`gauge_set`]) that
//!   absorbs the engines' existing telemetry (pool sizes, cache hit
//!   rates, assignment counts) into the same snapshot;
//! * a **metrics plane** that can run without span buffering
//!   ([`set_metrics_enabled`]): lock-free log₂ latency **histograms**
//!   ([`hist`], registered via [`histogram`]), read non-destructively by
//!   [`metrics_snapshot`] and rendered as Prometheus text exposition by
//!   [`prom::render`] — what a long-lived daemon serves on `/metrics`;
//! * two sinks on [`TraceSnapshot`]: Chrome trace-event JSON
//!   ([`TraceSnapshot::to_chrome_json`], loadable in Perfetto or
//!   `chrome://tracing`) and a per-phase text table
//!   ([`TraceSnapshot::summary`]).
//!
//! See `OBSERVABILITY.md` at the repository root for the span taxonomy
//! and sink formats.
//!
//! ```
//! use dscweaver_obs as obs;
//!
//! let _serial = obs::test_lock(); // the recorder is global
//! let (value, snap) = obs::record_with(|| {
//!     let _outer = obs::span("outer");
//!     {
//!         let _inner = obs::span_with("inner", || "detail".to_string());
//!         obs::counter_add("work.items", 3);
//!     }
//!     42
//! });
//! assert_eq!(value, 42);
//! let totals = snap.phase_totals();
//! assert_eq!(totals.len(), 2); // outer + inner, both balanced
//! assert_eq!(snap.counters().get("work.items"), Some(&3));
//! assert!(snap.to_chrome_json().starts_with("{\"traceEvents\":["));
//!
//! // Disabled recorder: nothing recorded, output byte-stable.
//! let _noop = obs::span("ignored");
//! drop(_noop);
//! let empty = obs::take();
//! assert_eq!(empty.to_chrome_json(), obs::TraceSnapshot::EMPTY_CHROME_JSON);
//! ```

#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod prom;
mod snapshot;

pub use hist::{histogram, Histogram, HistogramSnapshot};
pub use snapshot::{PhaseTotal, TraceSnapshot};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Recorder flag bit: hierarchical span/event tracing (buffered, drained
/// by [`take`]).
const FLAG_TRACE: u8 = 1;
/// Recorder flag bit: the metrics plane (counters, gauges, histograms —
/// cumulative, read without draining via [`metrics_snapshot`]).
const FLAG_METRICS: u8 = 2;

static FLAGS: AtomicU8 = AtomicU8::new(0);

/// Whether span/event tracing is currently on. A single relaxed atomic
/// load — this is the entire cost of an instrumentation point while
/// recording is disabled.
#[inline]
pub fn enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_TRACE != 0
}

/// Whether the metrics plane (counters, gauges, histograms) is currently
/// on. Like [`enabled`], a single relaxed atomic load per probe when off.
///
/// Metrics can be enabled on their own ([`set_metrics_enabled`]) without
/// turning on span buffering — the mode a long-running daemon serves
/// `/metrics` in, since cumulative metrics are bounded while buffered
/// spans grow until drained.
#[inline]
pub fn metrics_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_METRICS != 0
}

/// Turns the global recorder on or off — both the tracing and the
/// metrics plane. Spans opened while the recorder was on still record
/// their end after it is turned off, so phase totals stay balanced
/// across a toggle.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first event so timestamps are
        // monotonic from the moment recording starts.
        let _ = epoch();
    }
    let flags = if on { FLAG_TRACE | FLAG_METRICS } else { 0 };
    FLAGS.store(flags, Ordering::Relaxed);
}

/// Turns the metrics plane (counters, gauges, histograms) on or off
/// without touching span tracing. Safe to leave on for the lifetime of a
/// daemon: metrics are fixed-size cumulative cells, not buffers.
pub fn set_metrics_enabled(on: bool) {
    if on {
        FLAGS.fetch_or(FLAG_METRICS, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!FLAG_METRICS, Ordering::Relaxed);
    }
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// What a recorded [`Event`] marks: the start of a span, its end, or a
/// zero-duration instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened ([`span`] / [`span_with`]).
    Begin,
    /// The matching span closed (its guard dropped).
    End,
    /// A point event with no duration ([`instant`]).
    Instant,
}

/// One recorded trace event. Events are buffered per thread and carry the
/// lane they were recorded on, so snapshots can rebuild per-lane span
/// stacks regardless of flush order.
#[derive(Clone, Debug)]
pub struct Event {
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Static span or event name (the span taxonomy in OBSERVABILITY.md).
    pub name: &'static str,
    /// Optional dynamic payload, only materialized while recording.
    pub detail: Option<Box<str>>,
    /// Lane index; resolve with [`TraceSnapshot::lane_name`].
    pub lane: u32,
    /// Nanoseconds since the recorder epoch.
    pub ts_ns: u64,
}

struct Registry {
    events: Mutex<Vec<Event>>,
    lanes: Mutex<Vec<String>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        events: Mutex::new(Vec::new()),
        lanes: Mutex::new(vec!["main".to_string()]),
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct ThreadBuf {
    lane: u32,
    buf: Vec<Event>,
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        // Safety net only: `thread::scope` waits for a worker's closure,
        // not for its TLS teardown, so this drop-flush can land after the
        // scope returns (and after a snapshot was taken). Pool workers
        // therefore call `flush_thread` explicitly at the end of their
        // closure body; this catches plain detached threads.
        if !self.buf.is_empty() {
            lock(&registry().events).append(&mut self.buf);
        }
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = const {
        RefCell::new(ThreadBuf { lane: 0, buf: Vec::new() })
    };
}

fn push_event(kind: EventKind, name: &'static str, detail: Option<Box<str>>) {
    let ts_ns = now_ns();
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let lane = t.lane;
        t.buf.push(Event { kind, name, detail, lane, ts_ns });
    });
}

/// A RAII span guard: records `Begin` when created via [`span`] /
/// [`span_with`] while the recorder is on, and always records the
/// matching `End` on drop once armed — even if recording was switched off
/// in between — so span stacks stay balanced.
#[must_use = "a span records its duration when dropped; binding it to _ closes it immediately"]
pub struct Span {
    name: &'static str,
    armed: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            push_event(EventKind::End, self.name, None);
        }
    }
}

/// Opens a named span on the current thread's lane. No-op (and no
/// allocation) while the recorder is disabled.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { name, armed: false };
    }
    push_event(EventKind::Begin, name, None);
    Span { name, armed: true }
}

/// Like [`span`], with a lazily-built detail string that is only
/// materialized while the recorder is on.
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span { name, armed: false };
    }
    push_event(EventKind::Begin, name, Some(detail().into_boxed_str()));
    Span { name, armed: true }
}

/// Records a zero-duration instant event. No-op while disabled.
pub fn instant(name: &'static str) {
    if enabled() {
        push_event(EventKind::Instant, name, None);
    }
}

/// Like [`instant`], with a lazily-built detail string.
pub fn instant_with(name: &'static str, detail: impl FnOnce() -> String) {
    if enabled() {
        push_event(EventKind::Instant, name, Some(detail().into_boxed_str()));
    }
}

/// Adds `delta` to a named monotonic counter. No-op while the metrics
/// plane is disabled.
pub fn counter_add(name: &'static str, delta: u64) {
    if !metrics_enabled() {
        return;
    }
    *lock(&registry().counters).entry(name).or_insert(0) += delta;
}

/// Sets a named gauge to `value` (last write wins). No-op while the
/// metrics plane is disabled.
pub fn gauge_set(name: &'static str, value: f64) {
    if !metrics_enabled() {
        return;
    }
    lock(&registry().gauges).insert(name, value);
}

/// A non-draining view of the metrics plane: current counter and gauge
/// values plus a snapshot of every registered histogram. This is what
/// `/metrics` exposition renders ([`prom::render`]) — unlike [`take`],
/// reading it leaves the cumulative metrics in place, so consecutive
/// scrapes see monotonic counters.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// One snapshot per registered histogram, sorted by name.
    pub hists: Vec<(&'static str, HistogramSnapshot)>,
}

/// Takes a [`MetricsSnapshot`] of the metrics plane without draining it.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let r = registry();
    MetricsSnapshot {
        counters: lock(&r.counters).clone(),
        gauges: lock(&r.gauges).clone(),
        hists: hist::snapshot_all(),
    }
}

/// Restores the previous lane of the thread that called [`worker_lane`].
#[must_use = "dropping the guard restores the previous lane"]
pub struct LaneGuard {
    prev: u32,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        TLS.with(|t| t.borrow_mut().lane = self.prev);
    }
}

/// Routes the current thread's events onto the stable `worker-{slot}`
/// lane until the returned guard drops. Lane indices are interned
/// globally, so slot 0 of every sequential fork/join scope shares one
/// trace row. No-op while the recorder is disabled.
pub fn worker_lane(slot: usize) -> LaneGuard {
    let prev = TLS.with(|t| t.borrow().lane);
    if !enabled() {
        return LaneGuard { prev };
    }
    let id = intern_lane(&format!("worker-{slot}"));
    TLS.with(|t| t.borrow_mut().lane = id);
    LaneGuard { prev }
}

fn intern_lane(name: &str) -> u32 {
    let mut lanes = lock(&registry().lanes);
    if let Some(i) = lanes.iter().position(|l| l == name) {
        return i as u32;
    }
    lanes.push(name.to_string());
    (lanes.len() - 1) as u32
}

/// Flushes the current thread's buffered events into the global sink.
/// Called automatically by [`take`] for the calling thread. Scoped pool
/// workers must call this at the end of their closure body:
/// `thread::scope` waits for the closure but not for TLS teardown, so
/// relying on the thread-exit flush would race a snapshot taken right
/// after the scope.
pub fn flush_thread() {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if !t.buf.is_empty() {
            lock(&registry().events).append(&mut t.buf);
        }
    });
}

/// Drains everything recorded so far — events, counters, gauges — into a
/// [`TraceSnapshot`], leaving the recorder empty (but not toggling it).
/// Events are stably sorted by timestamp, which preserves per-lane
/// recording order.
pub fn take() -> TraceSnapshot {
    flush_thread();
    let r = registry();
    let mut events = std::mem::take(&mut *lock(&r.events));
    let lanes = lock(&r.lanes).clone();
    let counters = std::mem::take(&mut *lock(&r.counters));
    let gauges = std::mem::take(&mut *lock(&r.gauges));
    events.sort_by_key(|e| e.ts_ns);
    TraceSnapshot::from_parts(events, lanes, counters, gauges)
}

/// Runs `f` with the recorder enabled and returns its result together
/// with a snapshot of exactly what `f` recorded. Any events pending from
/// before the call are discarded, and the previous enabled/disabled state
/// is restored afterwards.
pub fn record_with<T>(f: impl FnOnce() -> T) -> (T, TraceSnapshot) {
    let prev = FLAGS.load(Ordering::Relaxed);
    set_enabled(true);
    drop(take()); // isolate: clear anything recorded before `f`
    let out = f();
    let snap = take();
    FLAGS.store(prev, Ordering::Relaxed);
    (out, snap)
}

/// Serializes tests that exercise the global recorder. Lock this first in
/// every `#[test]` that calls [`set_enabled`] / [`take`] /
/// [`record_with`]; the guard survives poisoning so one failing test does
/// not cascade.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
