//! Property test: `parse(render(p)) == p` for arbitrary generated
//! processes, and every generated process yields a usable CFG. Process
//! shapes are drawn with the in-repo deterministic PRNG.

use dscweaver_model::{
    parse_process, render_constructs, Activity, Case, Cfg, Construct, Process,
};
use dscweaver_prng::Rng;

#[derive(Clone, Debug)]
struct Ctx {
    next_act: u32,
    next_var: u32,
}

fn fresh_act(ctx: &mut Ctx) -> String {
    ctx.next_act += 1;
    format!("act_{}", ctx.next_act)
}

fn fresh_var(ctx: &mut Ctx) -> String {
    ctx.next_var += 1;
    format!("v{}", ctx.next_var)
}

#[derive(Clone, Debug)]
enum Shape {
    Act { reads: u8, writes: u8 },
    Seq(Vec<Shape>),
    Flow(Vec<Shape>),
    Switch(Vec<Shape>),
    While(Box<Shape>),
}

/// A random shape tree of bounded depth (mirrors the old proptest
/// `prop_recursive(3, 20, 4, ...)` strategy).
fn random_shape(rng: &mut Rng, depth: usize) -> Shape {
    let leaf = depth == 0 || rng.random_bool(0.4);
    if leaf {
        Shape::Act {
            reads: rng.random_range(2) as u8,
            writes: 1 + rng.random_range(2) as u8,
        }
    } else {
        let children = |rng: &mut Rng, max: usize, depth: usize| -> Vec<Shape> {
            (0..1 + rng.random_range(max))
                .map(|_| random_shape(rng, depth - 1))
                .collect()
        };
        match rng.random_range(4) {
            0 => Shape::Seq(children(rng, 3, depth)),
            1 => Shape::Flow(children(rng, 3, depth)),
            2 => Shape::Switch(children(rng, 2, depth)),
            _ => Shape::While(Box::new(random_shape(rng, depth - 1))),
        }
    }
}

/// Recursively materializes a construct from a shape seed. Names are
/// handed out sequentially so uniqueness holds by construction.
fn build(shape: &Shape, ctx: &mut Ctx, vars: &mut Vec<String>) -> Construct {
    match shape {
        Shape::Act { reads, writes } => {
            let mut a = Activity::assign(&fresh_act(ctx));
            for _ in 0..*reads {
                if let Some(v) = vars.first() {
                    if !a.reads.contains(v) {
                        a.reads.push(v.clone());
                    }
                }
            }
            for _ in 0..*writes {
                let v = fresh_var(ctx);
                vars.push(v.clone());
                a.writes.push(v);
            }
            Construct::Act(a)
        }
        Shape::Seq(items) => {
            Construct::Sequence(items.iter().map(|s| build(s, ctx, vars)).collect())
        }
        Shape::Flow(items) => {
            Construct::flow(items.iter().map(|s| build(s, ctx, vars)).collect())
        }
        Shape::Switch(cases) => {
            let v = fresh_var(ctx);
            vars.push(v.clone());
            let mut branch = Activity::branch(&fresh_act(ctx));
            branch.reads.push(v);
            Construct::Switch {
                branch,
                cases: cases
                    .iter()
                    .enumerate()
                    .map(|(i, s)| Case {
                        label: format!("C{i}"),
                        body: build(s, ctx, vars),
                    })
                    .collect(),
            }
        }
        Shape::While(body) => {
            let v = fresh_var(ctx);
            vars.push(v.clone());
            let mut cond = Activity::branch(&fresh_act(ctx));
            cond.reads.push(v);
            Construct::While {
                cond,
                body: Box::new(build(body, ctx, vars)),
            }
        }
    }
}

fn random_process(rng: &mut Rng) -> Process {
    let shape = random_shape(rng, 3);
    let mut ctx = Ctx {
        next_act: 0,
        next_var: 0,
    };
    let mut vars = vec![];
    let root = build(&shape, &mut ctx, &mut vars);
    let mut p = Process::new("Gen", root);
    vars.sort();
    vars.dedup();
    p.vars = vars;
    p
}

#[test]
fn render_parse_identity() {
    let mut rng = Rng::seed_from_u64(0xC001);
    for case in 0..64 {
        let p = random_process(&mut rng);
        assert!(p.validate().is_empty(), "case {case}: {:?}", p.validate());
        let text = render_constructs(&p);
        let back = parse_process(&text)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n---\n{text}"));
        assert_eq!(back, p, "case {case}");
    }
}

#[test]
fn cfg_always_well_formed() {
    let mut rng = Rng::seed_from_u64(0xC002);
    for case in 0..64 {
        let p = random_process(&mut rng);
        let cfg = Cfg::build(&p);
        // Every activity appears exactly once in the CFG and can reach the
        // exit.
        for a in p.activities() {
            let n = cfg.node(&a.name).expect("activity in CFG");
            assert!(
                dscweaver_graph::shortest_path(&cfg.graph, n, cfg.exit).is_some(),
                "case {case}: {} cannot reach exit",
                a.name
            );
        }
        // Entry reaches everything.
        let reach = dscweaver_graph::reachable_from(&cfg.graph, cfg.entry);
        assert_eq!(reach.count(), cfg.graph.node_count(), "case {case}");
    }
}

#[test]
fn extraction_never_panics_and_validates() {
    let mut rng = Rng::seed_from_u64(0xC003);
    for case in 0..64 {
        let p = random_process(&mut rng);
        let ds = dscweaver_pdg::extract(&p, dscweaver_pdg::ExtractOptions::default());
        assert_eq!(ds.activities.len(), p.activities().len(), "case {case}");
        // All extracted dependencies reference declared activities.
        for d in &ds.deps {
            assert!(
                ds.activities.contains(&d.from.name) || ds.services.contains(&d.from.name),
                "case {case}"
            );
            assert!(
                ds.activities.contains(&d.to.name) || ds.services.contains(&d.to.name),
                "case {case}"
            );
        }
    }
}
