//! Property test: `parse(render(p)) == p` for arbitrary generated
//! processes, and every generated process yields a usable CFG.

use dscweaver_model::{
    parse_process, render_constructs, Activity, Case, Cfg, Construct, Process,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Ctx {
    next_act: u32,
    next_var: u32,
}

fn fresh_act(ctx: &mut Ctx) -> String {
    ctx.next_act += 1;
    format!("act_{}", ctx.next_act)
}

fn fresh_var(ctx: &mut Ctx) -> String {
    ctx.next_var += 1;
    format!("v{}", ctx.next_var)
}

/// Recursively materializes a construct from a shape seed. Names are
/// handed out sequentially so uniqueness holds by construction.
fn build(shape: &Shape, ctx: &mut Ctx, vars: &mut Vec<String>) -> Construct {
    match shape {
        Shape::Act { reads, writes } => {
            let mut a = Activity::assign(&fresh_act(ctx));
            for _ in 0..*reads {
                if let Some(v) = vars.first() {
                    if !a.reads.contains(v) {
                        a.reads.push(v.clone());
                    }
                }
            }
            for _ in 0..*writes {
                let v = fresh_var(ctx);
                vars.push(v.clone());
                a.writes.push(v);
            }
            Construct::Act(a)
        }
        Shape::Seq(items) => {
            Construct::Sequence(items.iter().map(|s| build(s, ctx, vars)).collect())
        }
        Shape::Flow(items) => {
            Construct::flow(items.iter().map(|s| build(s, ctx, vars)).collect())
        }
        Shape::Switch(cases) => {
            let v = fresh_var(ctx);
            vars.push(v.clone());
            let mut branch = Activity::branch(&fresh_act(ctx));
            branch.reads.push(v);
            Construct::Switch {
                branch,
                cases: cases
                    .iter()
                    .enumerate()
                    .map(|(i, s)| Case {
                        label: format!("C{i}"),
                        body: build(s, ctx, vars),
                    })
                    .collect(),
            }
        }
        Shape::While(body) => {
            let v = fresh_var(ctx);
            vars.push(v.clone());
            let mut cond = Activity::branch(&fresh_act(ctx));
            cond.reads.push(v);
            Construct::While {
                cond,
                body: Box::new(build(body, ctx, vars)),
            }
        }
    }
}

#[derive(Clone, Debug)]
enum Shape {
    Act { reads: u8, writes: u8 },
    Seq(Vec<Shape>),
    Flow(Vec<Shape>),
    Switch(Vec<Shape>),
    While(Box<Shape>),
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    let leaf = (0u8..2, 1u8..3).prop_map(|(reads, writes)| Shape::Act { reads, writes });
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Shape::Seq),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Shape::Flow),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Shape::Switch),
            inner.prop_map(|s| Shape::While(Box::new(s))),
        ]
    })
}

fn process_strategy() -> impl Strategy<Value = Process> {
    shape_strategy().prop_map(|shape| {
        let mut ctx = Ctx {
            next_act: 0,
            next_var: 0,
        };
        let mut vars = vec![];
        let root = build(&shape, &mut ctx, &mut vars);
        let mut p = Process::new("Gen", root);
        vars.sort();
        vars.dedup();
        p.vars = vars;
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn render_parse_identity(p in process_strategy()) {
        prop_assert!(p.validate().is_empty(), "{:?}", p.validate());
        let text = render_constructs(&p);
        let back = parse_process(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
        prop_assert_eq!(back, p);
    }

    #[test]
    fn cfg_always_well_formed(p in process_strategy()) {
        let cfg = Cfg::build(&p);
        // Every activity appears exactly once in the CFG and can reach the
        // exit.
        for a in p.activities() {
            let n = cfg.node(&a.name).expect("activity in CFG");
            prop_assert!(
                dscweaver_graph::shortest_path(&cfg.graph, n, cfg.exit).is_some(),
                "{} cannot reach exit",
                a.name
            );
        }
        // Entry reaches everything.
        let reach = dscweaver_graph::reachable_from(&cfg.graph, cfg.entry);
        prop_assert_eq!(reach.count(), cfg.graph.node_count());
    }

    #[test]
    fn extraction_never_panics_and_validates(p in process_strategy()) {
        let ds = dscweaver_pdg::extract(&p, dscweaver_pdg::ExtractOptions::default());
        prop_assert_eq!(ds.activities.len(), p.activities().len());
        // All extracted dependencies reference declared activities.
        for d in &ds.deps {
            prop_assert!(ds.activities.contains(&d.from.name) || ds.services.contains(&d.from.name));
            prop_assert!(ds.activities.contains(&d.to.name) || ds.services.contains(&d.to.name));
        }
    }
}
