//! Control-flow graph construction from the construct AST.
//!
//! The PDG crate runs classic compiler analyses over this CFG (reaching
//! definitions for data dependencies, post-dominator control dependence per
//! Ferrante–Ottenstein–Warren). Construction rules:
//!
//! * `Sequence` chains its members.
//! * `Flow` becomes a fork node, one subgraph per branch, and a join node.
//!   Fork/join are **not predicates** — parallel branches never induce
//!   control dependence. Cross-branch `link`s become extra CFG edges (they
//!   are real orderings the reaching-definitions pass must see).
//! * `Switch` becomes the branch activity with one labeled edge per case,
//!   all cases meeting at a join; a missing `F`-style default is modeled by
//!   a labeled edge straight to the join.
//! * `While` becomes the condition activity with a `T` edge into the body
//!   (which loops back) and an `F` edge onward.

use crate::activity::Activity;
use crate::process::{Construct, Process};
use dscweaver_graph::{DiGraph, NodeId};
use std::collections::HashMap;

/// A CFG node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CfgNode {
    /// Unique entry.
    Entry,
    /// Unique exit.
    Exit,
    /// An activity, named. Branch/loop condition evaluators appear here too
    /// and are the only *predicate* nodes.
    Act(String),
    /// Parallel fork (from a `Flow`).
    Fork,
    /// Join of parallel branches or switch cases.
    Join,
}

impl CfgNode {
    /// The activity name, if this is an activity node.
    pub fn activity(&self) -> Option<&str> {
        match self {
            CfgNode::Act(n) => Some(n),
            _ => None,
        }
    }
}

/// An edge label: `Some(label)` on predicate out-edges (case label), `None`
/// otherwise.
pub type CfgEdge = Option<String>;

/// The control-flow graph of a process.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Underlying graph.
    pub graph: DiGraph<CfgNode, CfgEdge>,
    /// The unique entry node.
    pub entry: NodeId,
    /// The unique exit node.
    pub exit: NodeId,
    /// Activity name → CFG node.
    pub node_of: HashMap<String, NodeId>,
}

impl Cfg {
    /// Builds the CFG of `process`. The process should validate cleanly;
    /// dangling links are skipped (validation reports them separately).
    pub fn build(process: &Process) -> Cfg {
        let mut graph: DiGraph<CfgNode, CfgEdge> = DiGraph::new();
        let entry = graph.add_node(CfgNode::Entry);
        let exit = graph.add_node(CfgNode::Exit);
        let mut node_of = HashMap::new();

        let (first, last) = Self::lower(&process.root, &mut graph, &mut node_of);
        match (first, last) {
            (Some(f), Some(l)) => {
                graph.add_edge(entry, f, None);
                graph.add_edge(l, exit, None);
            }
            _ => {
                graph.add_edge(entry, exit, None);
            }
        }

        // Cross-branch links as extra ordering edges.
        for link in process.root.links() {
            if let (Some(&f), Some(&t)) = (node_of.get(&link.from), node_of.get(&link.to)) {
                graph.add_edge(f, t, link.condition.clone());
            }
        }

        Cfg {
            graph,
            entry,
            exit,
            node_of,
        }
    }

    /// Lowers a construct; returns `(first, last)` node of its subgraph, or
    /// `None` for an empty construct.
    fn lower(
        c: &Construct,
        g: &mut DiGraph<CfgNode, CfgEdge>,
        node_of: &mut HashMap<String, NodeId>,
    ) -> (Option<NodeId>, Option<NodeId>) {
        match c {
            Construct::Act(a) => {
                let n = Self::act_node(a, g, node_of);
                (Some(n), Some(n))
            }
            Construct::Sequence(items) => {
                let mut first = None;
                let mut prev: Option<NodeId> = None;
                for item in items {
                    let (f, l) = Self::lower(item, g, node_of);
                    if let (Some(f), Some(l)) = (f, l) {
                        if let Some(p) = prev {
                            g.add_edge(p, f, None);
                        }
                        if first.is_none() {
                            first = Some(f);
                        }
                        prev = Some(l);
                    }
                }
                (first, prev)
            }
            Construct::Flow { branches, .. } => {
                if branches.is_empty() {
                    return (None, None);
                }
                let fork = g.add_node(CfgNode::Fork);
                let join = g.add_node(CfgNode::Join);
                for b in branches {
                    let (f, l) = Self::lower(b, g, node_of);
                    match (f, l) {
                        (Some(f), Some(l)) => {
                            g.add_edge(fork, f, None);
                            g.add_edge(l, join, None);
                        }
                        _ => {
                            g.add_edge(fork, join, None);
                        }
                    }
                }
                (Some(fork), Some(join))
            }
            Construct::Switch { branch, cases } => {
                let b = Self::act_node(branch, g, node_of);
                let join = g.add_node(CfgNode::Join);
                if cases.is_empty() {
                    g.add_edge(b, join, None);
                }
                for case in cases {
                    let (f, l) = Self::lower(&case.body, g, node_of);
                    match (f, l) {
                        (Some(f), Some(l)) => {
                            g.add_edge(b, f, Some(case.label.clone()));
                            g.add_edge(l, join, None);
                        }
                        _ => {
                            g.add_edge(b, join, Some(case.label.clone()));
                        }
                    }
                }
                (Some(b), Some(join))
            }
            Construct::While { cond, body } => {
                let c_node = Self::act_node(cond, g, node_of);
                let after = g.add_node(CfgNode::Join);
                let (f, l) = Self::lower(body, g, node_of);
                match (f, l) {
                    (Some(f), Some(l)) => {
                        g.add_edge(c_node, f, Some("T".to_string()));
                        g.add_edge(l, c_node, None);
                    }
                    _ => {
                        // Empty body: the loop degenerates to the condition.
                    }
                }
                g.add_edge(c_node, after, Some("F".to_string()));
                (Some(c_node), Some(after))
            }
        }
    }

    fn act_node(
        a: &Activity,
        g: &mut DiGraph<CfgNode, CfgEdge>,
        node_of: &mut HashMap<String, NodeId>,
    ) -> NodeId {
        let n = g.add_node(CfgNode::Act(a.name.clone()));
        node_of.insert(a.name.clone(), n);
        n
    }

    /// The CFG node of a named activity.
    pub fn node(&self, activity: &str) -> Option<NodeId> {
        self.node_of.get(activity).copied()
    }

    /// Names of the activities that are predicates (branch/loop
    /// conditions), i.e. have labeled out-edges.
    pub fn predicates(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for n in self.graph.node_ids() {
            if let CfgNode::Act(name) = self.graph.weight(n) {
                let labeled = self
                    .graph
                    .out_edges(n)
                    .any(|e| self.graph.edge_weight(e).is_some());
                if labeled {
                    out.push(name.as_str());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_process;
    use dscweaver_graph::shortest_path;

    #[test]
    fn sequence_chains() {
        let p = parse_process("process P { var x; sequence { assign a writes x; assign b reads x; } }")
            .unwrap();
        let cfg = Cfg::build(&p);
        let a = cfg.node("a").unwrap();
        let b = cfg.node("b").unwrap();
        assert!(cfg.graph.has_edge(cfg.entry, a));
        assert!(cfg.graph.has_edge(a, b));
        assert!(cfg.graph.has_edge(b, cfg.exit));
    }

    #[test]
    fn flow_forks_and_joins() {
        let p = parse_process("process P { var x; flow { assign a writes x; assign b writes x; } }")
            .unwrap();
        let cfg = Cfg::build(&p);
        let a = cfg.node("a").unwrap();
        let b = cfg.node("b").unwrap();
        // a and b share a fork predecessor and a join successor.
        let pa: Vec<_> = cfg.graph.predecessors(a).collect();
        let pb: Vec<_> = cfg.graph.predecessors(b).collect();
        assert_eq!(pa, pb);
        assert!(matches!(cfg.graph.weight(pa[0]), CfgNode::Fork));
        let sa: Vec<_> = cfg.graph.successors(a).collect();
        assert!(matches!(cfg.graph.weight(sa[0]), CfgNode::Join));
        assert!(cfg.predicates().is_empty(), "fork is not a predicate");
    }

    #[test]
    fn switch_labels_edges() {
        let p = parse_process(
            "process P { var x; switch c reads x { case T { assign a writes x; } case F { assign b writes x; } } }",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        let c = cfg.node("c").unwrap();
        let labels: Vec<Option<String>> = cfg
            .graph
            .out_edges(c)
            .map(|e| cfg.graph.edge_weight(e).clone())
            .collect();
        assert!(labels.contains(&Some("T".into())));
        assert!(labels.contains(&Some("F".into())));
        assert_eq!(cfg.predicates(), vec!["c"]);
    }

    #[test]
    fn while_loops_back() {
        let p = parse_process("process P { var n; while c reads n { assign d reads n writes n; } }")
            .unwrap();
        let cfg = Cfg::build(&p);
        let c = cfg.node("c").unwrap();
        let d = cfg.node("d").unwrap();
        assert!(cfg.graph.has_edge(c, d));
        assert!(cfg.graph.has_edge(d, c), "back edge");
        // Exit reachable via the F edge.
        assert!(shortest_path(&cfg.graph, c, cfg.exit).is_some());
    }

    #[test]
    fn links_add_cross_edges() {
        let p = parse_process(
            "process P { var x; flow { assign a writes x; assign b reads x; link l from a to b; } }",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        assert!(cfg
            .graph
            .has_edge(cfg.node("a").unwrap(), cfg.node("b").unwrap()));
    }

    #[test]
    fn empty_process_connects_entry_to_exit() {
        let p = parse_process("process P { sequence { } }").unwrap();
        let cfg = Cfg::build(&p);
        assert!(cfg.graph.has_edge(cfg.entry, cfg.exit));
    }

    #[test]
    fn every_node_reaches_exit() {
        let p = parse_process(
            "process P { var x; sequence { switch c reads x { case T { flow { assign a writes x; assign b writes x; } } case F { assign e writes x; } } assign f reads x; } }",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        for n in cfg.graph.node_ids() {
            assert!(
                shortest_path(&cfg.graph, n, cfg.exit).is_some(),
                "{:?} cannot reach exit",
                cfg.graph.weight(n)
            );
        }
    }
}
