//! Textual renderings of a process: the Figure-2-style nested construct
//! listing and a Figure-1-style flowchart outline. Used by the `repro`
//! harness to print the paper's figures.

use crate::activity::Activity;
use crate::process::{Construct, Process};

/// Renders the process as a nested sequencing-construct listing — the shape
/// of the paper's Figure 2.
pub fn render_constructs(p: &Process) -> String {
    let mut out = String::new();
    out.push_str(&format!("process {} {{\n", p.name));
    if !p.vars.is_empty() {
        out.push_str(&format!("  var {};\n", p.vars.join(", ")));
    }
    for s in &p.services {
        out.push_str(&format!(
            "  service {} {{ ports {}{} }}\n",
            s.name,
            s.ports,
            if s.asynchronous { " async" } else { "" }
        ));
    }
    render_construct(&p.root, 1, &mut out);
    out.push_str("}\n");
    out
}

fn act_line(a: &Activity) -> String {
    format!("{a};")
}

fn render_construct(c: &Construct, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match c {
        Construct::Act(a) => {
            out.push_str(&pad);
            out.push_str(&act_line(a));
            out.push('\n');
        }
        Construct::Sequence(items) => {
            out.push_str(&format!("{pad}sequence {{\n"));
            for i in items {
                render_construct(i, depth + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        Construct::Flow { branches, links } => {
            out.push_str(&format!("{pad}flow {{\n"));
            for b in branches {
                render_construct(b, depth + 1, out);
            }
            for l in links {
                let cond = l
                    .condition
                    .as_deref()
                    .map(|c| format!(" when {c}"))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "{pad}  link {} from {} to {}{cond};\n",
                    l.name, l.from, l.to
                ));
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        Construct::Switch { branch, cases } => {
            let reads = if branch.reads.is_empty() {
                String::new()
            } else {
                format!(" reads {}", branch.reads.join(","))
            };
            out.push_str(&format!("{pad}switch {}{} {{\n", branch.name, reads));
            for case in cases {
                out.push_str(&format!("{pad}  case {} {{\n", case.label));
                render_construct(&case.body, depth + 2, out);
                out.push_str(&format!("{pad}  }}\n"));
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        Construct::While { cond, body } => {
            let reads = if cond.reads.is_empty() {
                String::new()
            } else {
                format!(" reads {}", cond.reads.join(","))
            };
            out.push_str(&format!("{pad}while {}{} {{\n", cond.name, reads));
            render_construct(body, depth + 1, out);
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

/// Renders a flowchart outline — activities with branch (`◇`) and parallel
/// (`∥`) markers, the shape of the paper's Figure 1.
pub fn render_flowchart(p: &Process) -> String {
    let mut out = String::new();
    out.push_str(&format!("[start] {}\n", p.name));
    flowchart(&p.root, 0, &mut out);
    out.push_str("[end]\n");
    out
}

fn flowchart(c: &Construct, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match c {
        Construct::Act(a) => out.push_str(&format!("{pad}• {}\n", a.name)),
        Construct::Sequence(items) => {
            for i in items {
                flowchart(i, depth, out);
            }
        }
        Construct::Flow { branches, links } => {
            out.push_str(&format!("{pad}∥ parallel\n"));
            for (i, b) in branches.iter().enumerate() {
                out.push_str(&format!("{pad}├─ branch {}\n", i + 1));
                flowchart(b, depth + 1, out);
            }
            for l in links {
                out.push_str(&format!("{pad}~ sync {} ⇒ {}\n", l.from, l.to));
            }
            out.push_str(&format!("{pad}∥ join\n"));
        }
        Construct::Switch { branch, cases } => {
            out.push_str(&format!("{pad}◇ {}\n", branch.name));
            for case in cases {
                out.push_str(&format!("{pad}├─ [{}]\n", case.label));
                flowchart(&case.body, depth + 1, out);
            }
            out.push_str(&format!("{pad}◇ join\n"));
        }
        Construct::While { cond, body } => {
            out.push_str(&format!("{pad}↻ while {}\n", cond.name));
            flowchart(body, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_process;

    const SRC: &str = r#"
process Demo {
  var po, au, oi;
  service Credit { ports 1 async }
  sequence {
    receive recClient_po from Client writes po;
    switch if_au reads au {
      case T { flow { assign a writes oi; assign b reads oi; link l from a to b; } }
      case F { assign set_oi writes oi; }
    }
  }
}
"#;

    #[test]
    fn constructs_render_round_trips_through_parser() {
        let p = parse_process(SRC).unwrap();
        let rendered = render_constructs(&p);
        let reparsed = parse_process(&rendered).expect("rendered DSL must reparse");
        assert_eq!(reparsed, p, "render → parse is identity");
    }

    #[test]
    fn flowchart_mentions_all_activities() {
        let p = parse_process(SRC).unwrap();
        let chart = render_flowchart(&p);
        for a in p.activities() {
            assert!(chart.contains(&a.name), "missing {}", a.name);
        }
        assert!(chart.contains("◇ if_au"));
        assert!(chart.contains("∥ parallel"));
        assert!(chart.contains("~ sync a ⇒ b"));
    }
}
