//! Activities — the unit of scheduling in a business process.
//!
//! The paper writes activities as `actionService_param` for remote
//! interactions (`invCredit_po` invokes the *Credit* service with parameter
//! `po`) or `action_param` for local computation (`set_oi`). An activity
//! declares which variables it reads and writes; the PDG crate derives data
//! dependencies (def-use chains, §3.1) from exactly this information.

/// A process variable name (e.g. `po`, `si`, `oi`).
pub type VarName = String;

/// What an activity does — mirrors the BPEL 1.0 basic activities the paper
/// builds on, plus an explicit branch evaluator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ActivityKind {
    /// Waits for an inbound message (from the client or a service callback).
    Receive {
        /// The partner the message comes from (`Client`, `Credit`, ...).
        from: String,
    },
    /// Sends an asynchronous invocation to a remote service port.
    Invoke {
        /// The remote service name.
        service: String,
        /// 1-based port number at that service (the paper names multi-port
        /// services' ports `s_1, s_2, ...`).
        port: u32,
    },
    /// Sends the final reply back to a partner.
    Reply {
        /// The partner receiving the reply.
        to: String,
    },
    /// Local computation / variable assignment (e.g. `set_oi`).
    Assign,
    /// Evaluates a branch condition and steers control flow (e.g. `if_au`).
    /// The produced value is one of the case labels of its `Switch`.
    Branch,
    /// A placeholder with no observable behaviour (BPEL `empty`).
    Empty,
}

impl ActivityKind {
    /// The remote partner this activity talks to, if any.
    pub fn partner(&self) -> Option<&str> {
        match self {
            ActivityKind::Receive { from } => Some(from),
            ActivityKind::Invoke { service, .. } => Some(service),
            ActivityKind::Reply { to } => Some(to),
            _ => None,
        }
    }

    /// Short keyword used by the textual DSL and displays.
    pub fn keyword(&self) -> &'static str {
        match self {
            ActivityKind::Receive { .. } => "receive",
            ActivityKind::Invoke { .. } => "invoke",
            ActivityKind::Reply { .. } => "reply",
            ActivityKind::Assign => "assign",
            ActivityKind::Branch => "switch",
            ActivityKind::Empty => "empty",
        }
    }
}

/// A named activity with its variable footprint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Activity {
    /// Unique name within the process (paper style: `invCredit_po`).
    pub name: String,
    /// What it does.
    pub kind: ActivityKind,
    /// Variables read (used) by this activity.
    pub reads: Vec<VarName>,
    /// Variables written (defined) by this activity.
    pub writes: Vec<VarName>,
}

impl Activity {
    /// Creates an activity with an empty variable footprint.
    pub fn new(name: impl Into<String>, kind: ActivityKind) -> Self {
        Activity {
            name: name.into(),
            kind,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Builder: adds read variables.
    pub fn reads(mut self, vars: &[&str]) -> Self {
        self.reads.extend(vars.iter().map(|s| s.to_string()));
        self
    }

    /// Builder: adds written variables.
    pub fn writes(mut self, vars: &[&str]) -> Self {
        self.writes.extend(vars.iter().map(|s| s.to_string()));
        self
    }

    /// Convenience constructor for a receive.
    pub fn receive(name: &str, from: &str) -> Self {
        Activity::new(name, ActivityKind::Receive { from: from.into() })
    }

    /// Convenience constructor for an invoke.
    pub fn invoke(name: &str, service: &str, port: u32) -> Self {
        Activity::new(
            name,
            ActivityKind::Invoke {
                service: service.into(),
                port,
            },
        )
    }

    /// Convenience constructor for a reply.
    pub fn reply(name: &str, to: &str) -> Self {
        Activity::new(name, ActivityKind::Reply { to: to.into() })
    }

    /// Convenience constructor for an assign.
    pub fn assign(name: &str) -> Self {
        Activity::new(name, ActivityKind::Assign)
    }

    /// Convenience constructor for a branch evaluator.
    pub fn branch(name: &str) -> Self {
        Activity::new(name, ActivityKind::Branch)
    }

    /// True if this activity interacts with a remote partner.
    pub fn is_interaction(&self) -> bool {
        self.kind.partner().is_some()
    }
}

impl std::fmt::Display for Activity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.kind.keyword(), self.name)?;
        match &self.kind {
            ActivityKind::Receive { from } => write!(f, " from {from}")?,
            ActivityKind::Invoke { service, port } => write!(f, " on {service} port {port}")?,
            ActivityKind::Reply { to } => write!(f, " to {to}")?,
            _ => {}
        }
        if !self.reads.is_empty() {
            write!(f, " reads {}", self.reads.join(","))?;
        }
        if !self.writes.is_empty() {
            write!(f, " writes {}", self.writes.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_partner() {
        let a = Activity::invoke("invCredit_po", "Credit", 1).reads(&["po"]);
        assert_eq!(a.kind.partner(), Some("Credit"));
        assert!(a.is_interaction());
        assert_eq!(a.reads, vec!["po"]);
        assert!(a.writes.is_empty());

        let b = Activity::assign("set_oi").writes(&["oi"]);
        assert_eq!(b.kind.partner(), None);
        assert!(!b.is_interaction());
    }

    #[test]
    fn display_round_trips_dsl_shape() {
        let a = Activity::receive("recClient_po", "Client").writes(&["po"]);
        assert_eq!(a.to_string(), "receive recClient_po from Client writes po");
        let b = Activity::invoke("invPurchase_si", "Purchase", 2).reads(&["si"]);
        assert_eq!(
            b.to_string(),
            "invoke invPurchase_si on Purchase port 2 reads si"
        );
    }

    #[test]
    fn keywords() {
        assert_eq!(Activity::branch("if_au").kind.keyword(), "switch");
        assert_eq!(Activity::assign("x").kind.keyword(), "assign");
    }
}
