//! Process definitions: the sequencing-construct AST the paper argues
//! *against*, kept here faithfully so we can (a) express Figure 2, (b)
//! extract dependencies from it via the PDG crate, and (c) interpret it as
//! the baseline scheduler.

use crate::activity::{Activity, VarName};
use std::collections::HashSet;

/// A BPEL-style `flow` link: an explicit cross-branch happen-before edge
/// from activity `from` to activity `to`, optionally guarded by a
/// transition condition label.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Link {
    /// Link name (unique within the flow).
    pub name: String,
    /// Source activity name.
    pub from: String,
    /// Target activity name.
    pub to: String,
    /// Optional transition condition label (`"T"`/`"F"` on branch sources).
    pub condition: Option<String>,
}

/// One case of a `switch`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Case {
    /// Branch value steering into this case (`"T"`, `"F"`, or any label).
    pub label: String,
    /// The case body.
    pub body: Construct,
}

/// The sequencing-construct AST (§1, Figure 2): how mainstream process
/// modeling languages specify synchronization.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Construct {
    /// A leaf activity.
    Act(Activity),
    /// Sequential composition.
    Sequence(Vec<Construct>),
    /// Parallel composition with optional cross-branch links.
    Flow {
        /// Concurrent branches.
        branches: Vec<Construct>,
        /// Cross-branch synchronization links.
        links: Vec<Link>,
    },
    /// Conditional branching; `branch` is the activity that evaluates the
    /// condition (the paper's `if_au`), producing one of the case labels.
    Switch {
        /// The branch-evaluating activity.
        branch: Activity,
        /// Labeled cases.
        cases: Vec<Case>,
    },
    /// Condition-guarded iteration; `cond` re-evaluates before each pass.
    While {
        /// The condition-evaluating activity.
        cond: Activity,
        /// The loop body.
        body: Box<Construct>,
    },
}

impl Construct {
    /// A flow with no links.
    pub fn flow(branches: Vec<Construct>) -> Construct {
        Construct::Flow {
            branches,
            links: Vec::new(),
        }
    }

    /// Depth-first iteration over all activities (including branch/loop
    /// condition evaluators), in syntax order.
    pub fn activities(&self) -> Vec<&Activity> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a Activity>) {
        match self {
            Construct::Act(a) => out.push(a),
            Construct::Sequence(items) => items.iter().for_each(|c| c.collect(out)),
            Construct::Flow { branches, .. } => branches.iter().for_each(|c| c.collect(out)),
            Construct::Switch { branch, cases } => {
                out.push(branch);
                cases.iter().for_each(|c| c.body.collect(out));
            }
            Construct::While { cond, body } => {
                out.push(cond);
                body.collect(out);
            }
        }
    }

    /// Number of activities in the subtree.
    pub fn activity_count(&self) -> usize {
        self.activities().len()
    }

    /// All links declared anywhere in the subtree.
    pub fn links(&self) -> Vec<&Link> {
        let mut out = Vec::new();
        self.collect_links(&mut out);
        out
    }

    fn collect_links<'a>(&'a self, out: &mut Vec<&'a Link>) {
        match self {
            Construct::Act(_) => {}
            Construct::Sequence(items) => items.iter().for_each(|c| c.collect_links(out)),
            Construct::Flow { branches, links } => {
                out.extend(links.iter());
                branches.iter().for_each(|c| c.collect_links(out));
            }
            Construct::Switch { cases, .. } => {
                cases.iter().for_each(|c| c.body.collect_links(out))
            }
            Construct::While { body, .. } => body.collect_links(out),
        }
    }
}

/// A partner service declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServiceDecl {
    /// Service name (`Credit`, `Purchase`, ...).
    pub name: String,
    /// Number of input ports (`Purchase` has 2).
    pub ports: u32,
    /// True if the service calls back asynchronously through a dummy port
    /// `s_d` (§3.3 naming).
    pub asynchronous: bool,
}

/// A complete process definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Process {
    /// Process name.
    pub name: String,
    /// Declared variables.
    pub vars: Vec<VarName>,
    /// Declared partner services.
    pub services: Vec<ServiceDecl>,
    /// The root construct.
    pub root: Construct,
}

/// Validation failures for a process definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// Two activities share a name.
    DuplicateActivity(String),
    /// An activity reads/writes an undeclared variable.
    UndeclaredVariable {
        /// The offending activity.
        activity: String,
        /// The missing variable.
        var: String,
    },
    /// An interaction references an undeclared service/partner (the client
    /// partner `Client` is implicitly declared).
    UndeclaredService {
        /// The offending activity.
        activity: String,
        /// The missing service.
        service: String,
    },
    /// An invoke targets a port the service does not declare.
    BadPort {
        /// The offending activity.
        activity: String,
        /// The service.
        service: String,
        /// The out-of-range port.
        port: u32,
    },
    /// A link endpoint names a non-existent activity.
    DanglingLink {
        /// The link name.
        link: String,
        /// The missing endpoint activity.
        endpoint: String,
    },
    /// A switch has duplicate case labels.
    DuplicateCase {
        /// The branch activity.
        branch: String,
        /// The repeated label.
        label: String,
    },
    /// A switch has no cases.
    EmptySwitch(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::DuplicateActivity(n) => write!(f, "duplicate activity '{n}'"),
            ModelError::UndeclaredVariable { activity, var } => {
                write!(f, "activity '{activity}' uses undeclared variable '{var}'")
            }
            ModelError::UndeclaredService { activity, service } => {
                write!(f, "activity '{activity}' references undeclared service '{service}'")
            }
            ModelError::BadPort {
                activity,
                service,
                port,
            } => write!(
                f,
                "activity '{activity}' invokes port {port} of '{service}' which has fewer ports"
            ),
            ModelError::DanglingLink { link, endpoint } => {
                write!(f, "link '{link}' references missing activity '{endpoint}'")
            }
            ModelError::DuplicateCase { branch, label } => {
                write!(f, "switch '{branch}' has duplicate case label '{label}'")
            }
            ModelError::EmptySwitch(n) => write!(f, "switch '{n}' has no cases"),
        }
    }
}

impl std::error::Error for ModelError {}

impl Process {
    /// Creates a process with implicit `Client` partner.
    pub fn new(name: impl Into<String>, root: Construct) -> Self {
        Process {
            name: name.into(),
            vars: Vec::new(),
            services: Vec::new(),
            root,
        }
    }

    /// All activities in syntax order.
    pub fn activities(&self) -> Vec<&Activity> {
        self.root.activities()
    }

    /// Looks up an activity by name.
    pub fn activity(&self, name: &str) -> Option<&Activity> {
        self.activities().into_iter().find(|a| a.name == name)
    }

    /// Looks up a service declaration by name.
    pub fn service(&self, name: &str) -> Option<&ServiceDecl> {
        self.services.iter().find(|s| s.name == name)
    }

    /// Full structural validation; returns every problem found.
    pub fn validate(&self) -> Vec<ModelError> {
        let mut errors = Vec::new();
        let activities = self.activities();

        // Unique names.
        let mut seen = HashSet::new();
        for a in &activities {
            if !seen.insert(a.name.as_str()) {
                errors.push(ModelError::DuplicateActivity(a.name.clone()));
            }
        }

        // Variables declared.
        let vars: HashSet<&str> = self.vars.iter().map(String::as_str).collect();
        for a in &activities {
            for v in a.reads.iter().chain(&a.writes) {
                if !vars.contains(v.as_str()) {
                    errors.push(ModelError::UndeclaredVariable {
                        activity: a.name.clone(),
                        var: v.clone(),
                    });
                }
            }
        }

        // Services declared; ports in range. `Client` is implicit.
        for a in &activities {
            if let crate::activity::ActivityKind::Invoke { service, port } = &a.kind {
                match self.service(service) {
                    None => errors.push(ModelError::UndeclaredService {
                        activity: a.name.clone(),
                        service: service.clone(),
                    }),
                    Some(decl) if *port == 0 || *port > decl.ports => {
                        errors.push(ModelError::BadPort {
                            activity: a.name.clone(),
                            service: service.clone(),
                            port: *port,
                        })
                    }
                    _ => {}
                }
            }
            if let crate::activity::ActivityKind::Receive { from } = &a.kind {
                if from != "Client" && self.service(from).is_none() {
                    errors.push(ModelError::UndeclaredService {
                        activity: a.name.clone(),
                        service: from.clone(),
                    });
                }
            }
        }

        // Links resolve; switch cases well-formed.
        let names: HashSet<&str> = activities.iter().map(|a| a.name.as_str()).collect();
        for l in self.root.links() {
            for endpoint in [&l.from, &l.to] {
                if !names.contains(endpoint.as_str()) {
                    errors.push(ModelError::DanglingLink {
                        link: l.name.clone(),
                        endpoint: endpoint.clone(),
                    });
                }
            }
        }
        self.check_switches(&self.root, &mut errors);
        errors
    }

    fn check_switches(&self, c: &Construct, errors: &mut Vec<ModelError>) {
        match c {
            Construct::Act(_) => {}
            Construct::Sequence(items) => {
                items.iter().for_each(|i| self.check_switches(i, errors))
            }
            Construct::Flow { branches, .. } => {
                branches.iter().for_each(|i| self.check_switches(i, errors))
            }
            Construct::Switch { branch, cases } => {
                if cases.is_empty() {
                    errors.push(ModelError::EmptySwitch(branch.name.clone()));
                }
                let mut labels = HashSet::new();
                for case in cases {
                    if !labels.insert(case.label.as_str()) {
                        errors.push(ModelError::DuplicateCase {
                            branch: branch.name.clone(),
                            label: case.label.clone(),
                        });
                    }
                    self.check_switches(&case.body, errors);
                }
            }
            Construct::While { body, .. } => self.check_switches(body, errors),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;

    fn tiny() -> Process {
        let mut p = Process::new(
            "tiny",
            Construct::Sequence(vec![
                Construct::Act(Activity::receive("recClient_po", "Client").writes(&["po"])),
                Construct::Act(Activity::invoke("invCredit_po", "Credit", 1).reads(&["po"])),
            ]),
        );
        p.vars = vec!["po".into()];
        p.services = vec![ServiceDecl {
            name: "Credit".into(),
            ports: 1,
            asynchronous: true,
        }];
        p
    }

    #[test]
    fn valid_process_passes() {
        assert!(tiny().validate().is_empty());
        assert_eq!(tiny().activities().len(), 2);
        assert!(tiny().activity("invCredit_po").is_some());
        assert!(tiny().activity("nope").is_none());
    }

    #[test]
    fn duplicate_names_detected() {
        let mut p = tiny();
        if let Construct::Sequence(items) = &mut p.root {
            items.push(Construct::Act(
                Activity::receive("recClient_po", "Client").writes(&["po"]),
            ));
        }
        assert!(matches!(
            p.validate()[0],
            ModelError::DuplicateActivity(_)
        ));
    }

    #[test]
    fn undeclared_var_and_service_detected() {
        let mut p = tiny();
        p.vars.clear();
        p.services.clear();
        let errs = p.validate();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::UndeclaredVariable { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ModelError::UndeclaredService { .. })));
    }

    #[test]
    fn bad_port_detected() {
        let mut p = tiny();
        if let Construct::Sequence(items) = &mut p.root {
            items.push(Construct::Act(
                Activity::invoke("invCredit_x", "Credit", 2).reads(&["po"]),
            ));
        }
        assert!(p
            .validate()
            .iter()
            .any(|e| matches!(e, ModelError::BadPort { port: 2, .. })));
    }

    #[test]
    fn dangling_link_detected() {
        let mut p = tiny();
        p.root = Construct::Flow {
            branches: vec![p.root.clone()],
            links: vec![Link {
                name: "l1".into(),
                from: "recClient_po".into(),
                to: "ghost".into(),
                condition: None,
            }],
        };
        assert!(p
            .validate()
            .iter()
            .any(|e| matches!(e, ModelError::DanglingLink { .. })));
    }

    #[test]
    fn switch_validation() {
        let mut p = tiny();
        p.vars.push("au".into());
        p.root = Construct::Switch {
            branch: Activity::branch("if_au").reads(&["au"]),
            cases: vec![
                Case {
                    label: "T".into(),
                    body: p.root.clone(),
                },
                Case {
                    label: "T".into(),
                    body: Construct::Act(Activity::assign("noop")),
                },
            ],
        };
        assert!(p
            .validate()
            .iter()
            .any(|e| matches!(e, ModelError::DuplicateCase { .. })));
        // Branch activity is included in the activity walk.
        assert!(p.activity("if_au").is_some());
    }

    #[test]
    fn empty_switch_detected() {
        let mut p = tiny();
        p.vars.push("au".into());
        p.root = Construct::Switch {
            branch: Activity::branch("if_au").reads(&["au"]),
            cases: vec![],
        };
        assert!(p
            .validate()
            .iter()
            .any(|e| matches!(e, ModelError::EmptySwitch(_))));
    }

    #[test]
    fn links_collected_recursively() {
        let inner = Construct::Flow {
            branches: vec![],
            links: vec![Link {
                name: "l2".into(),
                from: "a".into(),
                to: "b".into(),
                condition: Some("T".into()),
            }],
        };
        let outer = Construct::Flow {
            branches: vec![inner],
            links: vec![Link {
                name: "l1".into(),
                from: "x".into(),
                to: "y".into(),
                condition: None,
            }],
        };
        let names: Vec<&str> = outer.links().iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["l1", "l2"]);
    }
}
