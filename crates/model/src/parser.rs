//! A textual DSL for process definitions, so examples and tests can state
//! processes the way the paper's figures do.
//!
//! ```text
//! process Purchasing {
//!   var po, au, si, ss, oi;
//!   service Credit   { ports 1 async }
//!   service Purchase { ports 2 async }
//!
//!   sequence {
//!     receive recClient_po from Client writes po;
//!     invoke invCredit_po on Credit port 1 reads po;
//!     receive recCredit_au from Credit writes au;
//!     switch if_au reads au {
//!       case T {
//!         flow {
//!           sequence { invoke invShip_po on Ship port 1 reads po; }
//!           assign set_x writes oi;
//!         }
//!       }
//!       case F { assign set_oi writes oi; }
//!     }
//!     reply replyClient_oi to Client reads oi;
//!   }
//! }
//! ```
//!
//! `//` and `#` start line comments. Inside `flow { ... }`, each construct
//! is one parallel branch, and `link NAME from A to B [when LABEL];`
//! declares a cross-branch link.

use crate::activity::Activity;
use crate::process::{Case, Construct, Link, Process, ServiceDecl};

/// Parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// Description of what went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "process DSL error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u32),
    LBrace,
    RBrace,
    Semi,
    Comma,
}

struct Lexer;

impl Lexer {
    fn lex(src: &str) -> Result<Vec<(Tok, usize)>, DslError> {
        let mut out = Vec::new();
        for (lineno, line) in src.lines().enumerate() {
            let line_no = lineno + 1;
            let code = match (line.find("//"), line.find('#')) {
                (Some(a), Some(b)) => &line[..a.min(b)],
                (Some(a), None) => &line[..a],
                (None, Some(b)) => &line[..b],
                (None, None) => line,
            };
            let mut chars = code.char_indices().peekable();
            while let Some(&(i, c)) = chars.peek() {
                match c {
                    ' ' | '\t' | '\r' => {
                        chars.next();
                    }
                    '{' => {
                        out.push((Tok::LBrace, line_no));
                        chars.next();
                    }
                    '}' => {
                        out.push((Tok::RBrace, line_no));
                        chars.next();
                    }
                    ';' => {
                        out.push((Tok::Semi, line_no));
                        chars.next();
                    }
                    ',' => {
                        out.push((Tok::Comma, line_no));
                        chars.next();
                    }
                    c if c.is_ascii_digit() => {
                        let mut end = i;
                        while let Some(&(j, d)) = chars.peek() {
                            if d.is_ascii_digit() {
                                end = j + d.len_utf8();
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        let n: u32 = code[i..end].parse().map_err(|_| DslError {
                            message: format!("bad number '{}'", &code[i..end]),
                            line: line_no,
                        })?;
                        out.push((Tok::Num(n), line_no));
                    }
                    c if c.is_ascii_alphabetic() || c == '_' => {
                        let mut end = i;
                        while let Some(&(j, d)) = chars.peek() {
                            if d.is_ascii_alphanumeric() || d == '_' {
                                end = j + d.len_utf8();
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        out.push((Tok::Ident(code[i..end].to_string()), line_no));
                    }
                    other => {
                        return Err(DslError {
                            message: format!("unexpected character '{other}'"),
                            line: line_no,
                        })
                    }
                }
            }
        }
        Ok(out)
    }
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl P {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |t| t.1)
    }

    fn err(&self, message: impl Into<String>) -> DslError {
        DslError {
            message: message.into(),
            line: self.line(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.0.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_tok(&mut self, t: &Tok, what: &str) -> Result<(), DslError> {
        match self.next() {
            Some(got) if got == *t => Ok(()),
            got => Err(self.err(format!("expected {what}, got {got:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, DslError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            got => Err(self.err(format!("expected {what}, got {got:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), DslError> {
        let got = self.ident(&format!("keyword '{kw}'"))?;
        if got == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}', got '{got}'")))
        }
    }

    fn peek_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn ident_list(&mut self) -> Result<Vec<String>, DslError> {
        let mut out = vec![self.ident("identifier")?];
        while matches!(self.peek(), Some(Tok::Comma)) {
            self.next();
            out.push(self.ident("identifier")?);
        }
        Ok(out)
    }

    /// `reads a,b` / `writes c` suffixes in either order.
    fn var_clauses(&mut self, a: &mut Activity) -> Result<(), DslError> {
        loop {
            if self.peek_ident("reads") {
                self.next();
                a.reads.extend(self.ident_list()?);
            } else if self.peek_ident("writes") {
                self.next();
                a.writes.extend(self.ident_list()?);
            } else {
                return Ok(());
            }
        }
    }

    fn activity(&mut self) -> Result<Activity, DslError> {
        let kw = self.ident("activity keyword")?;
        let mut act = match kw.as_str() {
            "receive" => {
                let name = self.ident("activity name")?;
                self.keyword("from")?;
                let from = self.ident("partner name")?;
                Activity::receive(&name, &from)
            }
            "invoke" => {
                let name = self.ident("activity name")?;
                self.keyword("on")?;
                let service = self.ident("service name")?;
                self.keyword("port")?;
                let port = match self.next() {
                    Some(Tok::Num(n)) => n,
                    got => return Err(self.err(format!("expected port number, got {got:?}"))),
                };
                Activity::invoke(&name, &service, port)
            }
            "reply" => {
                let name = self.ident("activity name")?;
                self.keyword("to")?;
                let to = self.ident("partner name")?;
                Activity::reply(&name, &to)
            }
            "assign" => Activity::assign(&self.ident("activity name")?),
            "empty" => Activity::new(
                self.ident("activity name")?,
                crate::activity::ActivityKind::Empty,
            ),
            other => return Err(self.err(format!("unknown activity keyword '{other}'"))),
        };
        self.var_clauses(&mut act)?;
        self.expect_tok(&Tok::Semi, "';'")?;
        Ok(act)
    }

    /// Parses a body `{ construct* }` into a single construct (implicit
    /// sequence when more than one).
    fn body(&mut self) -> Result<Construct, DslError> {
        self.expect_tok(&Tok::LBrace, "'{'")?;
        let mut items = Vec::new();
        while !matches!(self.peek(), Some(Tok::RBrace)) {
            if self.peek().is_none() {
                return Err(self.err("unterminated body"));
            }
            items.push(self.construct()?);
        }
        self.expect_tok(&Tok::RBrace, "'}'")?;
        Ok(match items.len() {
            1 => items.pop().expect("len checked"),
            _ => Construct::Sequence(items),
        })
    }

    fn construct(&mut self) -> Result<Construct, DslError> {
        match self.peek() {
            Some(Tok::Ident(kw)) if kw == "sequence" => {
                self.next();
                self.expect_tok(&Tok::LBrace, "'{'")?;
                let mut items = Vec::new();
                while !matches!(self.peek(), Some(Tok::RBrace)) {
                    if self.peek().is_none() {
                        return Err(self.err("unterminated sequence"));
                    }
                    items.push(self.construct()?);
                }
                self.expect_tok(&Tok::RBrace, "'}'")?;
                Ok(Construct::Sequence(items))
            }
            Some(Tok::Ident(kw)) if kw == "flow" => {
                self.next();
                self.expect_tok(&Tok::LBrace, "'{'")?;
                let mut branches = Vec::new();
                let mut links = Vec::new();
                while !matches!(self.peek(), Some(Tok::RBrace)) {
                    if self.peek().is_none() {
                        return Err(self.err("unterminated flow"));
                    }
                    if self.peek_ident("link") {
                        self.next();
                        let name = self.ident("link name")?;
                        self.keyword("from")?;
                        let from = self.ident("source activity")?;
                        self.keyword("to")?;
                        let to = self.ident("target activity")?;
                        let condition = if self.peek_ident("when") {
                            self.next();
                            Some(self.ident("condition label")?)
                        } else {
                            None
                        };
                        self.expect_tok(&Tok::Semi, "';'")?;
                        links.push(Link {
                            name,
                            from,
                            to,
                            condition,
                        });
                    } else {
                        branches.push(self.construct()?);
                    }
                }
                self.expect_tok(&Tok::RBrace, "'}'")?;
                Ok(Construct::Flow { branches, links })
            }
            Some(Tok::Ident(kw)) if kw == "switch" => {
                self.next();
                let name = self.ident("switch activity name")?;
                let mut branch = Activity::branch(&name);
                self.var_clauses(&mut branch)?;
                self.expect_tok(&Tok::LBrace, "'{'")?;
                let mut cases = Vec::new();
                while self.peek_ident("case") {
                    self.next();
                    let label = self.ident("case label")?;
                    let body = self.body()?;
                    cases.push(Case { label, body });
                }
                self.expect_tok(&Tok::RBrace, "'}'")?;
                Ok(Construct::Switch { branch, cases })
            }
            Some(Tok::Ident(kw)) if kw == "while" => {
                self.next();
                let name = self.ident("while condition activity name")?;
                let mut cond = Activity::branch(&name);
                self.var_clauses(&mut cond)?;
                let body = self.body()?;
                Ok(Construct::While {
                    cond,
                    body: Box::new(body),
                })
            }
            _ => Ok(Construct::Act(self.activity()?)),
        }
    }
}

/// Parses a complete `process NAME { ... }` document.
pub fn parse_process(src: &str) -> Result<Process, DslError> {
    let toks = Lexer::lex(src)?;
    let mut p = P { toks, pos: 0 };
    p.keyword("process")?;
    let name = p.ident("process name")?;
    p.expect_tok(&Tok::LBrace, "'{'")?;

    let mut vars = Vec::new();
    let mut services = Vec::new();
    loop {
        if p.peek_ident("var") {
            p.next();
            vars.extend(p.ident_list()?);
            p.expect_tok(&Tok::Semi, "';'")?;
        } else if p.peek_ident("service") {
            p.next();
            let sname = p.ident("service name")?;
            p.expect_tok(&Tok::LBrace, "'{'")?;
            p.keyword("ports")?;
            let ports = match p.next() {
                Some(Tok::Num(n)) => n,
                got => return Err(p.err(format!("expected port count, got {got:?}"))),
            };
            let asynchronous = if p.peek_ident("async") {
                p.next();
                true
            } else {
                false
            };
            p.expect_tok(&Tok::RBrace, "'}'")?;
            services.push(ServiceDecl {
                name: sname,
                ports,
                asynchronous,
            });
        } else {
            break;
        }
    }

    let root = p.construct()?;
    p.expect_tok(&Tok::RBrace, "'}'")?;
    if p.peek().is_some() {
        return Err(p.err("trailing tokens after process definition"));
    }
    Ok(Process {
        name,
        vars,
        services,
        root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityKind;

    #[test]
    fn minimal_process() {
        let p = parse_process(
            "process P {\n var x;\n sequence { assign a writes x; assign b reads x; }\n}",
        )
        .unwrap();
        assert_eq!(p.name, "P");
        assert_eq!(p.vars, vec!["x"]);
        assert_eq!(p.activities().len(), 2);
        assert!(p.validate().is_empty());
    }

    #[test]
    fn full_grammar() {
        let src = r#"
process Demo {
  var po, au, oi;            // declarations
  service Credit { ports 1 async }
  service Purchase { ports 2 async }

  sequence {
    receive recClient_po from Client writes po;
    invoke invCredit_po on Credit port 1 reads po;
    receive recCredit_au from Credit writes au;
    switch if_au reads au {
      case T {
        flow {
          invoke invPurchase_po on Purchase port 1 reads po;
          invoke invPurchase_si on Purchase port 2 reads po;
          link l1 from invPurchase_po to invPurchase_si;
        }
      }
      case F { assign set_oi writes oi; }
    }
    reply replyClient_oi to Client reads oi;
  }
}
"#;
        let p = parse_process(src).unwrap();
        assert!(p.validate().is_empty(), "{:?}", p.validate());
        assert_eq!(p.services.len(), 2);
        assert_eq!(p.activities().len(), 8);
        let links = p.root.links();
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].from, "invPurchase_po");
        let inv = p.activity("invPurchase_si").unwrap();
        assert_eq!(
            inv.kind,
            ActivityKind::Invoke {
                service: "Purchase".into(),
                port: 2
            }
        );
    }

    #[test]
    fn while_loop() {
        let p = parse_process(
            "process L { var n; while check_n reads n { assign dec_n reads n writes n; } }",
        )
        .unwrap();
        assert!(matches!(p.root, Construct::While { .. }));
        assert_eq!(p.activities().len(), 2);
    }

    #[test]
    fn multi_statement_case_becomes_sequence() {
        let p = parse_process(
            "process S { var x; switch c reads x { case T { assign a writes x; assign b writes x; } } }",
        )
        .unwrap();
        if let Construct::Switch { cases, .. } = &p.root {
            assert!(matches!(cases[0].body, Construct::Sequence(ref v) if v.len() == 2));
        } else {
            panic!("expected switch");
        }
    }

    #[test]
    fn conditional_link() {
        let p = parse_process(
            "process F { var x; flow { assign a writes x; assign b reads x; link l from a to b when T; } }",
        )
        .unwrap();
        assert_eq!(p.root.links()[0].condition.as_deref(), Some("T"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_process("process P {\n var x;\n bogus a;\n}").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn missing_semicolon_rejected() {
        assert!(parse_process("process P { var x; assign a writes x }").is_err());
    }

    #[test]
    fn comments_both_styles() {
        let p = parse_process(
            "process P { # hash comment\n var x; // slash comment\n assign a writes x;\n}",
        )
        .unwrap();
        assert_eq!(p.activities().len(), 1);
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_process("process P { var x; assign a writes x; } extra").is_err());
    }

    #[test]
    fn empty_activity_kind() {
        let p = parse_process("process P { empty noop; }").unwrap();
        assert_eq!(p.activities()[0].kind, ActivityKind::Empty);
    }
}
