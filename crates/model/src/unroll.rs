//! Bounded `while` unrolling.
//!
//! The static synchronization scheme (like the paper's) does not iterate:
//! a constraint set is a DAG over single-shot activities. Processes with
//! loops can still go through the pipeline by unrolling each `while` to a
//! bounded depth `k`: iteration `i` gets fresh activity copies
//! (`name#i`), the condition re-evaluates before each body copy, and a
//! `T`-guarded chain links successive iterations — taking the `F` branch
//! at any depth skips the remaining copies via dead-path elimination.

use crate::activity::Activity;
use crate::process::{Case, Construct, Process};

/// Result of unrolling: the loop-free process and how many `while`s were
/// expanded.
#[derive(Clone, Debug)]
pub struct Unrolled {
    /// The transformed process.
    pub process: Process,
    /// Number of `while` constructs expanded.
    pub loops_expanded: usize,
}

/// Unrolls every `while` to at most `k` iterations. `k = 0` removes loop
/// bodies entirely (only the condition evaluates, once).
pub fn unroll_whiles(process: &Process, k: usize) -> Unrolled {
    let mut count = 0;
    let root = unroll_construct(&process.root, k, &mut count);
    let mut p = process.clone();
    p.root = root;
    Unrolled {
        process: p,
        loops_expanded: count,
    }
}

/// Renames an activity for iteration `i > 0` of loop `loop_id`. The loop
/// id keeps copies from *different* (e.g. nested) loops distinct: outer
/// iteration renames compose as `inner#2_1#1_1` rather than colliding
/// with the inner loop's own `inner#1`-style copies.
fn iter_name(name: &str, loop_id: usize, i: usize) -> String {
    if i == 0 {
        name.to_string()
    } else {
        format!("{name}#{loop_id}_{i}")
    }
}

fn rename_activities(c: &Construct, loop_id: usize, i: usize) -> Construct {
    let rn = |a: &Activity| -> Activity {
        let mut a = a.clone();
        a.name = iter_name(&a.name, loop_id, i);
        a
    };
    match c {
        Construct::Act(a) => Construct::Act(rn(a)),
        Construct::Sequence(items) => Construct::Sequence(
            items.iter().map(|x| rename_activities(x, loop_id, i)).collect(),
        ),
        Construct::Flow { branches, links } => Construct::Flow {
            branches: branches
                .iter()
                .map(|x| rename_activities(x, loop_id, i))
                .collect(),
            links: links
                .iter()
                .map(|l| crate::process::Link {
                    name: iter_name(&l.name, loop_id, i),
                    from: iter_name(&l.from, loop_id, i),
                    to: iter_name(&l.to, loop_id, i),
                    condition: l.condition.clone(),
                })
                .collect(),
        },
        Construct::Switch { branch, cases } => Construct::Switch {
            branch: rn(branch),
            cases: cases
                .iter()
                .map(|case| Case {
                    label: case.label.clone(),
                    body: rename_activities(&case.body, loop_id, i),
                })
                .collect(),
        },
        Construct::While { cond, body } => Construct::While {
            cond: rn(cond),
            body: Box::new(rename_activities(body, loop_id, i)),
        },
    }
}

fn unroll_construct(c: &Construct, k: usize, count: &mut usize) -> Construct {
    match c {
        Construct::Act(a) => Construct::Act(a.clone()),
        Construct::Sequence(items) => Construct::Sequence(
            items
                .iter()
                .map(|x| unroll_construct(x, k, count))
                .collect(),
        ),
        Construct::Flow { branches, links } => Construct::Flow {
            branches: branches
                .iter()
                .map(|x| unroll_construct(x, k, count))
                .collect(),
            links: links.clone(),
        },
        Construct::Switch { branch, cases } => Construct::Switch {
            branch: branch.clone(),
            cases: cases
                .iter()
                .map(|case| Case {
                    label: case.label.clone(),
                    body: unroll_construct(&case.body, k, count),
                })
                .collect(),
        },
        Construct::While { cond, body } => {
            *count += 1;
            let loop_id = *count;
            // Innermost-first: expand nested loops inside the body once,
            // then replicate the loop-free body per iteration.
            let body = unroll_construct(body, k, count);
            // Build from the deepest iteration outward:
            //   switch cond#i { case T { body#i ; <next> } case F {} }
            // The deepest evaluation (iteration k) has two empty cases:
            // hitting depth k with the condition still true simply stops
            // (bounded semantics), and the explicit F case keeps the guard
            // domain at {T, F}.
            let cond_at = |i: usize| -> Activity {
                let mut a = cond.clone();
                a.name = iter_name(&a.name, loop_id, i);
                a
            };
            let empty = || Construct::Sequence(vec![]);
            let mut current = Construct::Switch {
                branch: cond_at(k),
                cases: vec![
                    Case {
                        label: "T".into(),
                        body: empty(),
                    },
                    Case {
                        label: "F".into(),
                        body: empty(),
                    },
                ],
            };
            for i in (0..k).rev() {
                let body_i = rename_activities(&body, loop_id, i);
                current = Construct::Switch {
                    branch: cond_at(i),
                    cases: vec![
                        Case {
                            label: "T".into(),
                            body: Construct::Sequence(vec![body_i, current]),
                        },
                        Case {
                            label: "F".into(),
                            body: empty(),
                        },
                    ],
                };
            }
            current
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_process;

    fn looped() -> Process {
        parse_process(
            "process L { var n; sequence { assign init writes n; while check reads n { assign step reads n writes n; } assign done reads n; } }",
        )
        .unwrap()
    }

    #[test]
    fn unroll_zero_keeps_only_final_condition() {
        let u = unroll_whiles(&looped(), 0);
        assert_eq!(u.loops_expanded, 1);
        let names: Vec<String> = u
            .process
            .activities()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        assert!(names.contains(&"check".to_string()), "{names:?}");
        assert!(!names.iter().any(|n| n.starts_with("step")));
        assert!(u.process.validate().is_empty(), "{:?}", u.process.validate());
    }

    #[test]
    fn unroll_three_replicates_body() {
        let u = unroll_whiles(&looped(), 3);
        let names: Vec<String> = u
            .process
            .activities()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        for expected in [
            "check", "step", "check#1_1", "step#1_1", "check#1_2", "step#1_2", "check#1_3",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected} in {names:?}");
        }
        assert!(!names.contains(&"step#1_3".to_string()), "bounded at k");
        assert!(u.process.validate().is_empty());
        // No While remains.
        fn has_while(c: &Construct) -> bool {
            match c {
                Construct::While { .. } => true,
                Construct::Act(_) => false,
                Construct::Sequence(v) => v.iter().any(has_while),
                Construct::Flow { branches, .. } => branches.iter().any(has_while),
                Construct::Switch { cases, .. } => cases.iter().any(|c| has_while(&c.body)),
            }
        }
        assert!(!has_while(&u.process.root));
    }

    #[test]
    fn unrolled_process_schedules_through_the_pipeline() {
        // The unrolled process converts to structural constraints (no
        // While left) — the full-stack loop story.
        let u = unroll_whiles(&looped(), 2);
        let cfg = crate::cfg::Cfg::build(&u.process);
        // CFG is loop-free now.
        assert!(dscweaver_graph::topo_sort(&cfg.graph).is_ok());
    }

    #[test]
    fn nested_loops_unroll() {
        let p = parse_process(
            "process N { var i, j; while outer reads i { while inner reads j { assign body reads j writes j; } } }",
        )
        .unwrap();
        let u = unroll_whiles(&p, 2);
        assert_eq!(u.loops_expanded, 2);
        assert!(u.process.validate().is_empty(), "{:?}", u.process.validate());
        let names: Vec<String> = u
            .process
            .activities()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        // Outer iteration 1 contains renamed copies of the inner unrolling.
        assert!(
            names.iter().any(|n| n.starts_with("inner#") && n.contains('#')),
            "{names:?}"
        );
    }

    #[test]
    fn loop_free_process_untouched() {
        let p = parse_process("process P { var x; sequence { assign a writes x; } }").unwrap();
        let u = unroll_whiles(&p, 5);
        assert_eq!(u.loops_expanded, 0);
        assert_eq!(u.process, p);
    }
}
