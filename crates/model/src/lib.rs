//! # dscweaver-model
//!
//! The business-process intermediate representation: activities with
//! variable footprints, the sequencing-construct AST the paper critiques
//! (`sequence` / `flow` / `switch` / `while` with BPEL-style links), a
//! textual DSL for writing processes the way the paper's figures do, a
//! control-flow-graph lowering used by the PDG extraction crate, and
//! figure-style textual renderings.

#![warn(missing_docs)]

pub mod activity;
pub mod cfg;
pub mod display;
pub mod parser;
pub mod process;
pub mod unroll;

pub use activity::{Activity, ActivityKind, VarName};
pub use cfg::{Cfg, CfgEdge, CfgNode};
pub use display::{render_constructs, render_flowchart};
pub use parser::{parse_process, DslError};
pub use process::{Case, Construct, Link, ModelError, Process, ServiceDecl};
pub use unroll::{unroll_whiles, Unrolled};
